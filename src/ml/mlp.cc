#include "ml/mlp.h"

#include <cassert>
#include <cmath>

namespace latest::ml {

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

Mlp::Mlp(const MlpConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  Reset();
}

void Mlp::Reset() {
  const size_t n1 =
      static_cast<size_t>(config_.num_hidden) * (config_.num_inputs + 1);
  const size_t n2 = config_.num_hidden + 1;
  w1_.resize(n1);
  w2_.resize(n2);
  w1_velocity_.assign(n1, 0.0);
  w2_velocity_.assign(n2, 0.0);
  // Xavier-style init scaled by fan-in.
  const double scale1 = 1.0 / std::sqrt(config_.num_inputs + 1.0);
  const double scale2 = 1.0 / std::sqrt(config_.num_hidden + 1.0);
  for (auto& w : w1_) w = rng_.NextDouble(-scale1, scale1);
  for (auto& w : w2_) w = rng_.NextDouble(-scale2, scale2);
  num_steps_ = 0;
}

double Mlp::ForwardInternal(const std::vector<double>& inputs,
                            std::vector<double>* hidden) const {
  assert(inputs.size() == config_.num_inputs);
  hidden->resize(config_.num_hidden);
  for (uint32_t h = 0; h < config_.num_hidden; ++h) {
    const double* row = &w1_[static_cast<size_t>(h) * (config_.num_inputs + 1)];
    double z = row[config_.num_inputs];  // Bias.
    for (uint32_t i = 0; i < config_.num_inputs; ++i) z += row[i] * inputs[i];
    (*hidden)[h] = Sigmoid(z);
  }
  double z = w2_[config_.num_hidden];  // Bias.
  for (uint32_t h = 0; h < config_.num_hidden; ++h) {
    z += w2_[h] * (*hidden)[h];
  }
  return Sigmoid(z);
}

double Mlp::Forward(const std::vector<double>& inputs) const {
  std::vector<double> hidden;
  return ForwardInternal(inputs, &hidden);
}

namespace {

void SaveVector(const std::vector<double>& v, util::BinaryWriter* writer) {
  writer->WriteU64(v.size());
  for (double x : v) writer->WriteDouble(x);
}

bool LoadVector(std::vector<double>* v, size_t expected_size,
                util::BinaryReader* reader) {
  uint64_t size;
  if (!reader->ReadU64(&size) || size != expected_size) return false;
  v->resize(size);
  for (auto& x : *v) {
    if (!reader->ReadDouble(&x)) return false;
  }
  return true;
}

}  // namespace

void Mlp::Save(util::BinaryWriter* writer) const {
  writer->WriteU32(config_.num_inputs);
  writer->WriteU32(config_.num_hidden);
  rng_.Save(writer);
  SaveVector(w1_, writer);
  SaveVector(w2_, writer);
  SaveVector(w1_velocity_, writer);
  SaveVector(w2_velocity_, writer);
  writer->WriteU64(num_steps_);
}

bool Mlp::Load(util::BinaryReader* reader) {
  uint32_t num_inputs, num_hidden;
  if (!reader->ReadU32(&num_inputs) || !reader->ReadU32(&num_hidden)) {
    return false;
  }
  if (num_inputs != config_.num_inputs || num_hidden != config_.num_hidden) {
    return false;
  }
  const size_t n1 =
      static_cast<size_t>(config_.num_hidden) * (config_.num_inputs + 1);
  const size_t n2 = config_.num_hidden + 1;
  return rng_.Load(reader) && LoadVector(&w1_, n1, reader) &&
         LoadVector(&w2_, n2, reader) && LoadVector(&w1_velocity_, n1, reader) &&
         LoadVector(&w2_velocity_, n2, reader) && reader->ReadU64(&num_steps_);
}

double Mlp::TrainStep(const std::vector<double>& inputs, double target) {
  std::vector<double> hidden;
  const double out = ForwardInternal(inputs, &hidden);
  const double error = out - target;

  // Output layer gradient (squared error, sigmoid output).
  const double delta_out = error * out * (1.0 - out);
  // Hidden layer deltas.
  std::vector<double> delta_hidden(config_.num_hidden);
  for (uint32_t h = 0; h < config_.num_hidden; ++h) {
    delta_hidden[h] =
        delta_out * w2_[h] * hidden[h] * (1.0 - hidden[h]);
  }

  // Update output weights.
  for (uint32_t h = 0; h < config_.num_hidden; ++h) {
    const double grad = delta_out * hidden[h];
    w2_velocity_[h] =
        config_.momentum * w2_velocity_[h] - config_.learning_rate * grad;
    w2_[h] += w2_velocity_[h];
  }
  w2_velocity_[config_.num_hidden] =
      config_.momentum * w2_velocity_[config_.num_hidden] -
      config_.learning_rate * delta_out;
  w2_[config_.num_hidden] += w2_velocity_[config_.num_hidden];

  // Update hidden weights.
  for (uint32_t h = 0; h < config_.num_hidden; ++h) {
    const size_t base = static_cast<size_t>(h) * (config_.num_inputs + 1);
    for (uint32_t i = 0; i < config_.num_inputs; ++i) {
      const double grad = delta_hidden[h] * inputs[i];
      w1_velocity_[base + i] = config_.momentum * w1_velocity_[base + i] -
                               config_.learning_rate * grad;
      w1_[base + i] += w1_velocity_[base + i];
    }
    w1_velocity_[base + config_.num_inputs] =
        config_.momentum * w1_velocity_[base + config_.num_inputs] -
        config_.learning_rate * delta_hidden[h];
    w1_[base + config_.num_inputs] += w1_velocity_[base + config_.num_inputs];
  }

  ++num_steps_;
  return error * error;
}

}  // namespace latest::ml
