// Hoeffding tree / Very Fast Decision Tree (VFDT), the incremental
// learning model at the heart of LATEST (Section V-B).
//
// The VFDT (Domingos & Hulten, KDD 2000) builds a decision tree over a
// stream by reading each training record at most once. A leaf accumulates
// sufficient statistics; every `grace_period` records it evaluates
// candidate splits by information gain and splits when the gain margin
// between the best and second-best attribute exceeds the Hoeffding bound
//
//     epsilon = sqrt(R^2 * ln(1/delta) / (2 n)),   R = log2(num_classes),
//
// or when the bound falls below the tie threshold. Categorical attributes
// split multiway; numeric attributes split binary on a threshold evaluated
// through per-class Gaussian observers. Leaf prediction is majority class
// (the paper's WEKA configuration).

#ifndef LATEST_ML_HOEFFDING_TREE_H_
#define LATEST_ML_HOEFFDING_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/feature.h"
#include "ml/gaussian_estimator.h"
#include "util/serialization.h"
#include "util/status.h"

namespace latest::ml {

/// Tuning knobs of the Hoeffding tree. Defaults follow the WEKA
/// HoeffdingTree defaults used by the paper.
struct HoeffdingTreeConfig {
  /// Records a leaf accumulates between split attempts.
  uint32_t grace_period = 200;

  /// One minus the confidence that the chosen split is the true best
  /// (the delta of the Hoeffding bound).
  double split_confidence = 1e-7;

  /// Split anyway when the Hoeffding bound is below this (tie breaking).
  double tie_threshold = 0.05;

  /// Candidate thresholds evaluated per numeric attribute.
  uint32_t numeric_split_candidates = 10;

  /// Hard cap on tree depth (safety net; never reached in practice).
  uint32_t max_depth = 32;

  util::Status Validate() const;
};

/// Incremental decision-tree classifier over a mixed feature schema.
class HoeffdingTree {
 public:
  HoeffdingTree(const FeatureSchema& schema, const HoeffdingTreeConfig& config);
  ~HoeffdingTree();

  /// Non-copyable (owns a node tree), movable.
  HoeffdingTree(const HoeffdingTree&) = delete;
  HoeffdingTree& operator=(const HoeffdingTree&) = delete;
  HoeffdingTree(HoeffdingTree&&) noexcept;
  HoeffdingTree& operator=(HoeffdingTree&&) noexcept;

  /// Consumes one labeled record (constant amortized time).
  void Train(const TrainingExample& example);

  /// Majority-class prediction at the reached leaf.
  uint32_t Predict(const FeatureVector& features) const;

  /// Class distribution (relative frequencies) at the reached leaf. Sums
  /// to 1 once the leaf has seen data; uniform before.
  std::vector<double> PredictDistribution(const FeatureVector& features) const;

  /// Total records trained on.
  uint64_t num_trained() const { return num_trained_; }

  /// Number of leaves (1 for a stump).
  uint64_t num_leaves() const { return num_leaves_; }

  /// Number of internal split nodes.
  uint64_t num_splits() const { return num_splits_; }

  /// Maximum depth of any leaf.
  uint32_t depth() const { return depth_; }

  const FeatureSchema& schema() const { return schema_; }
  const HoeffdingTreeConfig& config() const { return config_; }

  /// Discards the model (the paper's manual retraining trigger re-grows
  /// the tree from subsequent records).
  void Reset();

  /// Persists the full tree (structure + sufficient statistics) so a
  /// restarted process resumes with the learned model.
  void Serialize(util::BinaryWriter* writer) const;

  /// Restores a tree persisted by Serialize into this instance; the
  /// schema must match the one it was saved with. On failure the tree is
  /// reset and an error is returned.
  util::Status Restore(util::BinaryReader* reader);

 private:
  struct Node;

  /// Statistics a leaf keeps to evaluate candidate splits.
  struct LeafStats {
    std::vector<uint64_t> class_counts;
    // Per categorical attribute: counts[attr][value * num_classes + cls].
    std::vector<std::vector<uint64_t>> categorical_counts;
    // Per numeric attribute, per class: a Gaussian observer.
    std::vector<std::vector<GaussianEstimator>> numeric_observers;
    uint64_t seen = 0;
    uint64_t seen_at_last_attempt = 0;
  };

  struct SplitCandidate {
    double gain = -1.0;
    bool is_numeric = false;
    uint32_t attribute = 0;
    double threshold = 0.0;  // Numeric splits only.
  };

  Node* ReachLeaf(const FeatureVector& features) const;
  void SerializeNode(const Node& node, util::BinaryWriter* writer) const;
  bool RestoreNode(Node* node, util::BinaryReader* reader, uint32_t depth);
  void InitLeafStats(Node* node);
  void UpdateLeafStats(Node* node, const TrainingExample& example);
  void AttemptSplit(Node* node);
  SplitCandidate BestCategoricalSplit(const LeafStats& stats,
                                      uint32_t attr) const;
  SplitCandidate BestNumericSplit(const LeafStats& stats, uint32_t attr) const;
  void ApplySplit(Node* node, const SplitCandidate& split);

  FeatureSchema schema_;
  HoeffdingTreeConfig config_;
  std::unique_ptr<Node> root_;
  uint64_t num_trained_ = 0;
  uint64_t num_leaves_ = 1;
  uint64_t num_splits_ = 0;
  uint32_t depth_ = 0;
};

/// Shannon entropy (bits) of a class-count histogram.
double Entropy(const std::vector<double>& counts);

/// The Hoeffding bound for range R, confidence delta, and n observations.
double HoeffdingBound(double range, double delta, uint64_t n);

}  // namespace latest::ml

#endif  // LATEST_ML_HOEFFDING_TREE_H_
