// Minimal feed-forward neural network (multilayer perceptron) with one
// sigmoid hidden layer and a sigmoid output, trained by stochastic
// gradient descent with momentum — the workload-driven FFN estimator of
// the paper (WEKA MultilayerPerceptron with learning rate 0.3 and
// momentum 0.2).

#ifndef LATEST_ML_MLP_H_
#define LATEST_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/serialization.h"

namespace latest::ml {

/// Configuration of the network and its optimizer.
struct MlpConfig {
  uint32_t num_inputs = 8;
  uint32_t num_hidden = 16;
  double learning_rate = 0.3;
  double momentum = 0.2;
};

/// input -> sigmoid hidden layer -> sigmoid scalar output in (0, 1).
class Mlp {
 public:
  Mlp(const MlpConfig& config, uint64_t seed);

  /// Forward pass; inputs.size() must equal num_inputs.
  double Forward(const std::vector<double>& inputs) const;

  /// One SGD-with-momentum step on squared error against `target` in
  /// [0, 1]. Returns the pre-update squared error.
  double TrainStep(const std::vector<double>& inputs, double target);

  const MlpConfig& config() const { return config_; }

  /// Total training steps taken.
  uint64_t num_steps() const { return num_steps_; }

  /// Re-initializes all weights.
  void Reset();

  /// Persists weights, velocities, step count, and the RNG state (the RNG
  /// drives Reset(), so a restored network re-initializes identically).
  void Save(util::BinaryWriter* writer) const;

  /// Restores a state persisted by Save; the layer shape must match.
  /// False on mismatch or truncation.
  bool Load(util::BinaryReader* reader);

 private:
  /// Computes hidden activations into `hidden` and returns the output.
  double ForwardInternal(const std::vector<double>& inputs,
                         std::vector<double>* hidden) const;

  MlpConfig config_;
  util::Rng rng_;
  // Layout: w1_[h * (num_inputs+1) + i], last column is the bias.
  std::vector<double> w1_;
  std::vector<double> w2_;  // num_hidden + 1 (bias last).
  std::vector<double> w1_velocity_;
  std::vector<double> w2_velocity_;
  uint64_t num_steps_ = 0;
};

/// Numerically safe logistic sigmoid.
double Sigmoid(double x);

}  // namespace latest::ml

#endif  // LATEST_ML_MLP_H_
