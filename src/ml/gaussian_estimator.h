// Streaming Gaussian attribute observer used by the Hoeffding tree for
// numeric attributes (the classic VFDT numeric handling): per class, the
// tree keeps a running Gaussian of each numeric attribute and evaluates
// candidate binary splits via the Gaussian CDF.

#ifndef LATEST_ML_GAUSSIAN_ESTIMATOR_H_
#define LATEST_ML_GAUSSIAN_ESTIMATOR_H_

#include <cstdint>

namespace latest::ml {

/// Incremental mean/variance/min/max of a numeric stream, with a normal
/// CDF for probability-mass-below-threshold queries.
class GaussianEstimator {
 public:
  /// Rebuilds an estimator from previously captured moments (used when
  /// restoring a persisted Hoeffding tree).
  static GaussianEstimator FromMoments(uint64_t count, double mean,
                                       double m2, double min, double max);

  void Add(double v);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sum of squared deviations (Welford accumulator), for persistence.
  double m2() const { return m2_; }

  /// Estimated probability mass strictly below `v` under the fitted
  /// Gaussian. With fewer than two samples falls back to a step function
  /// at the mean.
  double ProbabilityBelow(double v) const;

  /// Expected number of the observed points below `v`:
  /// count() * ProbabilityBelow(v).
  double CountBelow(double v) const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace latest::ml

#endif  // LATEST_ML_GAUSSIAN_ESTIMATOR_H_
