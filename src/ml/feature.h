// Feature schema and vectors consumed by the incremental learning model.
//
// The Hoeffding tree is generic over a mixed schema of categorical and
// numeric attributes plus a finite class label, matching the training
// records of Section V-C (query type is categorical; normalized accuracy,
// latency, and workload statistics are numeric; the label is the
// recommended estimator).

#ifndef LATEST_ML_FEATURE_H_
#define LATEST_ML_FEATURE_H_

#include <cstdint>
#include <vector>

namespace latest::ml {

/// Shape of the learning problem: attribute arities and class count.
struct FeatureSchema {
  /// Cardinality of each categorical attribute, in attribute order.
  std::vector<uint32_t> categorical_cardinalities;

  /// Number of numeric attributes.
  uint32_t num_numeric = 0;

  /// Number of classes of the label.
  uint32_t num_classes = 0;

  uint32_t num_categorical() const {
    return static_cast<uint32_t>(categorical_cardinalities.size());
  }
};

/// One observation: values for every attribute of the schema.
struct FeatureVector {
  std::vector<int> categorical;  // categorical[i] in [0, cardinality_i)
  std::vector<double> numeric;
};

/// A labeled observation used for (incremental) training.
struct TrainingExample {
  FeatureVector features;
  uint32_t label = 0;
};

}  // namespace latest::ml

#endif  // LATEST_ML_FEATURE_H_
