#include "ml/gaussian_estimator.h"

#include <algorithm>
#include <cmath>

namespace latest::ml {

GaussianEstimator GaussianEstimator::FromMoments(uint64_t count, double mean,
                                                 double m2, double min,
                                                 double max) {
  GaussianEstimator g;
  g.count_ = count;
  g.mean_ = mean;
  g.m2_ = m2;
  g.min_ = min;
  g.max_ = max;
  return g;
}

void GaussianEstimator::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
}

double GaussianEstimator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double GaussianEstimator::stddev() const { return std::sqrt(variance()); }

double GaussianEstimator::ProbabilityBelow(double v) const {
  if (count_ == 0) return 0.0;
  const double sd = stddev();
  if (sd <= 0.0) return v > mean_ ? 1.0 : 0.0;
  const double z = (v - mean_) / sd;
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double GaussianEstimator::CountBelow(double v) const {
  return static_cast<double>(count_) * ProbabilityBelow(v);
}

}  // namespace latest::ml
