#include "estimators/kmv_synopsis.h"

#include <algorithm>
#include <cassert>

#include "util/hashing.h"

namespace latest::estimators {

KmvSynopsis::KmvSynopsis(uint32_t k, uint64_t hash_seed)
    : k_(k), hash_seed_(hash_seed) {
  assert(k >= 2);
  values_.reserve(k);
}

void KmvSynopsis::InsertHash(double h) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), h);
  if (it != values_.end() && *it == h) return;  // Duplicate element.
  if (values_.size() < k_) {
    values_.insert(it, h);
    return;
  }
  if (h >= values_.back()) return;  // Not among the k smallest.
  values_.insert(it, h);
  values_.pop_back();
}

void KmvSynopsis::Add(uint64_t element) {
  InsertHash(util::HashToUnit(util::SeededHash(element, hash_seed_)));
}

double KmvSynopsis::EstimateDistinct() const {
  if (values_.size() < k_) {
    // Synopsis not saturated: it has seen every distinct element.
    return static_cast<double>(values_.size());
  }
  const double h_k = values_.back();
  if (h_k <= 0.0) return static_cast<double>(values_.size());
  return static_cast<double>(k_ - 1) / h_k;
}

void KmvSynopsis::Merge(const KmvSynopsis& other) {
  assert(other.k_ == k_ && other.hash_seed_ == hash_seed_);
  for (const double h : other.values_) InsertHash(h);
}

}  // namespace latest::estimators
