// Columnar storage for reservoir samples.
//
// The reservoir estimators (RSL, RSH) used to keep whole GeoTextObject
// copies per sampled slot, each with its own heap-allocated keywords
// vector. SampleColumns stores the slots as structure-of-arrays columns —
// locations plus (offset,len) keyword spans into a per-sample bump arena —
// mirroring the window store's layout: predicate scans walk plain arrays
// and slot replacement never allocates in steady state.
//
// Algorithm R replaces slots in place; a bump arena cannot free a replaced
// span, so the arena accretes garbage. Replace() compacts (rewrites live
// spans into the arena front, preserving slot order) once garbage exceeds
// the live payload, keeping memory within 2x of live keywords at amortized
// O(1) per replacement.

#ifndef LATEST_ESTIMATORS_SAMPLE_COLUMNS_H_
#define LATEST_ESTIMATORS_SAMPLE_COLUMNS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "geo/point.h"
#include "stream/keyword_arena.h"
#include "stream/object.h"
#include "stream/query.h"
#include "util/serialization.h"

namespace latest::estimators {

/// SoA columns over sampled objects: one location and one keyword span per
/// slot. Only the attributes predicates read are kept.
class SampleColumns {
 public:
  size_t size() const { return locs_.size(); }
  bool empty() const { return locs_.empty(); }

  /// Pre-sizes the slot columns (not the arena) for `n` slots.
  void Reserve(size_t n) {
    locs_.reserve(n);
    spans_.reserve(n);
  }

  /// Appends one sampled object as a new slot.
  void PushBack(const stream::GeoTextObject& obj) {
    locs_.push_back(obj.loc);
    spans_.push_back(
        arena_.Append(obj.keywords.data(), obj.keywords.size()));
    live_keywords_ += obj.keywords.size();
  }

  /// Overwrites slot i (Algorithm R replacement), compacting the arena
  /// once replaced-span garbage exceeds the live payload.
  void Replace(size_t i, const stream::GeoTextObject& obj) {
    live_keywords_ -= spans_[i].len;
    live_keywords_ += obj.keywords.size();
    locs_[i] = obj.loc;
    spans_[i] = arena_.Append(obj.keywords.data(), obj.keywords.size());
    if (arena_.size() > 2 * live_keywords_ + kMinArenaSlack) Compact();
  }

  const geo::Point& loc(size_t i) const { return locs_[i]; }

  /// Slot i's keyword set: pointer into the arena + length.
  std::pair<const stream::KeywordId*, uint32_t> keywords(size_t i) const {
    const stream::KeywordSpan span = spans_[i];
    return {arena_.Data(span), span.len};
  }

  /// Predicate evaluation of slot i; identical to Query::Matches on the
  /// original object (same location, same canonical keyword order).
  bool Matches(const stream::Query& q, size_t i) const {
    const stream::KeywordSpan span = spans_[i];
    return q.Matches(locs_[i], arena_.Data(span), span.len);
  }

  void Clear() {
    locs_.clear();
    spans_.clear();
    arena_.Clear();
    live_keywords_ = 0;
  }

  size_t MemoryBytes() const {
    return locs_.capacity() * sizeof(geo::Point) +
           spans_.capacity() * sizeof(stream::KeywordSpan) +
           arena_.capacity_bytes();
  }

  /// Persists all columns plus the arena (including any uncompacted
  /// garbage, so compaction timing stays identical after restore).
  void Save(util::BinaryWriter* writer) const {
    writer->WriteU64(locs_.size());
    writer->WriteBytes(locs_.data(), locs_.size() * sizeof(geo::Point));
    writer->WriteBytes(spans_.data(),
                       spans_.size() * sizeof(stream::KeywordSpan));
    arena_.Save(writer);
    writer->WriteU64(live_keywords_);
  }

  /// Restores a state persisted by Save; false on truncation (the sample
  /// is left cleared).
  bool Load(util::BinaryReader* reader) {
    Clear();
    uint64_t size;
    if (!reader->ReadU64(&size) ||
        reader->remaining() <
            size * (sizeof(geo::Point) + sizeof(stream::KeywordSpan))) {
      return false;
    }
    locs_.resize(size);
    spans_.resize(size);
    uint64_t live_keywords;
    if (!reader->ReadBytes(locs_.data(), size * sizeof(geo::Point)) ||
        !reader->ReadBytes(spans_.data(),
                           size * sizeof(stream::KeywordSpan)) ||
        !arena_.Load(reader) || !reader->ReadU64(&live_keywords)) {
      Clear();
      return false;
    }
    live_keywords_ = live_keywords;
    return true;
  }

 private:
  /// Compaction is skipped below this arena payload: tiny samples churn.
  static constexpr size_t kMinArenaSlack = 256;

  /// Rewrites live spans into a fresh arena front, preserving slot order.
  void Compact() {
    stream::KeywordArena packed;
    packed.Reserve(live_keywords_);
    for (stream::KeywordSpan& span : spans_) {
      span = packed.Append(arena_.Data(span), span.len);
    }
    arena_ = std::move(packed);
  }

  std::vector<geo::Point> locs_;
  std::vector<stream::KeywordSpan> spans_;
  stream::KeywordArena arena_;
  size_t live_keywords_ = 0;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_SAMPLE_COLUMNS_H_
