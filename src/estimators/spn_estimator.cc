#include "estimators/spn_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/hashing.h"

namespace latest::estimators {

namespace {

constexpr double kCenterLearningRate = 0.05;
constexpr uint32_t kRefitIterations = 3;

double SquaredDistance(const geo::Point& a, const geo::Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

SpnEstimator::SpnEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      bounds_(config.bounds),
      bins_(std::max(2u, config.spn_bins_per_dim)),
      keyword_buckets_(std::max(2u, config.spn_keyword_buckets)),
      decay_factor_(static_cast<double>(config.window.num_slices - 1) /
                    std::max(1u, config.window.num_slices)),
      sample_capacity_per_slice_(std::max(
          8u, config.spn_sample_capacity / config.window.num_slices)),
      hash_seed_(config.seed ^ 0xA5A5A5A5A5A5A5A5ULL),
      rng_(config.seed),
      samples_(config.window.num_slices) {
  const uint32_t k = std::max(1u, config.spn_clusters);
  clusters_.resize(k);
  for (auto& cluster : clusters_) {
    cluster.center.x = rng_.NextDouble(bounds_.min_x, bounds_.max_x);
    cluster.center.y = rng_.NextDouble(bounds_.min_y, bounds_.max_y);
    cluster.x_bins.assign(bins_, 0.0);
    cluster.y_bins.assign(bins_, 0.0);
    cluster.keyword_buckets.assign(keyword_buckets_, 0.0);
  }
}

uint32_t SpnEstimator::NearestCluster(const geo::Point& p) const {
  uint32_t best = 0;
  double best_d = SquaredDistance(p, clusters_[0].center);
  for (uint32_t k = 1; k < clusters_.size(); ++k) {
    const double d = SquaredDistance(p, clusters_[k].center);
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

void SpnEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  const geo::Point p = bounds_.Clamp(obj.loc);
  Cluster& cluster = clusters_[NearestCluster(p)];
  // Online k-means: pull the winning center toward the point.
  cluster.center.x += kCenterLearningRate * (p.x - cluster.center.x);
  cluster.center.y += kCenterLearningRate * (p.y - cluster.center.y);
  cluster.weight += 1.0;
  total_weight_ += 1.0;

  const auto x_bin = std::min<uint32_t>(
      bins_ - 1, static_cast<uint32_t>((p.x - bounds_.min_x) /
                                       bounds_.Width() * bins_));
  const auto y_bin = std::min<uint32_t>(
      bins_ - 1, static_cast<uint32_t>((p.y - bounds_.min_y) /
                                       bounds_.Height() * bins_));
  cluster.x_bins[x_bin] += 1.0;
  cluster.y_bins[y_bin] += 1.0;
  for (const stream::KeywordId kw : obj.keywords) {
    cluster.keyword_buckets[util::SeededHash(kw, hash_seed_) %
                            keyword_buckets_] += 1.0;
  }

  // Reservoir-sample the location for center refits.
  SliceSample& slice = samples_.Current();
  ++slice.seen;
  if (slice.points.size() < sample_capacity_per_slice_) {
    slice.points.push_back(p);
  } else {
    const uint64_t j = rng_.NextBounded(slice.seen);
    if (j < sample_capacity_per_slice_) {
      slice.points[static_cast<size_t>(j)] = p;
    }
  }
}

void SpnEstimator::RefitCenters() {
  // Gather the window sample.
  std::vector<geo::Point> points;
  samples_.ForEach([&](const SliceSample& slice) {
    points.insert(points.end(), slice.points.begin(), slice.points.end());
  });
  if (points.size() < clusters_.size()) return;

  // Lloyd iterations: the expensive model-update step of a data-driven
  // estimator on a stream.
  std::vector<double> sum_x(clusters_.size());
  std::vector<double> sum_y(clusters_.size());
  std::vector<uint64_t> count(clusters_.size());
  for (uint32_t iter = 0; iter < kRefitIterations; ++iter) {
    std::fill(sum_x.begin(), sum_x.end(), 0.0);
    std::fill(sum_y.begin(), sum_y.end(), 0.0);
    std::fill(count.begin(), count.end(), 0);
    for (const geo::Point& p : points) {
      const uint32_t k = NearestCluster(p);
      sum_x[k] += p.x;
      sum_y[k] += p.y;
      ++count[k];
    }
    for (uint32_t k = 0; k < clusters_.size(); ++k) {
      if (count[k] == 0) continue;
      clusters_[k].center.x = sum_x[k] / static_cast<double>(count[k]);
      clusters_[k].center.y = sum_y[k] / static_cast<double>(count[k]);
    }
  }
}

void SpnEstimator::RotateImpl() {
  for (auto& cluster : clusters_) {
    cluster.weight *= decay_factor_;
    for (auto& b : cluster.x_bins) b *= decay_factor_;
    for (auto& b : cluster.y_bins) b *= decay_factor_;
    for (auto& b : cluster.keyword_buckets) b *= decay_factor_;
  }
  total_weight_ *= decay_factor_;
  samples_.Rotate();
  RefitCenters();
}

double SpnEstimator::IntervalMass(const std::vector<double>& bins,
                                  double weight, double domain_lo,
                                  double domain_hi, double lo,
                                  double hi) const {
  if (weight <= 0.0 || hi <= lo) return 0.0;
  const double domain = domain_hi - domain_lo;
  const double bin_width = domain / bins_;
  double mass = 0.0;
  for (uint32_t b = 0; b < bins_; ++b) {
    if (bins[b] <= 0.0) continue;
    const double b_lo = domain_lo + b * bin_width;
    const double b_hi = b_lo + bin_width;
    const double overlap = std::min(hi, b_hi) - std::max(lo, b_lo);
    if (overlap <= 0.0) continue;
    mass += bins[b] * (overlap / bin_width);
  }
  return std::min(1.0, mass / weight);
}

double SpnEstimator::KeywordMissProbability(
    const Cluster& cluster,
    const std::vector<stream::KeywordId>& keywords) const {
  if (cluster.weight <= 0.0) return 1.0;
  double miss_all = 1.0;
  for (const stream::KeywordId kw : keywords) {
    const double count =
        cluster
            .keyword_buckets[util::SeededHash(kw, hash_seed_) %
                             keyword_buckets_];
    const double p = std::clamp(count / cluster.weight, 0.0, 1.0);
    miss_all *= (1.0 - p);
  }
  return miss_all;
}

double SpnEstimator::Estimate(const stream::Query& q) const {
  if (total_weight_ <= 0.0) return 0.0;
  double probability = 0.0;
  for (const Cluster& cluster : clusters_) {
    if (cluster.weight <= 0.0) continue;
    double p = cluster.weight / total_weight_;
    if (q.HasRange()) {
      p *= IntervalMass(cluster.x_bins, cluster.weight, bounds_.min_x,
                        bounds_.max_x, q.range->min_x, q.range->max_x);
      p *= IntervalMass(cluster.y_bins, cluster.weight, bounds_.min_y,
                        bounds_.max_y, q.range->min_y, q.range->max_y);
    }
    if (q.HasKeywords()) {
      p *= 1.0 - KeywordMissProbability(cluster, q.keywords);
    }
    probability += p;
  }
  return probability * static_cast<double>(seen_population());
}

size_t SpnEstimator::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& cluster : clusters_) {
    bytes += sizeof(Cluster) +
             (cluster.x_bins.size() + cluster.y_bins.size() +
              cluster.keyword_buckets.size()) *
                 sizeof(double);
  }
  samples_.ForEach([&](const SliceSample& slice) {
    bytes += slice.points.capacity() * sizeof(geo::Point);
  });
  return bytes;
}

void SpnEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  writer->WriteU64(clusters_.size());
  for (const Cluster& cluster : clusters_) {
    writer->WriteDouble(cluster.center.x);
    writer->WriteDouble(cluster.center.y);
    writer->WriteDouble(cluster.weight);
    for (double b : cluster.x_bins) writer->WriteDouble(b);
    for (double b : cluster.y_bins) writer->WriteDouble(b);
    for (double b : cluster.keyword_buckets) writer->WriteDouble(b);
  }
  writer->WriteDouble(total_weight_);
  // Raw slot order: RefitCenters gathers points via ForEach in this order
  // and k-means accumulation is order-sensitive in floating point.
  samples_.Save(writer, [](const SliceSample& slice, util::BinaryWriter* w) {
    w->WriteU64(slice.points.size());
    w->WriteBytes(slice.points.data(),
                  slice.points.size() * sizeof(geo::Point));
    w->WriteU64(slice.seen);
  });
  rng_.Save(writer);
}

bool SpnEstimator::LoadStateImpl(util::BinaryReader* reader) {
  uint64_t num_clusters;
  if (!reader->ReadU64(&num_clusters) || num_clusters != clusters_.size()) {
    return false;
  }
  for (Cluster& cluster : clusters_) {
    if (!reader->ReadDouble(&cluster.center.x) ||
        !reader->ReadDouble(&cluster.center.y) ||
        !reader->ReadDouble(&cluster.weight)) {
      return false;
    }
    for (auto& b : cluster.x_bins) {
      if (!reader->ReadDouble(&b)) return false;
    }
    for (auto& b : cluster.y_bins) {
      if (!reader->ReadDouble(&b)) return false;
    }
    for (auto& b : cluster.keyword_buckets) {
      if (!reader->ReadDouble(&b)) return false;
    }
  }
  if (!reader->ReadDouble(&total_weight_)) return false;
  if (!samples_.Load(
          reader, [this](SliceSample* slice, util::BinaryReader* r) {
            uint64_t num_points;
            if (!r->ReadU64(&num_points) ||
                num_points > sample_capacity_per_slice_ ||
                r->remaining() < num_points * sizeof(geo::Point)) {
              return false;
            }
            slice->points.resize(num_points);
            return r->ReadBytes(slice->points.data(),
                                num_points * sizeof(geo::Point)) &&
                   r->ReadU64(&slice->seen);
          })) {
    return false;
  }
  return rng_.Load(reader);
}

void SpnEstimator::ResetImpl() {
  for (auto& cluster : clusters_) {
    cluster.weight = 0.0;
    std::fill(cluster.x_bins.begin(), cluster.x_bins.end(), 0.0);
    std::fill(cluster.y_bins.begin(), cluster.y_bins.end(), 0.0);
    std::fill(cluster.keyword_buckets.begin(), cluster.keyword_buckets.end(),
              0.0);
    cluster.center.x = rng_.NextDouble(bounds_.min_x, bounds_.max_x);
    cluster.center.y = rng_.NextDouble(bounds_.min_y, bounds_.max_y);
  }
  total_weight_ = 0.0;
  samples_.Clear();
}

}  // namespace latest::estimators
