#include "estimators/space_saving.h"

#include <cassert>
#include <limits>

namespace latest::estimators {

SpaceSavingCounter::SpaceSavingCounter(uint32_t capacity)
    : capacity_(capacity) {
  assert(capacity > 0);
  entries_.reserve(capacity);
}

uint32_t SpaceSavingCounter::MinKey() const {
  double min_count = std::numeric_limits<double>::infinity();
  uint32_t min_key = 0;
  for (const auto& [key, count] : entries_) {
    if (count < min_count) {
      min_count = count;
      min_key = key;
    }
  }
  return min_key;
}

void SpaceSavingCounter::Add(uint32_t key, double weight) {
  total_weight_ += weight;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(key, weight);
    return;
  }
  // Space-Saving eviction: the new key inherits the minimum counter.
  const uint32_t victim = MinKey();
  const double inherited = entries_[victim];
  entries_.erase(victim);
  entries_.emplace(key, inherited + weight);
}

double SpaceSavingCounter::Count(uint32_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second;
}

bool SpaceSavingCounter::IsTracked(uint32_t key) const {
  return entries_.count(key) > 0;
}

double SpaceSavingCounter::TrackedTotal() const {
  double total = 0.0;
  for (const auto& [key, count] : entries_) {
    (void)key;
    total += count;
  }
  return total;
}

void SpaceSavingCounter::Decay(double factor, double prune_below) {
  total_weight_ *= factor;
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second *= factor;
    if (it->second < prune_below) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SpaceSavingCounter::Clear() {
  entries_.clear();
  // Keep the table pre-sized for the fixed capacity so refilling after a
  // reset never rehashes.
  entries_.reserve(capacity_);
  total_weight_ = 0.0;
}

}  // namespace latest::estimators
