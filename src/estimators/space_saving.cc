#include "estimators/space_saving.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace latest::estimators {

SpaceSavingCounter::SpaceSavingCounter(uint32_t capacity)
    : capacity_(capacity) {
  assert(capacity > 0);
  entries_.reserve(capacity);
}

uint32_t SpaceSavingCounter::MinKey() const {
  // Tie-break equal counts by the smaller key: eviction then depends only
  // on the counter *contents*, not on the hash table's iteration order, so
  // a counter rebuilt from a snapshot evicts identically to the original.
  double min_count = std::numeric_limits<double>::infinity();
  uint32_t min_key = std::numeric_limits<uint32_t>::max();
  for (const auto& [key, count] : entries_) {
    if (count < min_count || (count == min_count && key < min_key)) {
      min_count = count;
      min_key = key;
    }
  }
  return min_key;
}

void SpaceSavingCounter::Add(uint32_t key, double weight) {
  total_weight_ += weight;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(key, weight);
    return;
  }
  // Space-Saving eviction: the new key inherits the minimum counter.
  const uint32_t victim = MinKey();
  const double inherited = entries_[victim];
  entries_.erase(victim);
  entries_.emplace(key, inherited + weight);
}

double SpaceSavingCounter::Count(uint32_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second;
}

bool SpaceSavingCounter::IsTracked(uint32_t key) const {
  return entries_.count(key) > 0;
}

double SpaceSavingCounter::TrackedTotal() const {
  // Sum in sorted-key order: floating-point addition is not associative,
  // so iteration-order summation would make the total depend on the hash
  // table's history rather than its contents.
  std::vector<std::pair<uint32_t, double>> sorted(entries_.begin(),
                                                  entries_.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const auto& [key, count] : sorted) {
    (void)key;
    total += count;
  }
  return total;
}

void SpaceSavingCounter::Decay(double factor, double prune_below) {
  total_weight_ *= factor;
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second *= factor;
    if (it->second < prune_below) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SpaceSavingCounter::Clear() {
  entries_.clear();
  // Keep the table pre-sized for the fixed capacity so refilling after a
  // reset never rehashes.
  entries_.reserve(capacity_);
  total_weight_ = 0.0;
}

void SpaceSavingCounter::Save(util::BinaryWriter* writer) const {
  writer->WriteU32(capacity_);
  writer->WriteDouble(total_weight_);
  std::vector<std::pair<uint32_t, double>> sorted(entries_.begin(),
                                                  entries_.end());
  std::sort(sorted.begin(), sorted.end());
  writer->WriteU64(sorted.size());
  for (const auto& [key, count] : sorted) {
    writer->WriteU32(key);
    writer->WriteDouble(count);
  }
}

bool SpaceSavingCounter::Load(util::BinaryReader* reader) {
  uint32_t capacity;
  double total_weight;
  uint64_t num_entries;
  if (!reader->ReadU32(&capacity) || !reader->ReadDouble(&total_weight) ||
      !reader->ReadU64(&num_entries)) {
    return false;
  }
  if (capacity != capacity_ || num_entries > capacity_) return false;
  Clear();
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint32_t key;
    double count;
    if (!reader->ReadU32(&key) || !reader->ReadDouble(&count)) {
      Clear();
      return false;
    }
    entries_.emplace(key, count);
  }
  total_weight_ = total_weight;
  return true;
}

}  // namespace latest::estimators
