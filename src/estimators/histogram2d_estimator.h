// Two-dimensional equi-width histogram estimator (H4096 in the paper).
//
// Divides the spatial domain into a regular grid of equal cells, storing
// per-cell object counts only (Figure 1(a)). Range counts assume uniform
// density within partially covered cells (fractional overlap). The
// structure keeps *purely spatial* statistics, so keyword predicates are
// ignored: pure keyword queries fall back to the whole seen population and
// hybrid queries return the spatial-only count — reproducing the paper's
// observation that H4096 excels on pure spatial workloads and degrades
// sharply when keyword predicates flow.
//
// Window expiry: per-cell counts are kept per time slice; the oldest slice
// is subtracted from the live counts on rotation.

#ifndef LATEST_ESTIMATORS_HISTOGRAM2D_ESTIMATOR_H_
#define LATEST_ESTIMATORS_HISTOGRAM2D_ESTIMATOR_H_

#include <vector>

#include "estimators/windowed_estimator_base.h"
#include "geo/grid.h"

namespace latest::estimators {

/// H4096: the 2-D histogram estimator.
class Histogram2dEstimator : public WindowedEstimatorBase {
 public:
  explicit Histogram2dEstimator(const EstimatorConfig& config);

  EstimatorKind kind() const override { return EstimatorKind::kH4096; }
  double Estimate(const stream::Query& q) const override;
  size_t MemoryBytes() const override;

  const geo::Grid& grid() const { return grid_; }

  /// Live window count of one cell (testing hook).
  uint64_t CellCount(uint32_t cell) const { return live_counts_[cell]; }

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void InsertBatchImpl(const stream::GeoTextObject* objs, size_t n) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  geo::Grid grid_;
  uint32_t num_slices_;
  // Ring of per-slice cell counts: slice_counts_[slice * cells + cell].
  std::vector<uint64_t> slice_counts_;
  uint32_t head_slice_ = 0;  // Ring position of the newest slice.
  // Sum over live slices, maintained incrementally.
  std::vector<uint64_t> live_counts_;
  // Batch-insert scratch (kernel-computed cell ids), reused across
  // batches. Locations are read in place via the strided kernel.
  std::vector<uint32_t> batch_cells_;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_HISTOGRAM2D_ESTIMATOR_H_
