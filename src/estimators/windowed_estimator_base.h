// Shared window-population bookkeeping for estimator implementations.

#ifndef LATEST_ESTIMATORS_WINDOWED_ESTIMATOR_BASE_H_
#define LATEST_ESTIMATORS_WINDOWED_ESTIMATOR_BASE_H_

#include "estimators/estimator.h"

namespace latest::estimators {

/// Base class that tracks the per-slice population an estimator has seen,
/// so seen_population() is uniform across implementations. Subclasses
/// override the *Impl hooks.
class WindowedEstimatorBase : public Estimator {
 public:
  void Insert(const stream::GeoTextObject& obj) final {
    InsertImpl(obj);
    population_.Add();
  }

  void InsertBatch(const stream::GeoTextObject* objs, size_t n) final {
    InsertBatchImpl(objs, n);
    for (size_t i = 0; i < n; ++i) population_.Add();
  }

  void OnSliceRotate() final {
    RotateImpl();  // Runs first so the hook can inspect the expiring slice.
    population_.Rotate();
  }

  uint64_t seen_population() const final { return population_.total(); }

  void Reset() final {
    ResetImpl();
    population_.Clear();
  }

  void SaveState(util::BinaryWriter* writer) const final {
    population_.Save(writer);
    SaveStateImpl(writer);
  }

  bool LoadState(util::BinaryReader* reader) final {
    if (!population_.Load(reader) || !LoadStateImpl(reader)) {
      Reset();
      return false;
    }
    return true;
  }

 protected:
  explicit WindowedEstimatorBase(uint32_t num_slices)
      : population_(num_slices) {}

  /// Absorbs one object into subclass state.
  virtual void InsertImpl(const stream::GeoTextObject& obj) = 0;

  /// Absorbs a same-slice batch; must leave the same state as n
  /// InsertImpl calls. Override to vectorize.
  virtual void InsertBatchImpl(const stream::GeoTextObject* objs, size_t n) {
    for (size_t i = 0; i < n; ++i) InsertImpl(objs[i]);
  }

  /// Expires the oldest slice of subclass state.
  virtual void RotateImpl() = 0;

  /// Wipes subclass state.
  virtual void ResetImpl() = 0;

  /// Persists subclass state (the shared population is already written).
  virtual void SaveStateImpl(util::BinaryWriter* writer) const = 0;

  /// Restores subclass state; false on mismatch or truncation (the caller
  /// resets the estimator).
  virtual bool LoadStateImpl(util::BinaryReader* reader) = 0;

  const stream::WindowPopulation& population() const { return population_; }

 private:
  stream::WindowPopulation population_;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_WINDOWED_ESTIMATOR_BASE_H_
