// Data-driven sum-product network estimator (SPN in the paper; Poon &
// Domingos, 2012).
//
// A compact SPN over the joint distribution of (x, y, keyword): a sum node
// mixes K cluster components; each component is a product node over
// independent leaf distributions — an x histogram, a y histogram, and a
// hashed keyword-bucket categorical. Cluster responsibilities come from
// online k-means over locations; a per-window sample buffer periodically
// re-fits the cluster centers (the model-update cost the paper calls out
// as SPN's weakness in streaming settings).
//
// A query's probability is sum_k w_k * P_k(x in Rx) * P_k(y in Ry) *
// P_k(kw hits W), dropping factors for absent predicates; the estimate is
// that probability times the seen population. Window expiry uses
// geometric decay of all leaf masses per slice rotation.

#ifndef LATEST_ESTIMATORS_SPN_ESTIMATOR_H_
#define LATEST_ESTIMATORS_SPN_ESTIMATOR_H_

#include <vector>

#include "estimators/windowed_estimator_base.h"
#include "util/rng.h"

namespace latest::estimators {

/// SPN: the data-driven sum-product network estimator.
class SpnEstimator : public WindowedEstimatorBase {
 public:
  explicit SpnEstimator(const EstimatorConfig& config);

  EstimatorKind kind() const override { return EstimatorKind::kSpn; }
  double Estimate(const stream::Query& q) const override;
  size_t MemoryBytes() const override;

  uint32_t num_clusters() const {
    return static_cast<uint32_t>(clusters_.size());
  }

  /// Mixture weight of one cluster (testing hook).
  double ClusterWeight(uint32_t k) const { return clusters_[k].weight; }

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  struct Cluster {
    geo::Point center;
    double weight = 0.0;               // Decayed object count.
    std::vector<double> x_bins;        // Decayed histogram masses.
    std::vector<double> y_bins;
    std::vector<double> keyword_buckets;
  };

  uint32_t NearestCluster(const geo::Point& p) const;
  /// Probability mass of a 1-D histogram within [lo, hi] (domain-relative).
  double IntervalMass(const std::vector<double>& bins, double weight,
                      double domain_lo, double domain_hi, double lo,
                      double hi) const;
  double KeywordMissProbability(
      const Cluster& cluster,
      const std::vector<stream::KeywordId>& keywords) const;
  /// K-means recentering passes over the window sample buffer.
  void RefitCenters();

  geo::Rect bounds_;
  uint32_t bins_;
  uint32_t keyword_buckets_;
  double decay_factor_;
  uint32_t sample_capacity_per_slice_;
  uint64_t hash_seed_;
  util::Rng rng_;

  std::vector<Cluster> clusters_;
  double total_weight_ = 0.0;

  /// Per-slice location samples for center refits.
  struct SliceSample {
    std::vector<geo::Point> points;
    uint64_t seen = 0;
  };
  stream::SliceRing<SliceSample> samples_;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_SPN_ESTIMATOR_H_
