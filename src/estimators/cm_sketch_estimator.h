// Count-Min sketch spatio-textual estimator (CMS) — a portfolio
// extension beyond the paper's six members.
//
// Section IV notes that "system administrators can select a different
// set of estimators that fit their needs"; this member demonstrates the
// extension path. It summarizes the window with three bounded-memory
// decayed structures:
//
//   * a coarse per-cell count grid            -> pure spatial queries,
//   * a Count-Min sketch over keyword ids     -> pure keyword queries,
//   * a Count-Min sketch over (cell, keyword) -> hybrid queries.
//
// Count-Min estimates never undercount (within the decay approximation)
// but collide upward, so CMS trades a little accuracy for O(1) updates
// and microsecond estimates at a few hundred KiB — a classic sketch
// profile distinct from every paper member. Disabled by default in
// LatestConfig so the paper-reproduction experiments keep the original
// six-member portfolio.

#ifndef LATEST_ESTIMATORS_CM_SKETCH_ESTIMATOR_H_
#define LATEST_ESTIMATORS_CM_SKETCH_ESTIMATOR_H_

#include <vector>

#include "estimators/windowed_estimator_base.h"
#include "geo/grid.h"

namespace latest::estimators {

/// Bounded-memory Count-Min sketch over 64-bit keys with decayed counts.
class CountMinSketch {
 public:
  /// depth: hash rows. width: counters per row. seed: hash family.
  CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed);

  /// Adds `weight` to the key's counters.
  void Add(uint64_t key, double weight = 1.0);

  /// Point estimate: the minimum counter across rows (upper bound on the
  /// decayed true count).
  double Estimate(uint64_t key) const;

  /// Multiplies every counter by `factor` (window decay).
  void Decay(double factor);

  void Clear();

  size_t MemoryBytes() const { return counters_.size() * sizeof(double); }

  /// Persists the counter matrix (depth/width/seed written for
  /// validation).
  void Save(util::BinaryWriter* writer) const;

  /// Restores a state persisted by Save; shape and seed must match. False
  /// on mismatch or truncation.
  bool Load(util::BinaryReader* reader);

 private:
  size_t Index(uint32_t row, uint64_t key) const;

  uint32_t depth_;
  uint32_t width_;
  uint64_t seed_;
  std::vector<double> counters_;  // depth_ x width_, row-major.
};

/// CMS: the sketch-based estimator.
class CmSketchEstimator : public WindowedEstimatorBase {
 public:
  explicit CmSketchEstimator(const EstimatorConfig& config);

  EstimatorKind kind() const override { return EstimatorKind::kCmSketch; }
  double Estimate(const stream::Query& q) const override;
  size_t MemoryBytes() const override;

  const geo::Grid& grid() const { return grid_; }

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  /// P(object carries at least one query keyword), via sketch counts
  /// under keyword independence.
  double KeywordProbability(const std::vector<stream::KeywordId>& keywords,
                            double population) const;
  uint64_t PairKey(uint32_t cell, stream::KeywordId kw) const;

  geo::Grid grid_;
  double decay_factor_;
  std::vector<double> cell_counts_;  // Decayed, one per grid cell.
  double decayed_population_ = 0.0;
  CountMinSketch keyword_sketch_;
  CountMinSketch pair_sketch_;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_CM_SKETCH_ESTIMATOR_H_
