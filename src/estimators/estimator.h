// The common interface of LATEST's selectivity-estimator portfolio
// (Section IV) and the shared configuration of all six estimators.
//
// Every estimator maintains its own window state via Insert/OnSliceRotate
// and answers RC-DVQ queries with Estimate. Estimates are always relative
// to the population the estimator has *seen* (its seen_population());
// LATEST scales pre-filled estimators that have not yet covered a full
// window by window_population / seen_population.

#ifndef LATEST_ESTIMATORS_ESTIMATOR_H_
#define LATEST_ESTIMATORS_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "geo/rect.h"
#include "stream/object.h"
#include "stream/query.h"
#include "stream/sliding_window.h"
#include "util/serialization.h"
#include "util/status.h"

namespace latest::estimators {

/// The six estimators evaluated by the paper (Section VI-A).
enum class EstimatorKind : uint32_t {
  kH4096 = 0,  // 2-D equi-width histogram, 4096 cells.
  kRsl = 1,    // Reservoir sampling list (Algorithm R).
  kRsh = 2,    // Hybrid reservoir sampling hashmap (grid-indexed sample).
  kAasp = 3,   // Augmented adaptive space partitioning tree.
  kFfn = 4,    // Workload-driven feed-forward neural network.
  kSpn = 5,    // Data-driven sum-product network.
  // Portfolio extension beyond the paper's six (disabled by default in
  // LatestConfig so the paper-reproduction experiments are unchanged):
  kCmSketch = 6,  // Count-Min sketch over keywords and (cell, keyword).
};

/// Number of estimator kinds (the paper's six + the CMS extension).
inline constexpr uint32_t kNumEstimatorKinds = 7;

/// Number of estimators the paper evaluates (the first six kinds).
inline constexpr uint32_t kNumPaperEstimatorKinds = 6;

/// Short stable display name ("H4096", "RSL", ...).
const char* EstimatorKindName(EstimatorKind kind);

/// Shared configuration for constructing estimators.
struct EstimatorConfig {
  /// Spatial domain of the stream.
  geo::Rect bounds;

  /// Shared time-window discretization.
  stream::WindowConfig window;

  /// Seed for every randomized component.
  uint64_t seed = 42;

  // --- H4096 ---
  /// Histogram cells (a square grid; must be a perfect square).
  uint32_t histogram_cells = 4096;

  // --- RSL / RSH ---
  /// Total reservoir capacity across the window. Meaningful sampling
  /// behaviour requires the capacity to be well below the window
  /// population (the paper uses 1M samples against multi-million-object
  /// windows).
  uint32_t reservoir_capacity = 2048;
  /// Grid cells indexing the RSH sample.
  uint32_t rsh_grid_cells = 4096;

  // --- AASP ---
  /// Split aggressiveness in (0, 1]; the paper uses 0.5. A leaf splits when
  /// its live count exceeds split_value * 2 * seen_population/target_leaves.
  double aasp_split_value = 0.5;
  /// Keyword-hash partitions: the AASP of [67] is a KMV synopsis plus a
  /// *set* of ASP trees. Every query aggregates across all partitions,
  /// which is what makes the structure the slowest of the portfolio.
  uint32_t aasp_partitions = 8;
  /// Upper bound on tree nodes across all partitions (memory budget knob).
  uint32_t aasp_max_nodes = 4096;
  /// KMV synopsis size for distinct-keyword estimation.
  uint32_t aasp_kmv_size = 256;
  /// Tracked keyword counters per tree node (local correlations).
  uint32_t aasp_node_keywords = 4;
  /// Tracked keyword counters at the root (global keyword statistics).
  uint32_t aasp_root_keywords = 1024;

  // --- FFN ---
  uint32_t ffn_hidden_units = 16;
  double ffn_learning_rate = 0.3;  // Paper's WEKA configuration.
  double ffn_momentum = 0.2;
  /// Replay-buffer capacity for periodic refresh epochs.
  uint32_t ffn_replay_capacity = 2048;
  /// Hashed keyword-popularity buckets feeding the FFN's keyword feature
  /// (deliberately coarse: collisions blur rare keywords).
  uint32_t ffn_keyword_buckets = 256;

  // --- CMS (portfolio extension) ---
  /// Coarse spatial grid cells backing the sketch's spatial counts.
  uint32_t cms_grid_cells = 1024;
  /// Count-Min sketch rows.
  uint32_t cms_depth = 4;
  /// Count-Min counters per row (the pair sketch uses 4x this width).
  uint32_t cms_width = 2048;

  // --- SPN ---
  uint32_t spn_clusters = 8;
  uint32_t spn_bins_per_dim = 32;
  uint32_t spn_keyword_buckets = 128;
  /// Sample buffer (per window) used to periodically refit cluster centers.
  uint32_t spn_sample_capacity = 4096;

  util::Status Validate() const;
};

/// A selectivity estimator over the sliding window.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Which portfolio member this is.
  virtual EstimatorKind kind() const = 0;

  /// Absorbs one stream object into the current window slice.
  virtual void Insert(const stream::GeoTextObject& obj) = 0;

  /// Absorbs `n` same-slice objects at once. Equivalent to n Insert
  /// calls (the default is exactly that loop); estimators with columnar
  /// state override to amortize per-object work over SIMD kernels. All
  /// objects must belong to the current slice — the caller rotates
  /// slices between batches, never inside one.
  virtual void InsertBatch(const stream::GeoTextObject* objs, size_t n) {
    for (size_t i = 0; i < n; ++i) Insert(objs[i]);
  }

  /// Drops the oldest window slice and opens a new one. Called by the
  /// owner whenever event time crosses a slice boundary.
  virtual void OnSliceRotate() = 0;

  /// Estimated RC-DVQ selectivity of q over the data this estimator has
  /// seen. Never negative.
  virtual double Estimate(const stream::Query& q) const = 0;

  /// Ground-truth feedback from the system log after the query executed on
  /// actual data. Workload-driven estimators (FFN) learn from this; others
  /// ignore it.
  virtual void OnFeedback(const stream::Query& q, double estimate,
                          uint64_t actual);

  /// Approximate heap footprint in bytes, for the memory-budget study.
  virtual size_t MemoryBytes() const = 0;

  /// Objects currently inside this estimator's window view.
  virtual uint64_t seen_population() const = 0;

  /// Wipes all window state (the paper wipes inactive estimators to keep a
  /// single active structure).
  virtual void Reset() = 0;

  /// Persists the complete window state (synopses, samples, weights, RNG
  /// streams) so a restored instance continues bit-identically.
  virtual void SaveState(util::BinaryWriter* writer) const = 0;

  /// Restores a state persisted by SaveState on an identically configured
  /// instance. False on shape mismatch or truncation; the estimator is
  /// left reset in that case.
  virtual bool LoadState(util::BinaryReader* reader) = 0;
};

/// Creates an estimator of the given kind. Returns InvalidArgument if the
/// configuration fails validation.
util::Result<std::unique_ptr<Estimator>> CreateEstimator(
    EstimatorKind kind, const EstimatorConfig& config);

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_ESTIMATOR_H_
