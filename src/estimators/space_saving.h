// Space-Saving heavy-hitter counter (Metwally et al., ICDT 2005) with
// optional exponential decay for sliding-window approximation.
//
// AASP tree nodes and the FFN keyword-popularity feature both need
// bounded-size per-keyword frequency counters over the window. Space-
// Saving tracks the (approximately) most frequent keywords in a fixed
// number of counters; multiplying all counters by (num_slices-1)/num_slices
// on each slice rotation geometrically forgets expired history.

#ifndef LATEST_ESTIMATORS_SPACE_SAVING_H_
#define LATEST_ESTIMATORS_SPACE_SAVING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/serialization.h"

namespace latest::estimators {

/// Fixed-capacity approximate frequency counter over 32-bit keys.
class SpaceSavingCounter {
 public:
  /// capacity: maximum tracked keys (> 0).
  explicit SpaceSavingCounter(uint32_t capacity);

  /// Records one occurrence of `key`.
  void Add(uint32_t key, double weight = 1.0);

  /// Estimated count of `key`; 0 when untracked. (Space-Saving counts are
  /// overestimates for tracked keys, by at most the minimum counter.)
  double Count(uint32_t key) const;

  /// True iff the key currently owns a counter.
  bool IsTracked(uint32_t key) const;

  /// Sum of all counter values (upper bound on total tracked weight).
  double TrackedTotal() const;

  /// Total weight ever added (decayed alongside the counters).
  double total_weight() const { return total_weight_; }

  /// Number of occupied counters.
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }

  uint32_t capacity() const { return capacity_; }

  /// Multiplies every counter (and the running total) by `factor`;
  /// counters decayed below `prune_below` are dropped.
  void Decay(double factor, double prune_below = 1e-3);

  /// Applies fn(key, count) to every tracked key.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, count] : entries_) fn(key, count);
  }

  void Clear();

  /// Persists the counters in sorted-key order plus the running total.
  void Save(util::BinaryWriter* writer) const;

  /// Restores a state persisted by Save; the capacity must match. False
  /// on mismatch or truncation (the counter is left cleared).
  bool Load(util::BinaryReader* reader);

 private:
  /// Key of the minimum counter (linear scan; capacity is small),
  /// tie-broken by the smaller key so eviction is content-deterministic.
  uint32_t MinKey() const;

  uint32_t capacity_;
  std::unordered_map<uint32_t, double> entries_;
  double total_weight_ = 0.0;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_SPACE_SAVING_H_
