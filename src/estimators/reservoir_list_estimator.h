// Reservoir sampling list estimator (RSL in the paper).
//
// Algorithm R (Vitter, TOMS 1985): keep a fixed-capacity uniform sample of
// the stream; estimate selectivity as the matching sample fraction scaled
// by the population. Because the sample holds actual objects with all
// attributes, RSL supports spatial, keyword, and hybrid predicates alike —
// which is why the paper finds it (and its hybrid sibling RSH) the
// accuracy winner on keyword-bearing workloads.
//
// Window expiry: the total capacity N is divided evenly across the window
// time slices; each slice runs its own Algorithm R reservoir over the
// objects that arrived during that slice. Per-slice uniform samples with
// per-slice scale-up give an unbiased stratified estimate over the window,
// and expiring a slice simply drops its reservoir.

#ifndef LATEST_ESTIMATORS_RESERVOIR_LIST_ESTIMATOR_H_
#define LATEST_ESTIMATORS_RESERVOIR_LIST_ESTIMATOR_H_

#include "estimators/sample_columns.h"
#include "estimators/windowed_estimator_base.h"
#include "util/rng.h"

namespace latest::estimators {

/// One slice's reservoir: a uniform sample of the slice's arrivals, held
/// as SoA columns (see SampleColumns).
struct SliceReservoir {
  SampleColumns sample;
  uint64_t seen = 0;
};

/// RSL: the reservoir sampling list estimator.
class ReservoirListEstimator : public WindowedEstimatorBase {
 public:
  explicit ReservoirListEstimator(const EstimatorConfig& config);

  EstimatorKind kind() const override { return EstimatorKind::kRsl; }
  double Estimate(const stream::Query& q) const override;
  size_t MemoryBytes() const override;

  /// Total objects currently sampled across all slices (testing hook).
  uint64_t SampleSize() const;

  uint32_t capacity_per_slice() const { return capacity_per_slice_; }

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  uint32_t capacity_per_slice_;
  stream::SliceRing<SliceReservoir> slices_;
  util::Rng rng_;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_RESERVOIR_LIST_ESTIMATOR_H_
