#include "estimators/ffn_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/hashing.h"

namespace latest::estimators {

namespace {

// Maps log10(area fraction) from [-8, 0] to [0, 1].
double NormalizeLogArea(double area, double domain_area) {
  if (area <= 0.0 || domain_area <= 0.0) return 0.0;
  const double lg = std::log10(std::max(1e-8, area / domain_area));
  return std::clamp((lg + 8.0) / 8.0, 0.0, 1.0);
}

// Selectivities span orders of magnitude, so the network learns the
// log-scaled count: target = log10(1 + count) / log10(1 + population).
// A plain [0, 1] fraction target would squash every realistic selectivity
// (1e-4 .. 1e-2) into an unlearnable sliver next to 0.
double CountToTarget(double count, double population) {
  const double denom = std::log10(1.0 + std::max(1.0, population));
  return std::clamp(std::log10(1.0 + std::max(0.0, count)) / denom, 0.0, 1.0);
}

double TargetToCount(double target, double population) {
  const double denom = std::log10(1.0 + std::max(1.0, population));
  return std::max(0.0, std::pow(10.0, target * denom) - 1.0);
}

}  // namespace

FfnEstimator::FfnEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      bounds_(config.bounds),
      decay_factor_(static_cast<double>(config.window.num_slices - 1) /
                    std::max(1u, config.window.num_slices)),
      replay_capacity_(std::max(16u, config.ffn_replay_capacity)),
      network_(
          ml::MlpConfig{
              .num_inputs = kNumFeatures,
              .num_hidden = config.ffn_hidden_units,
              .learning_rate = config.ffn_learning_rate,
              .momentum = config.ffn_momentum,
          },
          config.seed),
      keyword_buckets_(std::max(16u, config.ffn_keyword_buckets), 0.0),
      keyword_hash_seed_(config.seed ^ 0x3C3C3C3C3C3C3C3CULL),
      prior_grid_(config.bounds, kPriorGridSide, kPriorGridSide),
      prior_counts_(prior_grid_.num_cells(), 0.0) {}

void FfnEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  for (const stream::KeywordId kw : obj.keywords) {
    keyword_buckets_[util::SeededHash(kw, keyword_hash_seed_) %
                     keyword_buckets_.size()] += 1.0;
  }
  keyword_objects_ += 1.0;
  prior_counts_[prior_grid_.CellOf(obj.loc)] += 1.0;
}

void FfnEstimator::RotateImpl() {
  for (double& c : keyword_buckets_) c *= decay_factor_;
  keyword_objects_ *= decay_factor_;
  for (double& c : prior_counts_) c *= decay_factor_;
}

double FfnEstimator::KeywordPriorProbability(
    const std::vector<stream::KeywordId>& keywords) const {
  if (keyword_objects_ < 1.0) return 0.0;
  double miss_all = 1.0;
  for (const stream::KeywordId kw : keywords) {
    const double count =
        keyword_buckets_[util::SeededHash(kw, keyword_hash_seed_) %
                         keyword_buckets_.size()];
    const double p = std::clamp(count / keyword_objects_, 0.0, 1.0);
    miss_all *= (1.0 - p);
  }
  return 1.0 - miss_all;
}

double FfnEstimator::SpatialPriorCount(const geo::Rect& range) const {
  uint32_t col_lo;
  uint32_t row_lo;
  uint32_t col_hi;
  uint32_t row_hi;
  if (!prior_grid_.CellRange(range, &col_lo, &row_lo, &col_hi, &row_hi)) {
    return 0.0;
  }
  double count = 0.0;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      const uint32_t cell = row * prior_grid_.cols() + col;
      if (prior_counts_[cell] <= 0.0) continue;
      count += prior_counts_[cell] *
               prior_grid_.CellRect(cell).OverlapFraction(range);
    }
  }
  return count;
}

std::vector<double> FfnEstimator::Featurize(const stream::Query& q) const {
  std::vector<double> f(kNumFeatures, 0.0);
  f[0] = q.HasRange() ? 1.0 : 0.0;
  if (q.HasRange()) {
    const geo::Point c = q.range->Center();
    f[1] = std::clamp((c.x - bounds_.min_x) / bounds_.Width(), 0.0, 1.0);
    f[2] = std::clamp((c.y - bounds_.min_y) / bounds_.Height(), 0.0, 1.0);
    f[3] = NormalizeLogArea(q.range->Area(), bounds_.Area());
  }
  f[4] = std::min(1.0, static_cast<double>(q.keywords.size()) / 8.0);
  if (q.HasKeywords()) {
    f[5] = KeywordPriorProbability(q.keywords);
  }
  const double population = static_cast<double>(seen_population());
  f[6] = std::clamp(std::log10(1.0 + population) / 8.0, 0.0, 1.0);
  // Prior-estimate features, in the same log-count scale as the training
  // target: a coarse-density spatial prior and the keyword-frequency
  // prior. The network learns to correct these crude baselines instead of
  // regressing counts from raw query parameters alone.
  if (q.HasRange()) {
    f[7] = CountToTarget(SpatialPriorCount(*q.range), population);
  }
  if (q.HasKeywords()) {
    f[8] = CountToTarget(population * f[5], population);
  }
  return f;
}

double FfnEstimator::Estimate(const stream::Query& q) const {
  const double population = static_cast<double>(seen_population());
  if (population <= 0.0) return 0.0;
  const double target = network_.Forward(Featurize(q));
  return TargetToCount(target, population);
}

void FfnEstimator::OnFeedback(const stream::Query& q, double /*estimate*/,
                              uint64_t actual) {
  const double population =
      std::max<double>(1.0, static_cast<double>(seen_population()));
  const double target =
      CountToTarget(static_cast<double>(actual), population);
  std::vector<double> features = Featurize(q);
  network_.TrainStep(features, target);

  // Keep the record for replay epochs.
  if (replay_.size() < replay_capacity_) {
    replay_.push_back(ReplayRecord{std::move(features), target});
  } else {
    replay_[replay_head_] = ReplayRecord{std::move(features), target};
    replay_head_ = (replay_head_ + 1) % replay_capacity_;
  }
  ++num_feedback_;
  if (num_feedback_ % kReplayEvery == 0) {
    for (const auto& record : replay_) {
      network_.TrainStep(record.features, record.target);
    }
  }
}

size_t FfnEstimator::MemoryBytes() const {
  size_t bytes =
      sizeof(*this) +
      static_cast<size_t>(network_.config().num_hidden) *
          (network_.config().num_inputs + 1) * 2 * sizeof(double) +
      (network_.config().num_hidden + 1) * 2 * sizeof(double);
  bytes += keyword_buckets_.size() * sizeof(double);
  bytes += replay_.capacity() * sizeof(ReplayRecord) +
           replay_.size() * kNumFeatures * sizeof(double);
  bytes += prior_counts_.size() * sizeof(double);
  return bytes;
}

void FfnEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  network_.Save(writer);
  writer->WriteU64(keyword_buckets_.size());
  writer->WriteBytes(keyword_buckets_.data(),
                     keyword_buckets_.size() * sizeof(double));
  writer->WriteDouble(keyword_objects_);
  writer->WriteBytes(prior_counts_.data(),
                     prior_counts_.size() * sizeof(double));
  writer->WriteU64(replay_.size());
  for (const ReplayRecord& record : replay_) {
    for (double f : record.features) writer->WriteDouble(f);
    writer->WriteDouble(record.target);
  }
  writer->WriteU64(replay_head_);
  writer->WriteU64(num_feedback_);
}

bool FfnEstimator::LoadStateImpl(util::BinaryReader* reader) {
  uint64_t num_buckets;
  if (!network_.Load(reader) || !reader->ReadU64(&num_buckets) ||
      num_buckets != keyword_buckets_.size()) {
    return false;
  }
  if (!reader->ReadBytes(keyword_buckets_.data(),
                         keyword_buckets_.size() * sizeof(double)) ||
      !reader->ReadDouble(&keyword_objects_) ||
      !reader->ReadBytes(prior_counts_.data(),
                         prior_counts_.size() * sizeof(double))) {
    return false;
  }
  uint64_t replay_size;
  if (!reader->ReadU64(&replay_size) || replay_size > replay_capacity_) {
    return false;
  }
  replay_.clear();
  replay_.reserve(replay_size);
  for (uint64_t i = 0; i < replay_size; ++i) {
    ReplayRecord record;
    record.features.resize(kNumFeatures);
    for (auto& f : record.features) {
      if (!reader->ReadDouble(&f)) return false;
    }
    if (!reader->ReadDouble(&record.target)) return false;
    replay_.push_back(std::move(record));
  }
  uint64_t replay_head;
  if (!reader->ReadU64(&replay_head) || replay_head >= replay_capacity_) {
    return false;
  }
  replay_head_ = replay_head;
  return reader->ReadU64(&num_feedback_);
}

void FfnEstimator::ResetImpl() {
  // The learned model is the estimator's value; wiping window state resets
  // only the stream statistics. (LATEST wipes inactive estimators' window
  // structures; a workload-driven model would be retrained from the log,
  // which the replay buffer emulates cheaply.)
  std::fill(keyword_buckets_.begin(), keyword_buckets_.end(), 0.0);
  keyword_objects_ = 0.0;
  std::fill(prior_counts_.begin(), prior_counts_.end(), 0.0);
}

}  // namespace latest::estimators
