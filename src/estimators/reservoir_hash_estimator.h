// Hybrid reservoir sampling hashmap estimator (RSH in the paper).
//
// The same windowed Algorithm R sample as RSL, but each slice additionally
// indexes its sampled objects by 2-D grid cell (Figure 1(b)). Spatial and
// hybrid queries then touch only the sample members inside candidate
// cells, cutting the iteration overhead of a flat reservoir list; pure
// keyword queries scan the full sample exactly like RSL. RSH is the
// paper's default estimator.

#ifndef LATEST_ESTIMATORS_RESERVOIR_HASH_ESTIMATOR_H_
#define LATEST_ESTIMATORS_RESERVOIR_HASH_ESTIMATOR_H_

#include <unordered_map>
#include <vector>

#include "estimators/sample_columns.h"
#include "estimators/windowed_estimator_base.h"
#include "geo/grid.h"
#include "util/rng.h"

namespace latest::estimators {

/// RSH: the grid-indexed reservoir estimator.
class ReservoirHashEstimator : public WindowedEstimatorBase {
 public:
  explicit ReservoirHashEstimator(const EstimatorConfig& config);

  EstimatorKind kind() const override { return EstimatorKind::kRsh; }
  double Estimate(const stream::Query& q) const override;
  size_t MemoryBytes() const override;

  /// Total objects currently sampled across all slices (testing hook).
  uint64_t SampleSize() const;

  const geo::Grid& grid() const { return grid_; }

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  /// One slice: a columnar reservoir plus a cell -> sample-index map.
  struct Slice {
    SampleColumns sample;
    std::vector<uint32_t> sample_cells;  // Parallel to `sample`.
    std::unordered_map<uint32_t, std::vector<uint32_t>> by_cell;
    uint64_t seen = 0;
  };

  /// Pre-sizes a fresh slice's sample columns and cell map to the
  /// reservoir capacity, so warm-up never rehashes or reallocates.
  void ReserveSlice(Slice* slice) const;

  void MapInsert(Slice* slice, uint32_t cell, uint32_t index) const;
  void MapRemove(Slice* slice, uint32_t cell, uint32_t index) const;
  /// Matches within one slice for a query with a spatial range.
  uint64_t SpatialSliceMatches(const Slice& slice,
                               const stream::Query& q) const;

  geo::Grid grid_;
  uint32_t capacity_per_slice_;
  stream::SliceRing<Slice> slices_;
  util::Rng rng_;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_RESERVOIR_HASH_ESTIMATOR_H_
