// KMV (k minimum values) synopsis for distinct-value estimation
// (Bar-Yossef et al., RANDOM 2002), the "augmented" part of the AASP tree.
//
// Elements are hashed to the unit interval; the synopsis keeps the k
// smallest distinct hash values. With the k-th smallest value h_k, the
// number of distinct elements is estimated as (k - 1) / h_k.

#ifndef LATEST_ESTIMATORS_KMV_SYNOPSIS_H_
#define LATEST_ESTIMATORS_KMV_SYNOPSIS_H_

#include <cstdint>
#include <vector>

#include "util/serialization.h"

namespace latest::estimators {

/// Distinct-count synopsis of a multiset of 64-bit elements.
class KmvSynopsis {
 public:
  /// k: synopsis size (>= 2 for estimation). hash_seed: selects the hash
  /// function; synopses must share a seed to be mergeable.
  KmvSynopsis(uint32_t k, uint64_t hash_seed);

  /// Adds one element occurrence (duplicates are ignored by value).
  void Add(uint64_t element);

  /// Estimated number of distinct elements added.
  double EstimateDistinct() const;

  /// Merges another synopsis (same k and seed) into this one, as if all
  /// its elements had been added here.
  void Merge(const KmvSynopsis& other);

  /// Number of hash values currently held (<= k).
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  uint32_t k() const { return k_; }
  uint64_t hash_seed() const { return hash_seed_; }

  void Clear() { values_.clear(); }

  /// Persists the retained hash values (k and seed are construction-time
  /// state and only written for validation).
  void Save(util::BinaryWriter* writer) const {
    writer->WriteU32(k_);
    writer->WriteU64(hash_seed_);
    writer->WriteU64(values_.size());
    for (double v : values_) writer->WriteDouble(v);
  }

  /// Restores a state persisted by Save; k and seed must match. False on
  /// mismatch or truncation (the synopsis is left cleared).
  bool Load(util::BinaryReader* reader) {
    Clear();
    uint32_t k;
    uint64_t hash_seed, size;
    if (!reader->ReadU32(&k) || !reader->ReadU64(&hash_seed) ||
        !reader->ReadU64(&size)) {
      return false;
    }
    if (k != k_ || hash_seed != hash_seed_ || size > k_) return false;
    values_.resize(size);
    for (auto& v : values_) {
      if (!reader->ReadDouble(&v)) {
        Clear();
        return false;
      }
    }
    return true;
  }

 private:
  void InsertHash(double h);

  uint32_t k_;
  uint64_t hash_seed_;
  std::vector<double> values_;  // Sorted ascending, distinct, size <= k.
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_KMV_SYNOPSIS_H_
