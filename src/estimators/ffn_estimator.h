// Workload-driven feed-forward neural network estimator (FFN in the
// paper).
//
// Instead of maintaining a data synopsis, the FFN learns the mapping from
// query features to selectivity from (query, true selectivity) pairs
// produced by the system log — the classic workload-driven approach
// (Lakshmi & Zhou, VLDB 1998; WEKA MultilayerPerceptron configuration of
// Section VI-A: learning rate 0.3, momentum 0.2, sigmoid activations).
// The network predicts the *selectivity fraction* of the window, which is
// scaled back by the seen population.
//
// Stream maintenance is nearly free (a decayed keyword-popularity counter
// feeds one input feature); all learning happens in OnFeedback, online
// plus periodic replay epochs over a bounded buffer.

#ifndef LATEST_ESTIMATORS_FFN_ESTIMATOR_H_
#define LATEST_ESTIMATORS_FFN_ESTIMATOR_H_

#include <vector>

#include "estimators/windowed_estimator_base.h"
#include "geo/grid.h"
#include "ml/mlp.h"

namespace latest::estimators {

/// FFN: the workload-driven neural estimator.
class FfnEstimator : public WindowedEstimatorBase {
 public:
  explicit FfnEstimator(const EstimatorConfig& config);

  EstimatorKind kind() const override { return EstimatorKind::kFfn; }
  double Estimate(const stream::Query& q) const override;
  void OnFeedback(const stream::Query& q, double estimate,
                  uint64_t actual) override;
  size_t MemoryBytes() const override;

  /// Number of feedback records learned from (testing hook).
  uint64_t num_feedback() const { return num_feedback_; }

  /// The feature vector the network sees for q (testing hook).
  std::vector<double> Featurize(const stream::Query& q) const;

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  /// Number of network inputs produced by Featurize.
  static constexpr uint32_t kNumFeatures = 9;
  /// Online steps between replay epochs.
  static constexpr uint32_t kReplayEvery = 256;

  /// Side of the coarse density grid backing the spatial prior feature.
  static constexpr uint32_t kPriorGridSide = 16;

  /// Crude spatial prior from the decayed density grid: expected count of
  /// a range under the coarse histogram.
  double SpatialPriorCount(const geo::Rect& range) const;

  /// Expected fraction of window objects matching at least one query
  /// keyword, from the hashed bucket counters (keyword independence).
  double KeywordPriorProbability(
      const std::vector<stream::KeywordId>& keywords) const;

  geo::Rect bounds_;
  double decay_factor_;
  uint32_t replay_capacity_;
  ml::Mlp network_;
  /// Keyword popularity is tracked through *hashed buckets*, not exact
  /// per-keyword counters: a workload-driven model sees query parameters,
  /// not a synopsis, so its popularity signal is deliberately coarse
  /// (bucket collisions blur rare keywords into their neighbours).
  std::vector<double> keyword_buckets_;
  uint64_t keyword_hash_seed_;
  double keyword_objects_ = 0.0;  // Decayed object count (normalizer).
  geo::Grid prior_grid_;
  std::vector<double> prior_counts_;  // Decayed, kPriorGridSide^2 cells.

  struct ReplayRecord {
    std::vector<double> features;
    double target;
  };
  std::vector<ReplayRecord> replay_;
  size_t replay_head_ = 0;
  uint64_t num_feedback_ = 0;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_FFN_ESTIMATOR_H_
