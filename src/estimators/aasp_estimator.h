// Augmented adaptive space partitioning (AASP) tree estimator
// (Wang et al., VLDB 2014; spatial core from Hershberger et al.,
// Algorithmica 2006).
//
// Following the paper's description — "KMV synopses of distinct elements
// of the stream and a set of adaptive space partition (ASP) trees" — the
// structure is a keyword-hash-partitioned *forest*: each object is routed
// by its first keyword into one of `aasp_partitions` ASP trees. An ASP
// tree is a compressed 4-ary quadtree where each node carries a counter
// and every data point is counted by exactly one node (the leaf reached at
// insertion time, Figure 1(c)); leaves split when their live count exceeds
// a density threshold controlled by `aasp_split_value`. Nodes additionally
// keep bounded Space-Saving keyword counters (local spatial-textual
// correlations) and the forest keeps per-slice KMV synopses of distinct
// keywords.
//
// Because predicates are tightly coupled to the partitioning, *every*
// query type aggregates across all partitions — the reason AASP is the
// slowest estimator of the portfolio and loses spatial resolution (each
// partition tree is a factor-P coarser summary), reproducing the paper's
// finding that the tightly coupled design underperforms on pure
// predicates.
//
// Window expiry: per-node per-slice counters (exact); keyword counters and
// the per-slice KMV ring decay/rotate alongside.

#ifndef LATEST_ESTIMATORS_AASP_ESTIMATOR_H_
#define LATEST_ESTIMATORS_AASP_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "estimators/kmv_synopsis.h"
#include "estimators/space_saving.h"
#include "estimators/windowed_estimator_base.h"

namespace latest::estimators {

/// AASP: the augmented adaptive space partitioning forest estimator.
class AaspEstimator : public WindowedEstimatorBase {
 public:
  explicit AaspEstimator(const EstimatorConfig& config);
  ~AaspEstimator() override;

  EstimatorKind kind() const override { return EstimatorKind::kAasp; }
  double Estimate(const stream::Query& q) const override;
  size_t MemoryBytes() const override;

  /// Total tree nodes across all partitions (testing / memory hook).
  uint32_t num_nodes() const;

  /// Number of partition trees.
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partitions_.size());
  }

  /// Estimated distinct keywords in the window (KMV merge; testing hook).
  double EstimateDistinctKeywords() const;

  /// The live-count split threshold currently in force.
  uint64_t SplitThreshold() const;

 protected:
  void InsertImpl(const stream::GeoTextObject& obj) override;
  void RotateImpl() override;
  void ResetImpl() override;
  void SaveStateImpl(util::BinaryWriter* writer) const override;
  bool LoadStateImpl(util::BinaryReader* reader) override;

 private:
  struct Node;

  /// One ASP tree plus its node budget accounting.
  struct Partition {
    std::unique_ptr<Node> root;
    uint32_t num_nodes = 1;
  };

  /// Partition index an object's keyword set routes to.
  uint32_t PartitionOf(const std::vector<stream::KeywordId>& keywords) const;
  void SplitLeaf(Partition* partition, Node* node);
  int QuadrantOf(const Node& node, const geo::Point& p) const;
  /// Advances the ring head in every node; returns subtree live count and
  /// collapses empty subtrees.
  uint64_t RotateNode(Partition* partition, Node* node);
  double EstimateSpatial(const Node& node, const geo::Rect& range) const;
  double EstimateHybrid(const Node& node, const stream::Query& q) const;
  /// P(object carries at least one keyword of W), from global statistics.
  double GlobalKeywordProbability(
      const std::vector<stream::KeywordId>& keywords) const;
  /// Same, from one node's local counters (global fallback per keyword).
  double NodeKeywordProbability(
      const Node& node, const std::vector<stream::KeywordId>& keywords) const;
  /// Local-only variant: untracked keywords contribute nothing. Pure
  /// keyword queries aggregate this over all trees.
  double NodeKeywordProbabilityLocal(
      const Node& node, const std::vector<stream::KeywordId>& keywords) const;
  double EstimateKeywordOnly(const Node& node,
                             const std::vector<stream::KeywordId>& kw) const;
  /// Estimated per-keyword count for keywords the global counter dropped
  /// (cached; recomputed after rotations and periodically on insert).
  double UntrackedKeywordCount() const;
  size_t NodeMemoryBytes(const Node& node) const;
  std::unique_ptr<Node> MakeRoot() const;
  /// Recursive node persistence. Cells are not serialized: LoadNode
  /// re-derives each child cell from its parent with the same quadrant
  /// arithmetic SplitLeaf uses, so the geometry is bit-identical.
  void SaveNode(const Node& node, util::BinaryWriter* writer) const;
  bool LoadNode(Partition* partition, Node* node, util::BinaryReader* reader);

  geo::Rect bounds_;
  uint32_t num_slices_;
  double split_value_;
  uint32_t max_nodes_;
  uint32_t max_depth_;
  uint32_t node_keyword_capacity_;
  double decay_factor_;
  uint64_t partition_hash_seed_;

  std::vector<Partition> partitions_;
  uint32_t head_slice_ = 0;

  /// Global (whole-domain) keyword statistics for hybrid fallback.
  SpaceSavingCounter global_keywords_;
  double global_keyword_objects_ = 0.0;  // Decayed count of inserted objects.

  /// Per-slice KMV synopses of distinct keywords.
  std::vector<KmvSynopsis> slice_kmv_;

  /// Cached untracked-keyword count (KMV merges are too expensive to run
  /// per estimated keyword factor).
  mutable double cached_untracked_count_ = 0.0;
  mutable bool untracked_cache_valid_ = false;
  uint64_t inserts_since_cache_ = 0;
};

}  // namespace latest::estimators

#endif  // LATEST_ESTIMATORS_AASP_ESTIMATOR_H_
