#include "estimators/cm_sketch_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/hashing.h"

namespace latest::estimators {

namespace {

uint32_t GridSide(uint32_t cells) {
  auto side = static_cast<uint32_t>(std::sqrt(static_cast<double>(cells)));
  while ((side + 1) * (side + 1) <= cells) ++side;
  return std::max(1u, side);
}

}  // namespace

CountMinSketch::CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed)
    : depth_(depth),
      width_(width),
      seed_(seed),
      counters_(static_cast<size_t>(depth) * width, 0.0) {
  assert(depth > 0 && width > 0);
}

size_t CountMinSketch::Index(uint32_t row, uint64_t key) const {
  return static_cast<size_t>(row) * width_ +
         util::SeededHash(key, seed_ + row) % width_;
}

void CountMinSketch::Add(uint64_t key, double weight) {
  for (uint32_t row = 0; row < depth_; ++row) {
    counters_[Index(row, key)] += weight;
  }
}

double CountMinSketch::Estimate(uint64_t key) const {
  double result = counters_[Index(0, key)];
  for (uint32_t row = 1; row < depth_; ++row) {
    result = std::min(result, counters_[Index(row, key)]);
  }
  return result;
}

void CountMinSketch::Decay(double factor) {
  for (double& c : counters_) c *= factor;
}

void CountMinSketch::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

void CountMinSketch::Save(util::BinaryWriter* writer) const {
  writer->WriteU32(depth_);
  writer->WriteU32(width_);
  writer->WriteU64(seed_);
  writer->WriteBytes(counters_.data(), counters_.size() * sizeof(double));
}

bool CountMinSketch::Load(util::BinaryReader* reader) {
  uint32_t depth, width;
  uint64_t seed;
  if (!reader->ReadU32(&depth) || !reader->ReadU32(&width) ||
      !reader->ReadU64(&seed)) {
    return false;
  }
  if (depth != depth_ || width != width_ || seed != seed_) return false;
  return reader->ReadBytes(counters_.data(),
                           counters_.size() * sizeof(double));
}

CmSketchEstimator::CmSketchEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      grid_(config.bounds, GridSide(config.cms_grid_cells),
            GridSide(config.cms_grid_cells)),
      decay_factor_(static_cast<double>(config.window.num_slices - 1) /
                    std::max(1u, config.window.num_slices)),
      cell_counts_(grid_.num_cells(), 0.0),
      keyword_sketch_(config.cms_depth, config.cms_width,
                      config.seed ^ 0x1111111111111111ULL),
      pair_sketch_(config.cms_depth, config.cms_width * 4,
                   config.seed ^ 0x2222222222222222ULL) {}

uint64_t CmSketchEstimator::PairKey(uint32_t cell,
                                    stream::KeywordId kw) const {
  return (static_cast<uint64_t>(cell) << 32) | kw;
}

void CmSketchEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  const uint32_t cell = grid_.CellOf(obj.loc);
  cell_counts_[cell] += 1.0;
  decayed_population_ += 1.0;
  for (const stream::KeywordId kw : obj.keywords) {
    keyword_sketch_.Add(kw);
    pair_sketch_.Add(PairKey(cell, kw));
  }
}

void CmSketchEstimator::RotateImpl() {
  for (double& c : cell_counts_) c *= decay_factor_;
  decayed_population_ *= decay_factor_;
  keyword_sketch_.Decay(decay_factor_);
  pair_sketch_.Decay(decay_factor_);
}

double CmSketchEstimator::KeywordProbability(
    const std::vector<stream::KeywordId>& keywords,
    double population) const {
  if (population < 1.0) return 0.0;
  double miss_all = 1.0;
  for (const stream::KeywordId kw : keywords) {
    const double p =
        std::clamp(keyword_sketch_.Estimate(kw) / population, 0.0, 1.0);
    miss_all *= (1.0 - p);
  }
  return 1.0 - miss_all;
}

double CmSketchEstimator::Estimate(const stream::Query& q) const {
  // Decayed counts approximate the live window; scale to the exact
  // population for a calibrated absolute count.
  const double population = static_cast<double>(seen_population());
  if (population <= 0.0 || decayed_population_ < 1.0) return 0.0;
  const double calibration = population / decayed_population_;

  switch (q.Type()) {
    case stream::QueryType::kKeyword:
      return population * KeywordProbability(q.keywords,
                                             decayed_population_);
    case stream::QueryType::kSpatial:
    case stream::QueryType::kHybrid: {
      uint32_t col_lo;
      uint32_t row_lo;
      uint32_t col_hi;
      uint32_t row_hi;
      if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
        return 0.0;
      }
      double estimate = 0.0;
      for (uint32_t row = row_lo; row <= row_hi; ++row) {
        for (uint32_t col = col_lo; col <= col_hi; ++col) {
          const uint32_t cell = row * grid_.cols() + col;
          if (cell_counts_[cell] <= 0.0) continue;
          const double fraction =
              grid_.CellRect(cell).OverlapFraction(*q.range);
          if (fraction <= 0.0) continue;
          if (!q.HasKeywords()) {
            estimate += cell_counts_[cell] * fraction;
            continue;
          }
          // Hybrid: per-cell keyword counts from the pair sketch.
          double miss_all = 1.0;
          for (const stream::KeywordId kw : q.keywords) {
            const double count = pair_sketch_.Estimate(PairKey(cell, kw));
            const double p =
                std::clamp(count / cell_counts_[cell], 0.0, 1.0);
            miss_all *= (1.0 - p);
          }
          estimate += cell_counts_[cell] * fraction * (1.0 - miss_all);
        }
      }
      return estimate * calibration;
    }
  }
  return 0.0;
}

size_t CmSketchEstimator::MemoryBytes() const {
  return sizeof(*this) + cell_counts_.size() * sizeof(double) +
         keyword_sketch_.MemoryBytes() + pair_sketch_.MemoryBytes();
}

void CmSketchEstimator::ResetImpl() {
  std::fill(cell_counts_.begin(), cell_counts_.end(), 0.0);
  decayed_population_ = 0.0;
  keyword_sketch_.Clear();
  pair_sketch_.Clear();
}

void CmSketchEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  writer->WriteU64(cell_counts_.size());
  writer->WriteBytes(cell_counts_.data(),
                     cell_counts_.size() * sizeof(double));
  writer->WriteDouble(decayed_population_);
  keyword_sketch_.Save(writer);
  pair_sketch_.Save(writer);
}

bool CmSketchEstimator::LoadStateImpl(util::BinaryReader* reader) {
  uint64_t num_cells;
  if (!reader->ReadU64(&num_cells) || num_cells != cell_counts_.size()) {
    return false;
  }
  return reader->ReadBytes(cell_counts_.data(),
                           cell_counts_.size() * sizeof(double)) &&
         reader->ReadDouble(&decayed_population_) &&
         keyword_sketch_.Load(reader) && pair_sketch_.Load(reader);
}

}  // namespace latest::estimators
