#include "estimators/reservoir_hash_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::estimators {

namespace {

uint32_t GridSide(uint32_t cells) {
  auto side = static_cast<uint32_t>(std::sqrt(static_cast<double>(cells)));
  while ((side + 1) * (side + 1) <= cells) ++side;
  return std::max(1u, side);
}

}  // namespace

ReservoirHashEstimator::ReservoirHashEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      grid_(config.bounds, GridSide(config.rsh_grid_cells),
            GridSide(config.rsh_grid_cells)),
      capacity_per_slice_(std::max(
          1u, config.reservoir_capacity / config.window.num_slices)),
      slices_(config.window.num_slices),
      rng_(config.seed) {}

void ReservoirHashEstimator::MapInsert(Slice* slice, uint32_t cell,
                                       uint32_t index) const {
  slice->by_cell[cell].push_back(index);
}

void ReservoirHashEstimator::MapRemove(Slice* slice, uint32_t cell,
                                       uint32_t index) const {
  auto it = slice->by_cell.find(cell);
  assert(it != slice->by_cell.end());
  auto& indexes = it->second;
  const auto pos = std::find(indexes.begin(), indexes.end(), index);
  assert(pos != indexes.end());
  *pos = indexes.back();  // Swap-remove: order within a cell is irrelevant.
  indexes.pop_back();
  if (indexes.empty()) slice->by_cell.erase(it);
}

void ReservoirHashEstimator::ReserveSlice(Slice* slice) const {
  slice->sample.Reserve(capacity_per_slice_);
  slice->sample_cells.reserve(capacity_per_slice_);
  // At most one map entry per sampled slot.
  slice->by_cell.reserve(capacity_per_slice_);
}

void ReservoirHashEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  Slice& slice = slices_.Current();
  ++slice.seen;
  const uint32_t cell = grid_.CellOf(obj.loc);
  if (slice.sample.size() < capacity_per_slice_) {
    if (slice.sample.empty()) ReserveSlice(&slice);
    const auto index = static_cast<uint32_t>(slice.sample.size());
    slice.sample.PushBack(obj);
    slice.sample_cells.push_back(cell);
    MapInsert(&slice, cell, index);
    return;
  }
  const uint64_t j = rng_.NextBounded(slice.seen);
  if (j < capacity_per_slice_) {
    const auto index = static_cast<uint32_t>(j);
    MapRemove(&slice, slice.sample_cells[index], index);
    slice.sample.Replace(index, obj);
    slice.sample_cells[index] = cell;
    MapInsert(&slice, cell, index);
  }
}

void ReservoirHashEstimator::RotateImpl() { slices_.Rotate(); }

uint64_t ReservoirHashEstimator::SpatialSliceMatches(
    const Slice& slice, const stream::Query& q) const {
  uint32_t col_lo;
  uint32_t row_lo;
  uint32_t col_hi;
  uint32_t row_hi;
  if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
    return 0;
  }
  const uint64_t range_cells = static_cast<uint64_t>(col_hi - col_lo + 1) *
                               (row_hi - row_lo + 1);
  uint64_t matches = 0;
  if (range_cells <= slice.by_cell.size()) {
    // Few candidate cells: probe each one in the map.
    for (uint32_t row = row_lo; row <= row_hi; ++row) {
      for (uint32_t col = col_lo; col <= col_hi; ++col) {
        const auto it = slice.by_cell.find(row * grid_.cols() + col);
        if (it == slice.by_cell.end()) continue;
        for (const uint32_t index : it->second) {
          if (slice.sample.Matches(q, index)) ++matches;
        }
      }
    }
  } else {
    // Huge range: iterating occupied cells is cheaper.
    for (const auto& [cell, indexes] : slice.by_cell) {
      const auto [col, row] = grid_.CellCoords(cell);
      if (col < col_lo || col > col_hi || row < row_lo || row > row_hi) {
        continue;
      }
      for (const uint32_t index : indexes) {
        if (slice.sample.Matches(q, index)) ++matches;
      }
    }
  }
  return matches;
}

double ReservoirHashEstimator::Estimate(const stream::Query& q) const {
  double estimate = 0.0;
  slices_.ForEach([&](const Slice& slice) {
    if (slice.sample.empty()) return;
    uint64_t matches = 0;
    if (q.HasRange()) {
      matches = SpatialSliceMatches(slice, q);
    } else {
      const size_t n = slice.sample.size();
      for (size_t i = 0; i < n; ++i) {
        if (slice.sample.Matches(q, i)) ++matches;
      }
    }
    estimate += static_cast<double>(matches) /
                static_cast<double>(slice.sample.size()) *
                static_cast<double>(slice.seen);
  });
  return estimate;
}

uint64_t ReservoirHashEstimator::SampleSize() const {
  uint64_t total = 0;
  slices_.ForEach([&](const Slice& slice) { total += slice.sample.size(); });
  return total;
}

size_t ReservoirHashEstimator::MemoryBytes() const {
  size_t bytes = 0;
  slices_.ForEach([&](const Slice& slice) {
    bytes += sizeof(Slice) + slice.sample.MemoryBytes() +
             slice.sample_cells.capacity() * sizeof(uint32_t);
    for (const auto& [cell, indexes] : slice.by_cell) {
      (void)cell;
      bytes += sizeof(uint32_t) + indexes.capacity() * sizeof(uint32_t) +
               sizeof(void*) * 2;  // Bucket overhead approximation.
    }
  });
  return bytes;
}

void ReservoirHashEstimator::ResetImpl() { slices_.Clear(); }

void ReservoirHashEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  // by_cell is rebuilt from sample_cells on load: match counting per cell
  // is order-independent, so the rebuilt map estimates identically.
  slices_.Save(writer, [](const Slice& slice, util::BinaryWriter* w) {
    slice.sample.Save(w);
    w->WriteU64(slice.sample_cells.size());
    w->WriteBytes(slice.sample_cells.data(),
                  slice.sample_cells.size() * sizeof(uint32_t));
    w->WriteU64(slice.seen);
  });
  rng_.Save(writer);
}

bool ReservoirHashEstimator::LoadStateImpl(util::BinaryReader* reader) {
  const bool ok =
      slices_.Load(reader, [this](Slice* slice, util::BinaryReader* r) {
        if (!slice->sample.Load(r)) return false;
        uint64_t num_cells;
        if (!r->ReadU64(&num_cells) || num_cells != slice->sample.size() ||
            r->remaining() < num_cells * sizeof(uint32_t)) {
          return false;
        }
        slice->sample_cells.resize(num_cells);
        if (!r->ReadBytes(slice->sample_cells.data(),
                          num_cells * sizeof(uint32_t)) ||
            !r->ReadU64(&slice->seen)) {
          return false;
        }
        slice->by_cell.clear();
        slice->by_cell.reserve(capacity_per_slice_);
        for (uint32_t i = 0; i < slice->sample_cells.size(); ++i) {
          MapInsert(slice, slice->sample_cells[i], i);
        }
        return true;
      });
  return ok && rng_.Load(reader);
}

}  // namespace latest::estimators
