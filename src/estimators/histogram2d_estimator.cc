#include "estimators/histogram2d_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simd/kernels.h"

namespace latest::estimators {

namespace {

// Side length of the square grid for a cell budget (largest square <=
// budget).
uint32_t GridSide(uint32_t cells) {
  auto side = static_cast<uint32_t>(std::sqrt(static_cast<double>(cells)));
  while ((side + 1) * (side + 1) <= cells) ++side;
  return std::max(1u, side);
}

}  // namespace

Histogram2dEstimator::Histogram2dEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      grid_(config.bounds, GridSide(config.histogram_cells),
            GridSide(config.histogram_cells)),
      num_slices_(config.window.num_slices),
      slice_counts_(static_cast<size_t>(config.window.num_slices) *
                    grid_.num_cells()),
      live_counts_(grid_.num_cells()) {}

void Histogram2dEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  const uint32_t cell = grid_.CellOf(obj.loc);
  ++slice_counts_[static_cast<size_t>(head_slice_) * grid_.num_cells() + cell];
  ++live_counts_[cell];
}

void Histogram2dEstimator::InsertBatchImpl(const stream::GeoTextObject* objs,
                                           size_t n) {
  if (n == 0) return;
  batch_cells_.resize(n);
  // The strided kernel reads locations straight out of the object records
  // (no densifying copy pass) and reproduces CellOf bit-for-bit given the
  // grid's own cell extents, so batch and scalar inserts build identical
  // histograms.
  simd::HistogramCellIdsStrided(&objs[0].loc, sizeof(stream::GeoTextObject), n,
                                grid_.bounds(), grid_.cell_width(),
                                grid_.cell_height(), grid_.cols(), grid_.rows(),
                                batch_cells_.data());
  uint64_t* slice =
      &slice_counts_[static_cast<size_t>(head_slice_) * grid_.num_cells()];
  for (size_t i = 0; i < n; ++i) {
    const uint32_t cell = batch_cells_[i];
    ++slice[cell];
    ++live_counts_[cell];
  }
}

void Histogram2dEstimator::RotateImpl() {
  // The next ring position holds the oldest slice; subtract and reuse it.
  head_slice_ = (head_slice_ + 1) % num_slices_;
  uint64_t* oldest =
      &slice_counts_[static_cast<size_t>(head_slice_) * grid_.num_cells()];
  for (uint32_t c = 0; c < grid_.num_cells(); ++c) {
    assert(live_counts_[c] >= oldest[c]);
    live_counts_[c] -= oldest[c];
    oldest[c] = 0;
  }
}

double Histogram2dEstimator::Estimate(const stream::Query& q) const {
  if (!q.HasRange()) {
    // Pure keyword query: no textual statistics; fall back to everything.
    return static_cast<double>(seen_population());
  }
  uint32_t col_lo;
  uint32_t row_lo;
  uint32_t col_hi;
  uint32_t row_hi;
  if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
    return 0.0;
  }
  double estimate = 0.0;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      const uint32_t cell = row * grid_.cols() + col;
      const uint64_t count = live_counts_[cell];
      if (count == 0) continue;
      // Uniformity assumption inside the cell.
      const double fraction = grid_.CellRect(cell).OverlapFraction(*q.range);
      estimate += static_cast<double>(count) * fraction;
    }
  }
  return estimate;
}

size_t Histogram2dEstimator::MemoryBytes() const {
  return slice_counts_.size() * sizeof(uint64_t) +
         live_counts_.size() * sizeof(uint64_t);
}

void Histogram2dEstimator::ResetImpl() {
  std::fill(slice_counts_.begin(), slice_counts_.end(), 0);
  std::fill(live_counts_.begin(), live_counts_.end(), 0);
  head_slice_ = 0;
}

void Histogram2dEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  writer->WriteU64(slice_counts_.size());
  writer->WriteBytes(slice_counts_.data(),
                     slice_counts_.size() * sizeof(uint64_t));
  writer->WriteBytes(live_counts_.data(),
                     live_counts_.size() * sizeof(uint64_t));
  writer->WriteU32(head_slice_);
}

bool Histogram2dEstimator::LoadStateImpl(util::BinaryReader* reader) {
  uint64_t num_counts;
  if (!reader->ReadU64(&num_counts) || num_counts != slice_counts_.size()) {
    return false;
  }
  return reader->ReadBytes(slice_counts_.data(),
                           slice_counts_.size() * sizeof(uint64_t)) &&
         reader->ReadBytes(live_counts_.data(),
                           live_counts_.size() * sizeof(uint64_t)) &&
         reader->ReadU32(&head_slice_) && head_slice_ < num_slices_;
}

}  // namespace latest::estimators
