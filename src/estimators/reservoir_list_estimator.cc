#include "estimators/reservoir_list_estimator.h"

#include <algorithm>

namespace latest::estimators {

ReservoirListEstimator::ReservoirListEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      capacity_per_slice_(std::max(
          1u, config.reservoir_capacity / config.window.num_slices)),
      slices_(config.window.num_slices),
      rng_(config.seed) {}

void ReservoirListEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  SliceReservoir& slice = slices_.Current();
  ++slice.seen;
  if (slice.sample.size() < capacity_per_slice_) {
    if (slice.sample.empty()) slice.sample.Reserve(capacity_per_slice_);
    slice.sample.PushBack(obj);
    return;
  }
  // Algorithm R: replace a random slot with probability capacity/seen.
  const uint64_t j = rng_.NextBounded(slice.seen);
  if (j < capacity_per_slice_) {
    slice.sample.Replace(static_cast<size_t>(j), obj);
  }
}

void ReservoirListEstimator::RotateImpl() { slices_.Rotate(); }

double ReservoirListEstimator::Estimate(const stream::Query& q) const {
  // Stratified estimate: each slice's matching fraction scales to that
  // slice's population.
  double estimate = 0.0;
  slices_.ForEach([&](const SliceReservoir& slice) {
    if (slice.sample.empty()) return;
    uint64_t matches = 0;
    const size_t n = slice.sample.size();
    for (size_t i = 0; i < n; ++i) {
      if (slice.sample.Matches(q, i)) ++matches;
    }
    estimate += static_cast<double>(matches) /
                static_cast<double>(slice.sample.size()) *
                static_cast<double>(slice.seen);
  });
  return estimate;
}

uint64_t ReservoirListEstimator::SampleSize() const {
  uint64_t total = 0;
  slices_.ForEach(
      [&](const SliceReservoir& slice) { total += slice.sample.size(); });
  return total;
}

size_t ReservoirListEstimator::MemoryBytes() const {
  size_t bytes = 0;
  slices_.ForEach([&](const SliceReservoir& slice) {
    bytes += sizeof(SliceReservoir) + slice.sample.MemoryBytes();
  });
  return bytes;
}

void ReservoirListEstimator::ResetImpl() { slices_.Clear(); }

void ReservoirListEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  slices_.Save(writer,
               [](const SliceReservoir& slice, util::BinaryWriter* w) {
                 slice.sample.Save(w);
                 w->WriteU64(slice.seen);
               });
  rng_.Save(writer);
}

bool ReservoirListEstimator::LoadStateImpl(util::BinaryReader* reader) {
  if (!slices_.Load(reader,
                    [](SliceReservoir* slice, util::BinaryReader* r) {
                      return slice->sample.Load(r) && r->ReadU64(&slice->seen);
                    })) {
    return false;
  }
  return rng_.Load(reader);
}

}  // namespace latest::estimators
