#include "estimators/estimator.h"

#include "estimators/aasp_estimator.h"
#include "estimators/cm_sketch_estimator.h"
#include "estimators/ffn_estimator.h"
#include "estimators/histogram2d_estimator.h"
#include "estimators/reservoir_hash_estimator.h"
#include "estimators/reservoir_list_estimator.h"
#include "estimators/spn_estimator.h"

namespace latest::estimators {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kH4096:
      return "H4096";
    case EstimatorKind::kRsl:
      return "RSL";
    case EstimatorKind::kRsh:
      return "RSH";
    case EstimatorKind::kAasp:
      return "AASP";
    case EstimatorKind::kFfn:
      return "FFN";
    case EstimatorKind::kSpn:
      return "SPN";
    case EstimatorKind::kCmSketch:
      return "CMS";
  }
  return "unknown";
}

void Estimator::OnFeedback(const stream::Query& /*q*/, double /*estimate*/,
                           uint64_t /*actual*/) {}

util::Status EstimatorConfig::Validate() const {
  if (!bounds.IsValid()) {
    return util::Status::InvalidArgument("bounds must have positive area");
  }
  LATEST_RETURN_IF_ERROR(window.Validate());
  if (histogram_cells == 0) {
    return util::Status::InvalidArgument("histogram_cells must be > 0");
  }
  if (reservoir_capacity == 0) {
    return util::Status::InvalidArgument("reservoir_capacity must be > 0");
  }
  if (rsh_grid_cells == 0) {
    return util::Status::InvalidArgument("rsh_grid_cells must be > 0");
  }
  if (aasp_split_value <= 0.0 || aasp_split_value > 1.0) {
    return util::Status::InvalidArgument(
        "aasp_split_value must be in (0, 1]");
  }
  if (aasp_partitions == 0) {
    return util::Status::InvalidArgument("aasp_partitions must be > 0");
  }
  if (aasp_kmv_size < 2) {
    return util::Status::InvalidArgument("aasp_kmv_size must be >= 2");
  }
  if (aasp_node_keywords == 0 || aasp_root_keywords == 0) {
    return util::Status::InvalidArgument(
        "aasp keyword counter capacities must be > 0");
  }
  if (ffn_hidden_units == 0) {
    return util::Status::InvalidArgument("ffn_hidden_units must be > 0");
  }
  if (ffn_learning_rate <= 0.0) {
    return util::Status::InvalidArgument("ffn_learning_rate must be > 0");
  }
  if (spn_clusters == 0) {
    return util::Status::InvalidArgument("spn_clusters must be > 0");
  }
  if (cms_grid_cells == 0 || cms_depth == 0 || cms_width == 0) {
    return util::Status::InvalidArgument("cms knobs must be > 0");
  }
  return util::Status::Ok();
}

util::Result<std::unique_ptr<Estimator>> CreateEstimator(
    EstimatorKind kind, const EstimatorConfig& config) {
  LATEST_RETURN_IF_ERROR(config.Validate());
  std::unique_ptr<Estimator> estimator;
  switch (kind) {
    case EstimatorKind::kH4096:
      estimator = std::make_unique<Histogram2dEstimator>(config);
      break;
    case EstimatorKind::kRsl:
      estimator = std::make_unique<ReservoirListEstimator>(config);
      break;
    case EstimatorKind::kRsh:
      estimator = std::make_unique<ReservoirHashEstimator>(config);
      break;
    case EstimatorKind::kAasp:
      estimator = std::make_unique<AaspEstimator>(config);
      break;
    case EstimatorKind::kFfn:
      estimator = std::make_unique<FfnEstimator>(config);
      break;
    case EstimatorKind::kSpn:
      estimator = std::make_unique<SpnEstimator>(config);
      break;
    case EstimatorKind::kCmSketch:
      estimator = std::make_unique<CmSketchEstimator>(config);
      break;
  }
  if (estimator == nullptr) {
    return util::Status::InvalidArgument("unknown estimator kind");
  }
  return estimator;
}

}  // namespace latest::estimators
