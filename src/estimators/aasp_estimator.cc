#include "estimators/aasp_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/hashing.h"

namespace latest::estimators {

namespace {

constexpr uint64_t kMinSplitCount = 32;
constexpr uint32_t kMaxDepth = 16;

}  // namespace

struct AaspEstimator::Node {
  Node(const geo::Rect& cell_arg, uint32_t depth_arg, uint32_t num_slices,
       uint32_t keyword_capacity)
      : cell(cell_arg),
        depth(depth_arg),
        slice_counts(num_slices, 0),
        keywords(keyword_capacity) {}

  geo::Rect cell;
  uint32_t depth;
  std::vector<uint64_t> slice_counts;  // Ring indexed by the forest head.
  uint64_t live_count = 0;
  double decayed_count = 0.0;  // Normalizer for decayed keyword counters.
  SpaceSavingCounter keywords;
  std::unique_ptr<Node> children[4];
  bool is_leaf = true;
};

std::unique_ptr<AaspEstimator::Node> AaspEstimator::MakeRoot() const {
  return std::make_unique<Node>(bounds_, 0, num_slices_,
                                node_keyword_capacity_);
}

AaspEstimator::AaspEstimator(const EstimatorConfig& config)
    : WindowedEstimatorBase(config.window.num_slices),
      bounds_(config.bounds),
      num_slices_(config.window.num_slices),
      split_value_(config.aasp_split_value),
      max_nodes_(std::max(5u * std::max(1u, config.aasp_partitions),
                          config.aasp_max_nodes)),
      max_depth_(kMaxDepth),
      node_keyword_capacity_(config.aasp_node_keywords),
      decay_factor_(static_cast<double>(config.window.num_slices - 1) /
                    std::max(1u, config.window.num_slices)),
      partition_hash_seed_(config.seed ^ 0x0F0F0F0F0F0F0F0FULL),
      global_keywords_(config.aasp_root_keywords) {
  const uint32_t p = std::max(1u, config.aasp_partitions);
  partitions_.resize(p);
  for (auto& partition : partitions_) {
    partition.root = MakeRoot();
    partition.num_nodes = 1;
  }
  slice_kmv_.reserve(num_slices_);
  for (uint32_t i = 0; i < num_slices_; ++i) {
    slice_kmv_.emplace_back(config.aasp_kmv_size, config.seed);
  }
}

AaspEstimator::~AaspEstimator() = default;

uint32_t AaspEstimator::num_nodes() const {
  uint32_t total = 0;
  for (const auto& partition : partitions_) total += partition.num_nodes;
  return total;
}

uint64_t AaspEstimator::SplitThreshold() const {
  const uint32_t target_leaves = std::max(1u, max_nodes_ / 2);
  const double threshold = 2.0 * split_value_ *
                           static_cast<double>(seen_population()) /
                           static_cast<double>(target_leaves);
  return std::max<uint64_t>(kMinSplitCount,
                            static_cast<uint64_t>(threshold));
}

uint32_t AaspEstimator::PartitionOf(
    const std::vector<stream::KeywordId>& keywords) const {
  if (keywords.empty() || partitions_.size() == 1) return 0;
  return static_cast<uint32_t>(
      util::SeededHash(keywords.front(), partition_hash_seed_) %
      partitions_.size());
}

int AaspEstimator::QuadrantOf(const Node& node, const geo::Point& p) const {
  const geo::Point c = node.cell.Center();
  return (p.x >= c.x ? 1 : 0) + (p.y >= c.y ? 2 : 0);
}

void AaspEstimator::SplitLeaf(Partition* partition, Node* node) {
  const geo::Point c = node->cell.Center();
  const geo::Rect& b = node->cell;
  const geo::Rect quads[4] = {
      {b.min_x, b.min_y, c.x, c.y},
      {c.x, b.min_y, b.max_x, c.y},
      {b.min_x, c.y, c.x, b.max_y},
      {c.x, c.y, b.max_x, b.max_y},
  };
  for (int i = 0; i < 4; ++i) {
    node->children[i] = std::make_unique<Node>(
        quads[i], node->depth + 1, num_slices_, node_keyword_capacity_);
  }
  node->is_leaf = false;
  partition->num_nodes += 4;
  // Counts are NOT redistributed: in the streaming ASP tree every point is
  // counted by exactly one node, and this node keeps the points it
  // absorbed while it was a leaf.
}

void AaspEstimator::InsertImpl(const stream::GeoTextObject& obj) {
  Partition& partition = partitions_[PartitionOf(obj.keywords)];
  Node* node = partition.root.get();
  while (!node->is_leaf) {
    node = node->children[QuadrantOf(*node, obj.loc)].get();
  }
  ++node->slice_counts[head_slice_];
  ++node->live_count;
  node->decayed_count += 1.0;
  for (const stream::KeywordId kw : obj.keywords) {
    node->keywords.Add(kw);
    global_keywords_.Add(kw);
    slice_kmv_[head_slice_].Add(kw);
  }
  global_keyword_objects_ += 1.0;
  if (++inserts_since_cache_ >= 4096) {
    untracked_cache_valid_ = false;
    inserts_since_cache_ = 0;
  }
  // The whole-forest node budget is shared evenly across partitions.
  const uint32_t partition_budget =
      max_nodes_ / static_cast<uint32_t>(partitions_.size());
  if (node->live_count > SplitThreshold() && node->depth < max_depth_ &&
      partition.num_nodes + 4 <= partition_budget) {
    SplitLeaf(&partition, node);
  }
}

uint64_t AaspEstimator::RotateNode(Partition* partition, Node* node) {
  // head_slice_ has already been advanced to the slot of the expiring
  // slice, which becomes the new current slice.
  const uint64_t expiring = node->slice_counts[head_slice_];
  assert(node->live_count >= expiring);
  node->live_count -= expiring;
  node->slice_counts[head_slice_] = 0;
  node->decayed_count *= decay_factor_;
  node->keywords.Decay(decay_factor_);

  uint64_t subtree_live = node->live_count;
  if (!node->is_leaf) {
    uint64_t child_live = 0;
    for (auto& child : node->children) {
      child_live += RotateNode(partition, child.get());
    }
    subtree_live += child_live;
    if (subtree_live == 0) {
      // Whole subtree expired: collapse back into a leaf.
      for (auto& child : node->children) child.reset();
      node->is_leaf = true;
      partition->num_nodes -= 4;
    }
  }
  return subtree_live;
}

void AaspEstimator::RotateImpl() {
  head_slice_ = (head_slice_ + 1) % num_slices_;
  for (auto& partition : partitions_) {
    RotateNode(&partition, partition.root.get());
  }
  slice_kmv_[head_slice_].Clear();
  global_keywords_.Decay(decay_factor_);
  global_keyword_objects_ *= decay_factor_;
  untracked_cache_valid_ = false;
}

double AaspEstimator::UntrackedKeywordCount() const {
  if (!untracked_cache_valid_) {
    // Probability mass reserved for keywords the bounded counter dropped:
    // spread the untracked occurrence mass over the untracked distinct
    // keywords (estimated via the KMV synopses).
    const double tracked_total = global_keywords_.TrackedTotal();
    const double untracked_mass =
        std::max(0.0, global_keywords_.total_weight() - tracked_total);
    const double distinct = EstimateDistinctKeywords();
    const double untracked_distinct =
        std::max(1.0, distinct - global_keywords_.size());
    cached_untracked_count_ = untracked_mass / untracked_distinct;
    untracked_cache_valid_ = true;
  }
  return cached_untracked_count_;
}

double AaspEstimator::GlobalKeywordProbability(
    const std::vector<stream::KeywordId>& keywords) const {
  if (global_keyword_objects_ < 1.0) return 0.0;
  const double untracked_count = UntrackedKeywordCount();
  double miss_all = 1.0;
  for (const stream::KeywordId kw : keywords) {
    const double count = global_keywords_.IsTracked(kw)
                             ? global_keywords_.Count(kw)
                             : untracked_count;
    const double p = std::clamp(count / global_keyword_objects_, 0.0, 1.0);
    miss_all *= (1.0 - p);
  }
  return 1.0 - miss_all;
}

double AaspEstimator::NodeKeywordProbability(
    const Node& node, const std::vector<stream::KeywordId>& keywords) const {
  if (node.decayed_count < 1.0) return GlobalKeywordProbability(keywords);
  double miss_all = 1.0;
  bool any_local = false;
  for (const stream::KeywordId kw : keywords) {
    if (node.keywords.IsTracked(kw)) {
      const double p =
          std::clamp(node.keywords.Count(kw) / node.decayed_count, 0.0, 1.0);
      miss_all *= (1.0 - p);
      any_local = true;
    } else {
      // Local counters never saw this keyword here; fall back to a global
      // single-keyword probability for this factor.
      std::vector<stream::KeywordId> one{kw};
      miss_all *= (1.0 - GlobalKeywordProbability(one));
    }
  }
  if (!any_local && node.keywords.size() == 0) {
    return GlobalKeywordProbability(keywords);
  }
  return 1.0 - miss_all;
}

double AaspEstimator::NodeKeywordProbabilityLocal(
    const Node& node, const std::vector<stream::KeywordId>& keywords) const {
  if (node.decayed_count < 1.0) return 0.0;
  double miss_all = 1.0;
  for (const stream::KeywordId kw : keywords) {
    const double count = node.keywords.Count(kw);  // 0 when untracked.
    const double p = std::clamp(count / node.decayed_count, 0.0, 1.0);
    miss_all *= (1.0 - p);
  }
  return 1.0 - miss_all;
}

double AaspEstimator::EstimateSpatial(const Node& node,
                                      const geo::Rect& range) const {
  if (!node.cell.Intersects(range)) return 0.0;
  double estimate = static_cast<double>(node.live_count) *
                    node.cell.OverlapFraction(range);
  if (!node.is_leaf) {
    for (const auto& child : node.children) {
      estimate += EstimateSpatial(*child, range);
    }
  }
  return estimate;
}

double AaspEstimator::EstimateHybrid(const Node& node,
                                     const stream::Query& q) const {
  if (!node.cell.Intersects(*q.range)) return 0.0;
  double estimate = 0.0;
  if (node.live_count > 0) {
    estimate = static_cast<double>(node.live_count) *
               node.cell.OverlapFraction(*q.range) *
               NodeKeywordProbability(node, q.keywords);
  }
  if (!node.is_leaf) {
    for (const auto& child : node.children) {
      estimate += EstimateHybrid(*child, q);
    }
  }
  return estimate;
}

double AaspEstimator::EstimateKeywordOnly(
    const Node& node, const std::vector<stream::KeywordId>& kw) const {
  // Tightly coupled aggregation: each node contributes its live count
  // times its *local* keyword probability. Keywords too rare for a node's
  // bounded counters contribute nothing — the coupling weakness the paper
  // calls out for pure keyword queries.
  double estimate = static_cast<double>(node.live_count) *
                    NodeKeywordProbabilityLocal(node, kw);
  if (!node.is_leaf) {
    for (const auto& child : node.children) {
      estimate += EstimateKeywordOnly(*child, kw);
    }
  }
  return estimate;
}

double AaspEstimator::Estimate(const stream::Query& q) const {
  // Every query type aggregates over the whole partition forest.
  double estimate = 0.0;
  switch (q.Type()) {
    case stream::QueryType::kSpatial:
      for (const auto& partition : partitions_) {
        estimate += EstimateSpatial(*partition.root, *q.range);
      }
      return estimate;
    case stream::QueryType::kKeyword:
      for (const auto& partition : partitions_) {
        estimate += EstimateKeywordOnly(*partition.root, q.keywords);
      }
      return estimate;
    case stream::QueryType::kHybrid:
      for (const auto& partition : partitions_) {
        estimate += EstimateHybrid(*partition.root, q);
      }
      return estimate;
  }
  return 0.0;
}

double AaspEstimator::EstimateDistinctKeywords() const {
  KmvSynopsis merged = slice_kmv_[0];
  for (uint32_t i = 1; i < num_slices_; ++i) merged.Merge(slice_kmv_[i]);
  return merged.EstimateDistinct();
}

size_t AaspEstimator::NodeMemoryBytes(const Node& node) const {
  size_t bytes = sizeof(Node) + node.slice_counts.size() * sizeof(uint64_t) +
                 node.keywords.size() * (sizeof(uint32_t) + sizeof(double) +
                                         2 * sizeof(void*));
  if (!node.is_leaf) {
    for (const auto& child : node.children) {
      bytes += NodeMemoryBytes(*child);
    }
  }
  return bytes;
}

size_t AaspEstimator::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& partition : partitions_) {
    bytes += NodeMemoryBytes(*partition.root);
  }
  bytes += global_keywords_.size() *
           (sizeof(uint32_t) + sizeof(double) + 2 * sizeof(void*));
  for (const auto& kmv : slice_kmv_) {
    bytes += kmv.size() * sizeof(double);
  }
  return bytes;
}

void AaspEstimator::SaveNode(const Node& node,
                             util::BinaryWriter* writer) const {
  writer->WriteBool(node.is_leaf);
  for (uint64_t count : node.slice_counts) writer->WriteU64(count);
  writer->WriteU64(node.live_count);
  writer->WriteDouble(node.decayed_count);
  node.keywords.Save(writer);
  if (!node.is_leaf) {
    for (const auto& child : node.children) SaveNode(*child, writer);
  }
}

bool AaspEstimator::LoadNode(Partition* partition, Node* node,
                             util::BinaryReader* reader) {
  if (!reader->ReadBool(&node->is_leaf)) return false;
  for (auto& count : node->slice_counts) {
    if (!reader->ReadU64(&count)) return false;
  }
  if (!reader->ReadU64(&node->live_count) ||
      !reader->ReadDouble(&node->decayed_count) ||
      !node->keywords.Load(reader)) {
    return false;
  }
  if (!node->is_leaf) {
    if (node->depth >= max_depth_) return false;  // Bounds recursion.
    const geo::Point c = node->cell.Center();
    const geo::Rect& b = node->cell;
    const geo::Rect quads[4] = {
        {b.min_x, b.min_y, c.x, c.y},
        {c.x, b.min_y, b.max_x, c.y},
        {b.min_x, c.y, c.x, b.max_y},
        {c.x, c.y, b.max_x, b.max_y},
    };
    for (int i = 0; i < 4; ++i) {
      node->children[i] = std::make_unique<Node>(
          quads[i], node->depth + 1, num_slices_, node_keyword_capacity_);
    }
    partition->num_nodes += 4;
    for (auto& child : node->children) {
      if (!LoadNode(partition, child.get(), reader)) return false;
    }
  }
  return true;
}

void AaspEstimator::SaveStateImpl(util::BinaryWriter* writer) const {
  writer->WriteU32(head_slice_);
  writer->WriteU64(partitions_.size());
  for (const auto& partition : partitions_) {
    SaveNode(*partition.root, writer);
  }
  global_keywords_.Save(writer);
  writer->WriteDouble(global_keyword_objects_);
  for (const auto& kmv : slice_kmv_) kmv.Save(writer);
  writer->WriteU64(inserts_since_cache_);
}

bool AaspEstimator::LoadStateImpl(util::BinaryReader* reader) {
  ResetImpl();
  uint32_t head_slice;
  uint64_t num_partitions;
  if (!reader->ReadU32(&head_slice) || head_slice >= num_slices_ ||
      !reader->ReadU64(&num_partitions) ||
      num_partitions != partitions_.size()) {
    return false;
  }
  head_slice_ = head_slice;
  for (auto& partition : partitions_) {
    if (!LoadNode(&partition, partition.root.get(), reader)) return false;
  }
  if (!global_keywords_.Load(reader) ||
      !reader->ReadDouble(&global_keyword_objects_)) {
    return false;
  }
  for (auto& kmv : slice_kmv_) {
    if (!kmv.Load(reader)) return false;
  }
  if (!reader->ReadU64(&inserts_since_cache_)) return false;
  untracked_cache_valid_ = false;
  return true;
}

void AaspEstimator::ResetImpl() {
  for (auto& partition : partitions_) {
    partition.root = MakeRoot();
    partition.num_nodes = 1;
  }
  head_slice_ = 0;
  global_keywords_.Clear();
  global_keyword_objects_ = 0.0;
  for (auto& kmv : slice_kmv_) kmv.Clear();
  cached_untracked_count_ = 0.0;
  untracked_cache_valid_ = false;
  inserts_since_cache_ = 0;
}

}  // namespace latest::estimators
