// Text tokenization for raw geo-textual posts.
//
// Real streams carry raw text ("House fire near #DowntownTO, please
// help!"), not keyword sets. The tokenizer lowercases, splits on
// non-alphanumeric characters, keeps hashtags as first-class tokens (the
// paper uses tweet hashtags as keywords), and filters stopwords and
// too-short tokens. Used by core::EstimationService and the examples.

#ifndef LATEST_STREAM_TOKENIZER_H_
#define LATEST_STREAM_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace latest::stream {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Tokens shorter than this are dropped (hashtags are always kept).
  size_t min_token_length = 3;

  /// Drop the built-in English stopword list ("the", "and", ...).
  bool filter_stopwords = true;

  /// Keep the '#' on hashtag tokens ("#fire" stays distinct from "fire").
  bool keep_hashtag_marker = true;

  /// Maximum tokens emitted per text (0 = unlimited).
  size_t max_tokens = 32;
};

/// Splits raw text into keyword tokens.
class Tokenizer {
 public:
  explicit Tokenizer(const TokenizerOptions& options = TokenizerOptions());

  /// Tokenizes `text`; tokens are lowercase, in order of appearance,
  /// duplicates removed (keeping the first occurrence).
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

  /// True iff the lowercase word is on the built-in stopword list.
  static bool IsStopword(std::string_view word);

 private:
  TokenizerOptions options_;
};

}  // namespace latest::stream

#endif  // LATEST_STREAM_TOKENIZER_H_
