#include "stream/keyword_dictionary.h"

#include <cassert>

namespace latest::stream {

KeywordId KeywordDictionary::Intern(std::string_view keyword) {
  // Single heterogeneous probe: find with the string_view, and only a
  // miss pays the std::string construction for the stored key.
  auto it = ids_.find(keyword);
  if (it != ids_.end()) return it->second;
  const KeywordId id = static_cast<KeywordId>(spellings_.size());
  spellings_.emplace_back(keyword);
  counts_.push_back(0);
  ids_.emplace(spellings_.back(), id);
  return id;
}

bool KeywordDictionary::Lookup(std::string_view keyword, KeywordId* id) const {
  auto it = ids_.find(keyword);
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

const std::string& KeywordDictionary::Spelling(KeywordId id) const {
  assert(id < spellings_.size());
  return spellings_[id];
}

void KeywordDictionary::CountOccurrences(
    const std::vector<KeywordId>& keywords) {
  for (const KeywordId id : keywords) {
    if (id >= counts_.size()) counts_.resize(id + 1, 0);
    ++counts_[id];
    ++total_occurrences_;
  }
}

uint64_t KeywordDictionary::OccurrenceCount(KeywordId id) const {
  if (id >= counts_.size()) return 0;
  return counts_[id];
}

double KeywordDictionary::Frequency(KeywordId id) const {
  if (total_occurrences_ == 0) return 0.0;
  return static_cast<double>(OccurrenceCount(id)) /
         static_cast<double>(total_occurrences_);
}

}  // namespace latest::stream
