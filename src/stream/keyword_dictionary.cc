#include "stream/keyword_dictionary.h"

#include <cassert>

namespace latest::stream {

KeywordId KeywordDictionary::Intern(std::string_view keyword) {
  // Single heterogeneous probe: find with the string_view, and only a
  // miss pays the std::string construction for the stored key.
  auto it = ids_.find(keyword);
  if (it != ids_.end()) return it->second;
  const KeywordId id = static_cast<KeywordId>(spellings_.size());
  spellings_.emplace_back(keyword);
  counts_.push_back(0);
  ids_.emplace(spellings_.back(), id);
  return id;
}

bool KeywordDictionary::Lookup(std::string_view keyword, KeywordId* id) const {
  auto it = ids_.find(keyword);
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

const std::string& KeywordDictionary::Spelling(KeywordId id) const {
  assert(id < spellings_.size());
  return spellings_[id];
}

void KeywordDictionary::CountOccurrences(
    const std::vector<KeywordId>& keywords) {
  for (const KeywordId id : keywords) {
    if (id >= counts_.size()) counts_.resize(id + 1, 0);
    ++counts_[id];
    ++total_occurrences_;
  }
}

uint64_t KeywordDictionary::OccurrenceCount(KeywordId id) const {
  if (id >= counts_.size()) return 0;
  return counts_[id];
}

double KeywordDictionary::Frequency(KeywordId id) const {
  if (total_occurrences_ == 0) return 0.0;
  return static_cast<double>(OccurrenceCount(id)) /
         static_cast<double>(total_occurrences_);
}

void KeywordDictionary::Save(util::BinaryWriter* writer) const {
  writer->WriteU64(spellings_.size());
  for (const std::string& spelling : spellings_) writer->WriteString(spelling);
  // counts_ can lag spellings_ when recent keywords were interned but
  // never counted; persist its true length.
  writer->WriteU64(counts_.size());
  for (uint64_t count : counts_) writer->WriteU64(count);
  writer->WriteU64(total_occurrences_);
}

bool KeywordDictionary::Load(util::BinaryReader* reader) {
  ids_.clear();
  spellings_.clear();
  counts_.clear();
  total_occurrences_ = 0;
  uint64_t num_spellings;
  if (!reader->ReadU64(&num_spellings)) return false;
  spellings_.reserve(num_spellings);
  for (uint64_t i = 0; i < num_spellings; ++i) {
    std::string spelling;
    if (!reader->ReadString(&spelling)) return false;
    spellings_.push_back(std::move(spelling));
  }
  uint64_t num_counts;
  if (!reader->ReadU64(&num_counts) || num_counts > num_spellings) return false;
  counts_.resize(num_counts);
  for (auto& count : counts_) {
    if (!reader->ReadU64(&count)) return false;
  }
  if (!reader->ReadU64(&total_occurrences_)) return false;
  // Ids are dense positions in spellings_, so re-interning in order
  // reproduces the exact id assignment.
  ids_.reserve(spellings_.size());
  for (size_t i = 0; i < spellings_.size(); ++i) {
    ids_.emplace(spellings_[i], static_cast<KeywordId>(i));
  }
  return true;
}

}  // namespace latest::stream
