#include "stream/object.h"

#include <algorithm>

namespace latest::stream {

namespace {

/// Size ratio above which per-element galloping beats the linear merge.
constexpr size_t kGallopRatio = 8;

/// Intersection test with `a` the (much) smaller sorted set: for each id
/// of `a`, gallop through the tail of `b` — double the probe stride until
/// overshoot, then binary-search the bracketed range.
bool GallopIntersect(const KeywordId* a, size_t a_len, const KeywordId* b,
                     size_t b_len) {
  size_t lo = 0;
  for (size_t i = 0; i < a_len; ++i) {
    const KeywordId target = a[i];
    size_t step = 1;
    size_t probe = lo;
    while (probe < b_len && b[probe] < target) {
      lo = probe + 1;
      probe += step;
      step *= 2;
    }
    const KeywordId* end = b + std::min(probe, b_len);
    const KeywordId* it = std::lower_bound(b + lo, end, target);
    if (it != b + b_len && *it == target) return true;
    lo = static_cast<size_t>(it - b);
    if (lo >= b_len) return false;  // All remaining a ids are larger too.
  }
  return false;
}

}  // namespace

bool KeywordSetsIntersect(const KeywordId* a, size_t a_len, const KeywordId* b,
                          size_t b_len) {
  if (a_len == 0 || b_len == 0) return false;
  if (a_len * kGallopRatio <= b_len) return GallopIntersect(a, a_len, b, b_len);
  if (b_len * kGallopRatio <= a_len) return GallopIntersect(b, b_len, a, a_len);
  // Merge-style intersection test over two sorted sets of similar size
  // (objects carry a handful of keywords, queries up to ~5).
  const KeywordId* a_end = a + a_len;
  const KeywordId* b_end = b + b_len;
  while (a != a_end && b != b_end) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

bool GeoTextObject::MatchesAnyKeyword(
    const std::vector<KeywordId>& query_keywords) const {
  return KeywordSetsIntersect(keywords.data(), keywords.size(),
                              query_keywords.data(), query_keywords.size());
}

void CanonicalizeKeywords(std::vector<KeywordId>* keywords) {
  std::sort(keywords->begin(), keywords->end());
  keywords->erase(std::unique(keywords->begin(), keywords->end()),
                  keywords->end());
}

}  // namespace latest::stream
