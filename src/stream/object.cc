#include "stream/object.h"

#include <algorithm>

namespace latest::stream {

bool GeoTextObject::MatchesAnyKeyword(
    const std::vector<KeywordId>& query_keywords) const {
  // Merge-style intersection test over two sorted vectors; both sides are
  // small (objects carry a handful of keywords, queries up to ~5).
  auto a = keywords.begin();
  auto b = query_keywords.begin();
  while (a != keywords.end() && b != query_keywords.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

void CanonicalizeKeywords(std::vector<KeywordId>* keywords) {
  std::sort(keywords->begin(), keywords->end());
  keywords->erase(std::unique(keywords->begin(), keywords->end()),
                  keywords->end());
}

}  // namespace latest::stream
