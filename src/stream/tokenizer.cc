#include "stream/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace latest::stream {

namespace {

// A compact English stopword list; enough to keep hashtag/content words.
constexpr std::array<std::string_view, 52> kStopwords = {
    "a",    "an",   "and",  "are",  "as",    "at",    "be",    "but",
    "by",   "can",  "do",   "for",  "from",  "had",   "has",   "have",
    "he",   "her",  "his",  "i",    "if",    "in",    "is",    "it",
    "its",  "just", "me",   "my",   "no",    "not",   "of",    "on",
    "or",   "our",  "out",  "she",  "so",    "that",  "the",   "their",
    "them", "they", "this", "to",   "was",   "we",    "were",  "will",
    "with", "you",  "your", "yours"};

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

Tokenizer::Tokenizer(const TokenizerOptions& options) : options_(options) {}

bool Tokenizer::IsStopword(std::string_view word) {
  return std::find(kStopwords.begin(), kStopwords.end(), word) !=
         kStopwords.end();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::unordered_set<std::string> seen;
  size_t i = 0;
  while (i < text.size()) {
    // Detect a hashtag marker immediately preceding a token.
    bool is_hashtag = false;
    if (text[i] == '#' && i + 1 < text.size() && IsTokenChar(text[i + 1])) {
      is_hashtag = true;
      ++i;
    }
    if (!IsTokenChar(text[i])) {
      ++i;
      continue;
    }
    const size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) ++i;

    std::string token(text.substr(start, i - start));
    std::transform(token.begin(), token.end(), token.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });

    if (!is_hashtag) {
      if (token.size() < options_.min_token_length) continue;
      if (options_.filter_stopwords && IsStopword(token)) continue;
    }
    if (is_hashtag && options_.keep_hashtag_marker) {
      token.insert(token.begin(), '#');
    }
    if (!seen.insert(token).second) continue;
    tokens.push_back(std::move(token));
    if (options_.max_tokens > 0 && tokens.size() >= options_.max_tokens) {
      break;
    }
  }
  return tokens;
}

}  // namespace latest::stream
