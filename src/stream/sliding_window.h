// Time-window machinery shared by every windowed structure in LATEST.
//
// The paper evaluates all queries against S_T, the past T time units of the
// stream. We discretize the window into `num_slices` equal time slices; a
// structure keeps per-slice state and drops the oldest slice whenever event
// time crosses a slice boundary. This gives O(1) amortized expiry without
// storing raw per-object timestamps in every estimator.

#ifndef LATEST_STREAM_SLIDING_WINDOW_H_
#define LATEST_STREAM_SLIDING_WINDOW_H_

#include <cstdint>
#include <vector>

#include "stream/object.h"
#include "util/serialization.h"
#include "util/status.h"

namespace latest::stream {

/// Configuration of the shared time window.
struct WindowConfig {
  /// Window length T in milliseconds of event time.
  Timestamp window_length_ms = 60 * 60 * 1000;

  /// Number of equal slices the window is divided into. More slices means
  /// finer expiry granularity at slightly higher per-structure overhead.
  uint32_t num_slices = 16;

  /// Validates the configuration.
  util::Status Validate() const;

  /// Duration of one slice.
  Timestamp SliceDuration() const {
    return window_length_ms / static_cast<Timestamp>(num_slices);
  }
};

/// Maps event time to absolute slice indexes and detects rotations.
///
/// Usage: the stream driver calls Advance(t) for every event; the returned
/// count says how many slice rotations occurred, which the owner fans out
/// to every windowed structure (estimators, window population counter...).
class SliceClock {
 public:
  explicit SliceClock(const WindowConfig& config);

  /// Advances event time to `t` and returns the number of slice
  /// boundaries crossed since the last call. Out-of-order (late)
  /// timestamps clamp to the current event time: the clock never moves
  /// backwards, a late event causes no rotation, and `now()` is
  /// unchanged — the late object simply lands in the current slice.
  uint32_t Advance(Timestamp t);

  /// Absolute index of the slice containing `t`.
  int64_t SliceIndexOf(Timestamp t) const;

  /// Absolute index of the current (newest) slice.
  int64_t current_slice() const { return current_slice_; }

  /// Latest event time seen.
  Timestamp now() const { return now_; }

  const WindowConfig& config() const { return config_; }

  /// Persists the clock position (the config is construction-time state).
  void Save(util::BinaryWriter* writer) const {
    writer->WriteI64(now_);
    writer->WriteI64(current_slice_);
  }

  /// Restores a position persisted by Save; false on truncation.
  bool Load(util::BinaryReader* reader) {
    return reader->ReadI64(&now_) && reader->ReadI64(&current_slice_);
  }

 private:
  WindowConfig config_;
  Timestamp now_ = 0;
  int64_t current_slice_ = 0;
};

/// A ring buffer of per-slice values of type T. `Rotate()` drops the oldest
/// slice and opens a fresh (value-initialized) one.
template <typename T>
class SliceRing {
 public:
  explicit SliceRing(uint32_t num_slices)
      : slices_(num_slices), head_(0) {}

  /// Mutable access to the newest slice.
  T& Current() { return slices_[head_]; }
  const T& Current() const { return slices_[head_]; }

  /// Slice i steps back from the newest (0 = newest).
  T& FromNewest(uint32_t i) {
    return slices_[(head_ + slices_.size() - i) % slices_.size()];
  }
  const T& FromNewest(uint32_t i) const {
    return slices_[(head_ + slices_.size() - i) % slices_.size()];
  }

  /// Drops the oldest slice; the freed slot becomes the new empty current
  /// slice.
  void Rotate() {
    head_ = (head_ + 1) % slices_.size();
    slices_[head_] = T{};
  }

  /// Applies `fn` to every slice (ordering unspecified).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& s : slices_) fn(s);
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& s : slices_) fn(s);
  }

  uint32_t num_slices() const { return static_cast<uint32_t>(slices_.size()); }

  /// Value-initializes every slice.
  void Clear() {
    for (auto& s : slices_) s = T{};
    head_ = 0;
  }

  /// Persists the ring: head cursor plus every slot in raw index order
  /// (the same order ForEach visits), each slot written by `save_slice`.
  template <typename SaveFn>
  void Save(util::BinaryWriter* writer, SaveFn&& save_slice) const {
    writer->WriteU64(slices_.size());
    writer->WriteU64(head_);
    for (const auto& s : slices_) save_slice(s, writer);
  }

  /// Restores a ring persisted by Save; `load_slice(T*, reader)` must
  /// return false on malformed input. The slice count must match the one
  /// this ring was constructed with.
  template <typename LoadFn>
  bool Load(util::BinaryReader* reader, LoadFn&& load_slice) {
    uint64_t num_slices, head;
    if (!reader->ReadU64(&num_slices) || !reader->ReadU64(&head)) return false;
    if (num_slices != slices_.size() || head >= slices_.size()) return false;
    for (auto& s : slices_) {
      if (!load_slice(&s, reader)) return false;
    }
    head_ = head;
    return true;
  }

 private:
  std::vector<T> slices_;
  size_t head_;
};

/// Per-slice object population of the window: how many stream objects fall
/// in each live slice. LATEST uses it to scale estimates from partially
/// pre-filled estimators (Section V-D) and as the window size |S_T|.
class WindowPopulation {
 public:
  explicit WindowPopulation(uint32_t num_slices) : counts_(num_slices) {}

  /// Records one arriving object (into the current slice).
  void Add() {
    ++counts_.Current();
    ++total_;
  }

  /// Drops the oldest slice.
  void Rotate() {
    total_ -= counts_.FromNewest(counts_.num_slices() - 1);
    counts_.Rotate();
  }

  /// Objects currently inside the window.
  uint64_t total() const { return total_; }

  /// Objects in the newest `k` slices (k <= num_slices).
  uint64_t TotalOfNewest(uint32_t k) const;

  uint32_t num_slices() const { return counts_.num_slices(); }

  void Clear() {
    counts_.Clear();
    total_ = 0;
  }

  /// Persists the per-slice counts and running total.
  void Save(util::BinaryWriter* writer) const {
    counts_.Save(writer, [](uint64_t count, util::BinaryWriter* w) {
      w->WriteU64(count);
    });
    writer->WriteU64(total_);
  }

  /// Restores a state persisted by Save; false on shape mismatch or
  /// truncation.
  bool Load(util::BinaryReader* reader) {
    if (!counts_.Load(reader, [](uint64_t* count, util::BinaryReader* r) {
          return r->ReadU64(count);
        })) {
      return false;
    }
    return reader->ReadU64(&total_);
  }

 private:
  SliceRing<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace latest::stream

#endif  // LATEST_STREAM_SLIDING_WINDOW_H_
