// The RC-DVQ estimation query of Section III.
//
// Range-Counting Distinct-Value Query: q = (spatial range R, keyword set W),
// both optional. It estimates |{o in S_T : o.loc in R and o.kw intersects
// W}| over the time window S_T. With only R it degenerates to a range
// counting query; with only W to a distinct-value (keyword) query.

#ifndef LATEST_STREAM_QUERY_H_
#define LATEST_STREAM_QUERY_H_

#include <optional>
#include <vector>

#include "geo/rect.h"
#include "stream/object.h"

namespace latest::stream {

/// Which predicates a query carries. This is feature (2) of the learning
/// model's training records (Section V-C).
enum class QueryType {
  kSpatial = 0,  // Range only.
  kKeyword = 1,  // Keywords only.
  kHybrid = 2,   // Both.
};

/// Returns a short stable name ("spatial", "keyword", "hybrid").
const char* QueryTypeName(QueryType type);

/// One snapshot RC-DVQ estimation query.
struct Query {
  /// Spatial predicate; absent for pure keyword queries.
  std::optional<geo::Rect> range;

  /// Keyword predicate (canonical: sorted, deduplicated); empty for pure
  /// spatial queries.
  std::vector<KeywordId> keywords;

  /// Arrival time of the query on the stream.
  Timestamp timestamp = 0;

  /// Classifies the query; at least one predicate must be present.
  QueryType Type() const;

  /// True iff the query carries a spatial predicate.
  bool HasRange() const { return range.has_value(); }

  /// True iff the query carries a keyword predicate.
  bool HasKeywords() const { return !keywords.empty(); }

  /// Predicate evaluation against one object (window membership is the
  /// caller's concern). Implements conditions (1) and (2) of RC-DVQ.
  bool Matches(const GeoTextObject& obj) const;

  /// Same predicate over columnar storage: a location plus a keyword span
  /// (sorted ascending) as stored in the window store's arena.
  bool Matches(const geo::Point& loc, const KeywordId* kw,
               size_t kw_len) const;
};

}  // namespace latest::stream

#endif  // LATEST_STREAM_QUERY_H_
