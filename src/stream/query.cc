#include "stream/query.h"

#include <cassert>

namespace latest::stream {

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kSpatial:
      return "spatial";
    case QueryType::kKeyword:
      return "keyword";
    case QueryType::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

QueryType Query::Type() const {
  assert(HasRange() || HasKeywords());
  if (HasRange() && HasKeywords()) return QueryType::kHybrid;
  if (HasRange()) return QueryType::kSpatial;
  return QueryType::kKeyword;
}

bool Query::Matches(const GeoTextObject& obj) const {
  if (HasRange() && !range->Contains(obj.loc)) return false;
  if (HasKeywords() && !obj.MatchesAnyKeyword(keywords)) return false;
  return true;
}

bool Query::Matches(const geo::Point& loc, const KeywordId* kw,
                    size_t kw_len) const {
  if (HasRange() && !range->Contains(loc)) return false;
  if (HasKeywords() &&
      !KeywordSetsIntersect(kw, kw_len, keywords.data(), keywords.size())) {
    return false;
  }
  return true;
}

}  // namespace latest::stream
