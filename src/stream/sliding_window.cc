#include "stream/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace latest::stream {

util::Status WindowConfig::Validate() const {
  if (window_length_ms <= 0) {
    return util::Status::InvalidArgument("window_length_ms must be > 0");
  }
  if (num_slices == 0) {
    return util::Status::InvalidArgument("num_slices must be > 0");
  }
  if (window_length_ms % static_cast<Timestamp>(num_slices) != 0) {
    return util::Status::InvalidArgument(
        "window_length_ms must be a multiple of num_slices");
  }
  return util::Status::Ok();
}

SliceClock::SliceClock(const WindowConfig& config) : config_(config) {
  assert(config.Validate().ok());
}

uint32_t SliceClock::Advance(Timestamp t) {
  // Late (out-of-order) timestamps clamp: t < now_ leaves the clock
  // where it is, so a straggler neither rotates slices nor rewinds
  // `now()` — it is accounted into the current slice.
  now_ = std::max(now_, t);
  const int64_t slice = SliceIndexOf(now_);
  if (slice <= current_slice_) return 0;
  const auto rotations = static_cast<uint32_t>(slice - current_slice_);
  current_slice_ = slice;
  return rotations;
}

int64_t SliceClock::SliceIndexOf(Timestamp t) const {
  return t / config_.SliceDuration();
}

uint64_t WindowPopulation::TotalOfNewest(uint32_t k) const {
  assert(k <= counts_.num_slices());
  uint64_t sum = 0;
  for (uint32_t i = 0; i < k; ++i) sum += counts_.FromNewest(i);
  return sum;
}

}  // namespace latest::stream
