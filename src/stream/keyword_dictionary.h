// Keyword string interning and global frequency statistics.
//
// The dictionary maps keyword strings (hashtags, species codes, tags) to
// dense KeywordIds and tracks how often each keyword has been observed on
// the stream. Frequencies feed (a) the workload-driven FFN estimator's
// keyword-popularity feature and (b) the learning model's
// keyword-selectivity feature.

#ifndef LATEST_STREAM_KEYWORD_DICTIONARY_H_
#define LATEST_STREAM_KEYWORD_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/object.h"
#include "util/serialization.h"

namespace latest::stream {

/// Interns keyword strings to dense ids and counts stream occurrences.
class KeywordDictionary {
 public:
  KeywordDictionary() = default;

  /// Returns the id for the keyword, interning it on first sight.
  KeywordId Intern(std::string_view keyword);

  /// Id lookup without interning; returns false when unknown.
  bool Lookup(std::string_view keyword, KeywordId* id) const;

  /// The string for an id. Id must have been returned by Intern.
  const std::string& Spelling(KeywordId id) const;

  /// Number of distinct interned keywords.
  size_t size() const { return spellings_.size(); }

  /// Records one stream occurrence of each keyword of an object.
  void CountOccurrences(const std::vector<KeywordId>& keywords);

  /// Total occurrences recorded for one keyword (0 for ids never counted).
  uint64_t OccurrenceCount(KeywordId id) const;

  /// Total keyword occurrences recorded across the stream lifetime.
  uint64_t total_occurrences() const { return total_occurrences_; }

  /// Fraction of all occurrences carried by `id` (0 when nothing counted).
  double Frequency(KeywordId id) const;

  /// Persists spellings and counts in id order (ids are dense, so the
  /// string-to-id map is rebuilt by re-interning on load).
  void Save(util::BinaryWriter* writer) const;

  /// Restores a dictionary persisted by Save, replacing the current
  /// contents; false on truncation (the dictionary is left empty).
  bool Load(util::BinaryReader* reader);

 private:
  /// Transparent hash so the map probes directly with string_view keys:
  /// Intern/Lookup never materialize a temporary std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, KeywordId, StringHash, std::equal_to<>>
      ids_;
  std::vector<std::string> spellings_;
  std::vector<uint64_t> counts_;
  uint64_t total_occurrences_ = 0;
};

}  // namespace latest::stream

#endif  // LATEST_STREAM_KEYWORD_DICTIONARY_H_
