#include "stream/window_store.h"

#include <algorithm>

namespace latest::stream {

WindowStore::WindowStore(Timestamp slice_duration_ms)
    : slice_duration_ms_(std::max<Timestamp>(1, slice_duration_ms)) {}

void WindowStore::Slice::Reset(Row new_base, Timestamp new_seal_ts) {
  base = new_base;
  seal_ts = new_seal_ts;
  max_ts = std::numeric_limits<Timestamp>::min();
  timestamps.clear();
  locs.clear();
  oids.clear();
  spans.clear();
  arena.Clear();
}

uint64_t WindowStore::Slice::CapacityBytes() const {
  return timestamps.capacity() * sizeof(Timestamp) +
         locs.capacity() * sizeof(geo::Point) +
         oids.capacity() * sizeof(ObjectId) +
         spans.capacity() * sizeof(KeywordSpan) + arena.capacity_bytes();
}

void WindowStore::OpenSlice(Timestamp first_ts) {
  // Slice boundaries are aligned to multiples of the slice duration, like
  // SliceClock's absolute slice indexes.
  const Timestamp aligned_start =
      (first_ts / slice_duration_ms_) * slice_duration_ms_;
  const Timestamp seal_ts = aligned_start + slice_duration_ms_;
  if (!free_slices_.empty()) {
    slices_.push_back(std::move(free_slices_.back()));
    free_slices_.pop_back();
    slices_.back().Reset(next_row_, seal_ts);
  } else {
    slices_.emplace_back();
    slices_.back().base = next_row_;
    slices_.back().seal_ts = seal_ts;
  }
}

WindowStore::Row WindowStore::Append(const GeoTextObject& obj) {
  if (slices_.empty() || obj.timestamp >= slices_.back().seal_ts) {
    OpenSlice(obj.timestamp);
  }
  Slice& slice = slices_.back();
  const Row row = next_row_++;
  assert(row - slice.base == slice.rows());
  slice.timestamps.push_back(obj.timestamp);
  slice.locs.push_back(obj.loc);
  slice.oids.push_back(obj.oid);
  slice.spans.push_back(
      slice.arena.Append(obj.keywords.data(), obj.keywords.size()));
  slice.max_ts = std::max(slice.max_ts, obj.timestamp);
  arena_bytes_ += obj.keywords.size() * sizeof(KeywordId);
  return row;
}

void WindowStore::DropBefore(Timestamp cutoff) {
  // The open (newest) slice is never dropped: appends target it and its
  // few rows expire lazily in the consumers until the slice seals.
  while (slices_.size() > 1 && slices_.front().max_ts < cutoff) {
    Slice& slice = slices_.front();
    arena_bytes_ -= slice.arena.bytes();
    free_slices_.push_back(std::move(slice));
    slices_.pop_front();
  }
}

uint64_t WindowStore::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const Slice& s : slices_) bytes += s.CapacityBytes();
  for (const Slice& s : free_slices_) bytes += s.CapacityBytes();
  return bytes;
}

void WindowStore::Clear() {
  for (Slice& slice : slices_) {
    free_slices_.push_back(std::move(slice));
  }
  slices_.clear();
  arena_bytes_ = 0;
}

void WindowStore::Save(util::BinaryWriter* writer) const {
  writer->WriteI64(slice_duration_ms_);
  writer->WriteU32(next_row_);
  writer->WriteU64(arena_bytes_);
  writer->WriteU64(slices_.size());
  for (const Slice& slice : slices_) {
    writer->WriteU32(slice.base);
    writer->WriteI64(slice.seal_ts);
    writer->WriteI64(slice.max_ts);
    writer->WriteU64(slice.rows());
    writer->WriteBytes(slice.timestamps.data(),
                       slice.rows() * sizeof(Timestamp));
    writer->WriteBytes(slice.locs.data(), slice.rows() * sizeof(geo::Point));
    writer->WriteBytes(slice.oids.data(), slice.rows() * sizeof(ObjectId));
    writer->WriteBytes(slice.spans.data(), slice.rows() * sizeof(KeywordSpan));
    slice.arena.Save(writer);
  }
}

bool WindowStore::Load(util::BinaryReader* reader) {
  Clear();
  int64_t slice_duration;
  uint32_t next_row;
  uint64_t arena_bytes, num_slices;
  if (!reader->ReadI64(&slice_duration) || !reader->ReadU32(&next_row) ||
      !reader->ReadU64(&arena_bytes) || !reader->ReadU64(&num_slices)) {
    return false;
  }
  if (slice_duration != slice_duration_ms_) return false;
  for (uint64_t i = 0; i < num_slices; ++i) {
    // Recycle free-list capacity exactly like OpenSlice does.
    if (!free_slices_.empty()) {
      slices_.push_back(std::move(free_slices_.back()));
      free_slices_.pop_back();
      slices_.back().Reset(0, 0);
    } else {
      slices_.emplace_back();
    }
    Slice& slice = slices_.back();
    uint64_t rows;
    if (!reader->ReadU32(&slice.base) || !reader->ReadI64(&slice.seal_ts) ||
        !reader->ReadI64(&slice.max_ts) || !reader->ReadU64(&rows) ||
        reader->remaining() < rows * (sizeof(Timestamp) + sizeof(geo::Point) +
                                      sizeof(ObjectId) + sizeof(KeywordSpan))) {
      Clear();
      return false;
    }
    slice.timestamps.resize(rows);
    slice.locs.resize(rows);
    slice.oids.resize(rows);
    slice.spans.resize(rows);
    if (!reader->ReadBytes(slice.timestamps.data(),
                           rows * sizeof(Timestamp)) ||
        !reader->ReadBytes(slice.locs.data(), rows * sizeof(geo::Point)) ||
        !reader->ReadBytes(slice.oids.data(), rows * sizeof(ObjectId)) ||
        !reader->ReadBytes(slice.spans.data(), rows * sizeof(KeywordSpan)) ||
        !slice.arena.Load(reader)) {
      Clear();
      return false;
    }
  }
  next_row_ = next_row;
  arena_bytes_ = arena_bytes;
  return true;
}

const WindowStore::Slice& WindowStore::Reader::SliceFor(Row row) const {
  const auto& slices = store_.slices_;
  assert(!slices.empty());
  assert(row >= store_.first_live_row() && row < store_.end_row());
  if (cached_slice_ < slices.size()) {
    const Slice& cached = slices[cached_slice_];
    if (row >= cached.base && row - cached.base < cached.rows()) {
      return cached;
    }
    // Scans walk rows in ascending order, so a miss almost always lands
    // in the next slice; probe it before the binary search.
    const size_t next = cached_slice_ + 1;
    if (next < slices.size() && row >= slices[next].base &&
        row - slices[next].base < slices[next].rows()) {
      cached_slice_ = next;
      return slices[next];
    }
  }
  // Binary search the (ascending) slice bases for the last base <= row.
  size_t lo = 0;
  size_t hi = slices.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (slices[mid].base <= row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  cached_slice_ = lo;
  return slices[lo];
}

}  // namespace latest::stream
