// The geo-textual stream data model of Section III.
//
// Each stream object o = (oid, loc, kw, timestamp): an object id, a 2-D
// location, a set of keyword ids, and the posting time. Keywords are
// interned to dense 32-bit ids by stream::KeywordDictionary.

#ifndef LATEST_STREAM_OBJECT_H_
#define LATEST_STREAM_OBJECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace latest::stream {

/// Unique object identifier within a stream.
using ObjectId = uint64_t;

/// Dense interned keyword identifier.
using KeywordId = uint32_t;

/// Stream event time, in milliseconds since the stream epoch. All clocks in
/// LATEST are simulated event time, so experiments replay deterministically.
using Timestamp = int64_t;

/// One geo-textual stream object.
struct GeoTextObject {
  ObjectId oid = 0;
  geo::Point loc;
  std::vector<KeywordId> keywords;  // Sorted ascending, deduplicated.
  Timestamp timestamp = 0;

  /// True iff the object carries at least one of the query keywords.
  /// Both keyword vectors must be sorted ascending.
  bool MatchesAnyKeyword(const std::vector<KeywordId>& query_keywords) const;
};

/// Sorts and deduplicates a keyword set in place (canonical form used by
/// GeoTextObject and queries).
void CanonicalizeKeywords(std::vector<KeywordId>* keywords);

/// True iff two sorted keyword sets share at least one id. Merge-walks
/// similar-sized sets; when one side is much larger, gallops (exponential
/// probe + binary search) through it instead, so short query keyword sets
/// test long arena spans in O(short * log(long)).
bool KeywordSetsIntersect(const KeywordId* a, size_t a_len, const KeywordId* b,
                          size_t b_len);

}  // namespace latest::stream

#endif  // LATEST_STREAM_OBJECT_H_
