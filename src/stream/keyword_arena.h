// Bump arena for keyword sets: the backing storage of the columnar window
// store's keyword column.
//
// Each stored object's (sorted, deduplicated) keyword set is appended once
// into a flat KeywordId buffer and referenced by a (offset, len) Span.
// Appends are amortized O(len) with no per-object allocation; dropping a
// whole arena (when its window slice expires) is O(1) and keeps the buffer
// capacity for the slice that recycles it.

#ifndef LATEST_STREAM_KEYWORD_ARENA_H_
#define LATEST_STREAM_KEYWORD_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/object.h"
#include "util/serialization.h"

namespace latest::stream {

/// A reference into a KeywordArena: `len` KeywordIds starting at `offset`.
struct KeywordSpan {
  uint32_t offset = 0;
  uint32_t len = 0;
};

/// Flat append-only KeywordId storage with O(1) whole-arena reset.
class KeywordArena {
 public:
  KeywordArena() = default;

  /// Copies `n` ids into the arena and returns their span.
  KeywordSpan Append(const KeywordId* ids, size_t n) {
    const KeywordSpan span{static_cast<uint32_t>(data_.size()),
                           static_cast<uint32_t>(n)};
    data_.insert(data_.end(), ids, ids + n);
    return span;
  }

  /// Pointer to the first id of a span (valid until the next Append or
  /// Clear). A zero-length span yields an unspecified non-dereferenceable
  /// pointer.
  const KeywordId* Data(KeywordSpan span) const {
    return data_.data() + span.offset;
  }

  /// Total ids stored.
  size_t size() const { return data_.size(); }

  /// Bytes of keyword payload currently stored.
  size_t bytes() const { return data_.size() * sizeof(KeywordId); }

  /// Bytes of buffer capacity held (>= bytes()).
  size_t capacity_bytes() const { return data_.capacity() * sizeof(KeywordId); }

  /// Drops every span in O(1), keeping the buffer capacity.
  void Clear() { data_.clear(); }

  void Reserve(size_t n) { data_.reserve(n); }

  /// Persists the whole id buffer (spans stay valid because offsets are
  /// relative to the buffer start).
  void Save(util::BinaryWriter* writer) const {
    writer->WriteU64(data_.size());
    writer->WriteBytes(data_.data(), data_.size() * sizeof(KeywordId));
  }

  /// Restores a buffer persisted by Save; false on truncation.
  bool Load(util::BinaryReader* reader) {
    uint64_t size;
    if (!reader->ReadU64(&size)) return false;
    if (reader->remaining() < size * sizeof(KeywordId)) return false;
    data_.resize(size);
    return reader->ReadBytes(data_.data(), size * sizeof(KeywordId));
  }

 private:
  std::vector<KeywordId> data_;
};

}  // namespace latest::stream

#endif  // LATEST_STREAM_KEYWORD_ARENA_H_
