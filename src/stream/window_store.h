// Slice-partitioned columnar storage of the live window S_T.
//
// Every stream object is appended exactly once into the store, which keeps
// per-slice structure-of-arrays columns (timestamps, locations, oids,
// keyword spans backed by a per-slice bump arena). Consumers — the exact
// grid/quadtree/inverted backends — reference objects by dense uint32 row
// ids instead of holding copies, so their scans iterate plain arrays and
// window expiry is an O(1) drop of the oldest slice's buffers: no
// per-object destruction, no deque churn.
//
// Row ids are globally monotone: row n is the n-th object ever appended.
// A slice is sealed when an append's timestamp reaches the next slice
// boundary; DropBefore() retires sealed slices whose newest timestamp is
// older than the window cutoff, recycling their buffers (capacity intact)
// through a free list. Indexes guard against rows of dropped slices with
// first_live_row(): any held row below it refers to an already-expired
// object and must be discarded without dereferencing.
//
// Threading: Append/DropBefore/Clear are single-writer; Reader-based
// lookups are safe from many threads concurrently as long as no writer
// runs (the sharded exact scans of PR 2 create one Reader per shard).

#ifndef LATEST_STREAM_WINDOW_STORE_H_
#define LATEST_STREAM_WINDOW_STORE_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "geo/point.h"
#include "stream/keyword_arena.h"
#include "stream/object.h"
#include "util/serialization.h"

namespace latest::stream {

/// Columnar windowed object store shared by the exact backends.
class WindowStore {
 public:
  /// Dense global object row id; monotone in append order.
  using Row = uint32_t;

  /// slice_duration_ms: time covered by one slice (typically T divided by
  /// the window's slice count; must be >= 1).
  explicit WindowStore(Timestamp slice_duration_ms);

  /// Appends one object (timestamps non-decreasing) and returns its row.
  Row Append(const GeoTextObject& obj);

  /// Retires every sealed slice whose newest timestamp is < cutoff. Call
  /// only after index consumers evicted rows below the same cutoff; rows
  /// of retired slices must no longer be dereferenced.
  void DropBefore(Timestamp cutoff);

  /// First row still resident; rows below it belong to dropped slices.
  Row first_live_row() const {
    return slices_.empty() ? next_row_ : slices_.front().base;
  }

  /// One past the newest row.
  Row end_row() const { return next_row_; }

  /// Rows currently resident (including not-yet-dropped expired ones).
  uint64_t resident_rows() const { return next_row_ - first_live_row(); }

  /// Keyword payload bytes held across resident slice arenas.
  uint64_t arena_bytes() const { return arena_bytes_; }

  /// Resident slice count (including the open one).
  uint32_t slices_resident() const {
    return static_cast<uint32_t>(slices_.size());
  }

  /// Approximate bytes held by resident columns + arenas (capacity, not
  /// payload, since recycled slices keep their buffers).
  uint64_t MemoryBytes() const;

  Timestamp slice_duration_ms() const { return slice_duration_ms_; }

  /// Drops all slices and rows; row ids keep counting monotonically.
  void Clear();

  /// Persists every resident slice (columns + arenas) and the row
  /// counter. The free list is transient capacity and is not persisted.
  void Save(util::BinaryWriter* writer) const;

  /// Restores a store persisted by Save, replacing the current contents;
  /// false on malformed input (the store is left cleared). The slice
  /// duration must match the one this store was constructed with.
  bool Load(util::BinaryReader* reader);

 private:
  struct Slice;

 public:
  /// Raw pointers into one slice's columns, for hot scan loops that index
  /// rows of [base, end) directly instead of resolving each row. Valid
  /// until the next store mutation.
  struct ColumnSlab {
    Row base = 0;
    Row end = 0;  // base + slice rows; 0 for the empty default slab.
    const Timestamp* timestamps = nullptr;
    const geo::Point* locs = nullptr;
    const KeywordSpan* spans = nullptr;
    const KeywordArena* arena = nullptr;

    bool contains(Row row) const { return row >= base && row < end; }
  };

  /// Snapshot accessor resolving rows to columns. Creation is cheap;
  /// create one per scan. Lookups cache the containing slice, so the
  /// timestamp-ordered scans of the exact backends resolve almost every
  /// row without the slice binary search.
  class Reader {
   public:
    explicit Reader(const WindowStore& store) : store_(store) {}

    Timestamp timestamp(Row row) const {
      const Slice& s = SliceFor(row);
      return s.timestamps[row - s.base];
    }
    const geo::Point& loc(Row row) const {
      const Slice& s = SliceFor(row);
      return s.locs[row - s.base];
    }
    ObjectId oid(Row row) const {
      const Slice& s = SliceFor(row);
      return s.oids[row - s.base];
    }
    /// The row's keyword set: pointer into the slice arena + length.
    std::pair<const KeywordId*, uint32_t> keywords(Row row) const {
      const Slice& s = SliceFor(row);
      const KeywordSpan span = s.spans[row - s.base];
      return {s.arena.Data(span), span.len};
    }
    /// Direct column pointers for the slice containing `row`. Hot scan
    /// loops hold the slab while successive rows stay inside it, paying
    /// the slice resolve once per run instead of once per column access.
    ColumnSlab slab(Row row) const {
      const Slice& s = SliceFor(row);
      return ColumnSlab{s.base,
                        static_cast<Row>(s.base + s.rows()),
                        s.timestamps.data(),
                        s.locs.data(),
                        s.spans.data(),
                        &s.arena};
    }

   private:
    friend class WindowStore;
    const Slice& SliceFor(Row row) const;

    const WindowStore& store_;
    mutable size_t cached_slice_ = 0;
  };

 private:
  /// One window slice: SoA columns over [base, base + timestamps.size()).
  struct Slice {
    Row base = 0;
    /// Event time at which the slice seals (exclusive upper bound for
    /// appends; late/clamped events may still land here).
    Timestamp seal_ts = 0;
    Timestamp max_ts = std::numeric_limits<Timestamp>::min();
    std::vector<Timestamp> timestamps;
    std::vector<geo::Point> locs;
    std::vector<ObjectId> oids;
    std::vector<KeywordSpan> spans;
    KeywordArena arena;

    size_t rows() const { return timestamps.size(); }
    void Reset(Row new_base, Timestamp new_seal_ts);
    uint64_t CapacityBytes() const;
  };

  void OpenSlice(Timestamp first_ts);

  Timestamp slice_duration_ms_;
  std::deque<Slice> slices_;
  /// Retired slices kept for recycling so steady state allocates nothing.
  std::vector<Slice> free_slices_;
  Row next_row_ = 0;
  uint64_t arena_bytes_ = 0;
};

}  // namespace latest::stream

#endif  // LATEST_STREAM_WINDOW_STORE_H_
