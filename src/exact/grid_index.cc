#include "exact/grid_index.h"

namespace latest::exact {

GridIndex::GridIndex(const geo::Rect& bounds, uint32_t cols, uint32_t rows)
    : grid_(bounds, cols, rows), cells_(grid_.num_cells()) {}

void GridIndex::Insert(const stream::GeoTextObject& obj) {
  cells_[grid_.CellOf(obj.loc)].push_back(obj);
  ++size_;
}

void GridIndex::EvictCell(uint32_t cell, stream::Timestamp cutoff) {
  auto& bucket = cells_[cell];
  while (!bucket.empty() && bucket.front().timestamp < cutoff) {
    bucket.pop_front();
    --size_;
  }
}

void GridIndex::EvictBefore(stream::Timestamp cutoff) {
  for (uint32_t c = 0; c < cells_.size(); ++c) EvictCell(c, cutoff);
}

uint64_t GridIndex::CountMatches(const stream::Query& q,
                                 stream::Timestamp cutoff) {
  uint32_t col_lo = 0;
  uint32_t row_lo = 0;
  uint32_t col_hi = grid_.cols() - 1;
  uint32_t row_hi = grid_.rows() - 1;
  if (q.HasRange()) {
    if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
      return 0;
    }
  }
  uint64_t count = 0;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      const uint32_t cell = row * grid_.cols() + col;
      EvictCell(cell, cutoff);
      for (const auto& obj : cells_[cell]) {
        if (q.Matches(obj)) ++count;
      }
    }
  }
  return count;
}

void GridIndex::Clear() {
  for (auto& cell : cells_) cell.clear();
  size_ = 0;
}

}  // namespace latest::exact
