#include "exact/grid_index.h"

#include <algorithm>
#include <limits>

#include "simd/kernels.h"

namespace latest::exact {

namespace {

/// Minimum candidate cells before a query is worth sharding: below this
/// the dispatch overhead dominates the per-cell scan.
constexpr uint64_t kMinCellsForSharding = 64;

/// Evicted prefixes are erased (compacted away) once the dead prefix is
/// this long and at least half the buffer, keeping per-cell memory
/// proportional to live rows without per-eviction copying.
constexpr uint32_t kMinHeadForCompaction = 32;

}  // namespace

GridIndex::GridIndex(const stream::WindowStore* store, const geo::Rect& bounds,
                     uint32_t cols, uint32_t rows)
    : store_(store), grid_(bounds, cols, rows), cells_(grid_.num_cells()) {}

void GridIndex::Insert(Row row) {
  const stream::WindowStore::Reader reader(*store_);
  Insert(row, reader.loc(row));
}

void GridIndex::Insert(Row row, const geo::Point& loc) {
  cells_[grid_.CellOf(loc)].rows.push_back(row);
  ++size_;
}

uint64_t GridIndex::EvictCell(Cell* cell,
                              const stream::WindowStore::Reader& reader,
                              stream::Timestamp cutoff) {
  const size_t end = cell->rows.size();
  if (cell->head >= end) return 0;
  // Steady-state fast path: the cached head timestamp proves the whole
  // cell live without a store read (rows arrive in timestamp order).
  if (cell->head_ts != kUnknownTs && cell->head_ts >= cutoff) return 0;
  const Row first_live = store_->first_live_row();
  uint64_t evicted = 0;
  uint32_t head = cell->head;
  cell->head_ts = kUnknownTs;
  while (head < end) {
    const Row row = cell->rows[head];
    // Rows below the store's first live row belong to dropped slices:
    // discard them without dereferencing (they expired before the drop).
    if (row >= first_live) {
      const stream::Timestamp ts = reader.timestamp(row);
      if (ts >= cutoff) {
        cell->head_ts = ts;
        break;
      }
    }
    ++head;
    ++evicted;
  }
  cell->head = head;
  if (head >= kMinHeadForCompaction && head >= cell->rows.size() / 2) {
    cell->rows.erase(cell->rows.begin(), cell->rows.begin() + head);
    cell->head = 0;
  }
  return evicted;
}

void GridIndex::EvictBefore(stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  for (Cell& cell : cells_) {
    size_ -= EvictCell(&cell, reader, cutoff);
  }
}

std::pair<uint64_t, uint64_t> GridIndex::ScanRows(
    const stream::Query& q, stream::Timestamp cutoff, uint32_t row_lo,
    uint32_t row_hi, uint32_t col_lo, uint32_t col_hi, uint32_t range_row_lo,
    uint32_t range_row_hi) {
  // One Reader per scan: shards of a sharded CountMatches each get their
  // own slice cache, so concurrent scans never share mutable state.
  const stream::WindowStore::Reader reader(*store_);
  const bool check_range = q.HasRange();
  const bool check_kw = q.HasKeywords();
  uint64_t count = 0;
  uint64_t evicted = 0;
  RowScanner scan(reader);
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    // A cell strictly inside the candidate cell range is fully covered by
    // the query range: any non-clamped point the same floor arithmetic
    // mapped strictly between the range's edge cells lies strictly between
    // the range's edges, and clamped outliers only land in grid-border
    // cells, which are never strictly interior. Rows surviving EvictCell
    // all have ts >= cutoff (arrival order), so such cells count in O(1)
    // with no location reads.
    const bool row_interior = check_range && !check_kw &&
                              row > range_row_lo && row < range_row_hi;
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      Cell& cell = cells_[row * grid_.cols() + col];
      evicted += EvictCell(&cell, reader, cutoff);
      if (row_interior && col > col_lo && col < col_hi) {
        count += cell.live();
        continue;
      }
      const size_t n = cell.rows.size();
      for (size_t i = cell.head; i < n; ++i) {
        if (scan.MatchesQuery(cell.rows[i], q)) ++count;
      }
    }
  }
  return {count, evicted};
}

uint64_t GridIndex::CountMatches(const stream::Query& q,
                                 stream::Timestamp cutoff) {
  uint32_t col_lo = 0;
  uint32_t row_lo = 0;
  uint32_t col_hi = grid_.cols() - 1;
  uint32_t row_hi = grid_.rows() - 1;
  if (q.HasRange()) {
    if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
      return 0;
    }
  }
  const uint64_t num_rows = row_hi - row_lo + 1;
  const uint64_t num_cells = num_rows * (col_hi - col_lo + 1);
  if (pool_ == nullptr || pool_->num_threads() == 0 ||
      num_cells < kMinCellsForSharding || num_rows < 2) {
    const auto [count, evicted] =
        ScanRows(q, cutoff, row_lo, row_hi, col_lo, col_hi, row_lo, row_hi);
    size_ -= evicted;
    return count;
  }
  // Shard contiguous row bands: each cell (hence each row buffer) is
  // touched by exactly one shard, per-shard tallies land in pre-sized
  // slots, and the shared size_ is only adjusted after the join. Summing
  // unsigned partial counts is exact, so the result matches the serial
  // scan bit for bit.
  const uint32_t num_shards = static_cast<uint32_t>(std::min<uint64_t>(
      num_rows, static_cast<uint64_t>(pool_->num_threads())));
  std::vector<std::pair<uint64_t, uint64_t>> shard_results(num_shards);
  pool_->ParallelFor(num_shards, [&](size_t shard) {
    const uint64_t begin = row_lo + num_rows * shard / num_shards;
    const uint64_t end = row_lo + num_rows * (shard + 1) / num_shards - 1;
    shard_results[shard] =
        ScanRows(q, cutoff, static_cast<uint32_t>(begin),
                 static_cast<uint32_t>(end), col_lo, col_hi, row_lo, row_hi);
  });
  uint64_t count = 0;
  for (const auto& [shard_count, shard_evicted] : shard_results) {
    count += shard_count;
    size_ -= shard_evicted;
  }
  return count;
}

/// One batch query's evaluation plan: its candidate cell box (full grid
/// when the query has no range), its window cutoff, and where its count
/// lands in the output array.
struct GridIndex::BatchPlan {
  const stream::Query* q = nullptr;
  stream::Timestamp cutoff = 0;
  uint32_t col_lo = 0;
  uint32_t row_lo = 0;
  uint32_t col_hi = 0;
  uint32_t row_hi = 0;
  uint32_t out_idx = 0;
  bool has_range = false;
  bool has_kw = false;
};

uint64_t GridIndex::BatchScanRows(const std::vector<BatchPlan>& plans,
                                  stream::Timestamp min_cutoff,
                                  uint32_t row_lo, uint32_t row_hi,
                                  bool want_kws, bool want_ts,
                                  uint64_t* counts,
                                  BatchScanScratch* scratch) {
  // One Reader per scan, as in ScanRows: shards never share slice caches.
  const stream::WindowStore::Reader reader(*store_);
  uint64_t evicted = 0;
  GatheredRows* gathered = &scratch->rows;
  gathered->Clear();
  if (scratch->off_lo.size() < grid_.num_cells()) {
    scratch->off_lo.resize(grid_.num_cells());
    scratch->off_hi.resize(grid_.num_cells());
  }
  uint32_t* const off_lo = scratch->off_lo.data();
  uint32_t* const off_hi = scratch->off_hi.data();

  // --- Gather phase. Plans are first bucketed by grid row (counting
  // sort, preserving the caller's col_lo order within each row), so the
  // per-row work is proportional to the plans actually covering that row.
  // Merging their col ranges on the fly yields the row's covered-column
  // intervals; every covered cell is evicted once and its live columns
  // appended to the SoA once, however many plans share it. Total gather
  // work is the union of the plan boxes, and within one grid row the
  // cells of any plan's box land contiguously in the SoA.
  const uint32_t band_rows = row_hi - row_lo + 1;
  std::vector<uint32_t>& row_start = scratch->row_start;
  row_start.assign(band_rows + 1, 0);
  for (const BatchPlan& plan : plans) {
    if (plan.row_lo > row_hi || plan.row_hi < row_lo) continue;
    const uint32_t p_lo = std::max(plan.row_lo, row_lo);
    const uint32_t p_hi = std::min(plan.row_hi, row_hi);
    for (uint32_t row = p_lo; row <= p_hi; ++row) {
      ++row_start[row - row_lo + 1];
    }
  }
  for (uint32_t r = 0; r < band_rows; ++r) row_start[r + 1] += row_start[r];
  std::vector<uint32_t>& row_items = scratch->row_items;
  row_items.resize(row_start[band_rows]);
  {
    std::vector<uint32_t>& cursor = scratch->cursor;
    cursor.assign(row_start.begin(), row_start.end() - 1);
    for (uint32_t i = 0; i < plans.size(); ++i) {
      const BatchPlan& plan = plans[i];
      if (plan.row_lo > row_hi || plan.row_hi < row_lo) continue;
      const uint32_t p_lo = std::max(plan.row_lo, row_lo);
      const uint32_t p_hi = std::min(plan.row_hi, row_hi);
      for (uint32_t row = p_lo; row <= p_hi; ++row) {
        row_items[cursor[row - row_lo]++] = i;
      }
    }
  }
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    const uint32_t item_lo = row_start[row - row_lo];
    const uint32_t item_hi = row_start[row - row_lo + 1];
    if (item_lo == item_hi) continue;
    const size_t base = static_cast<size_t>(row) * grid_.cols();
    // Sweep this row's plans (col_lo-ordered) as merged col intervals.
    uint32_t cur_lo = plans[row_items[item_lo]].col_lo;
    uint32_t cur_hi = plans[row_items[item_lo]].col_hi;
    for (uint32_t it = item_lo + 1; it <= item_hi; ++it) {
      const bool flush =
          it == item_hi || plans[row_items[it]].col_lo > cur_hi + 1;
      if (!flush) {
        cur_hi = std::max(cur_hi, plans[row_items[it]].col_hi);
        continue;
      }
      for (uint32_t col = cur_lo; col <= cur_hi; ++col) {
        const size_t idx = base + col;
        Cell& cell = cells_[idx];
        // Evicting at the batch-minimum cutoff leaves every row any plan
        // may count; plans with stricter cutoffs skip the stale prefix
        // via a lower bound over the (arrival-ordered) timestamps.
        evicted += EvictCell(&cell, reader, min_cutoff);
        const size_t n = cell.live();
        off_lo[idx] = static_cast<uint32_t>(gathered->size());
        if (n > 0) {
          gathered->Append(reader, cell.rows.data() + cell.head, n, want_kws,
                           want_ts);
        }
        off_hi[idx] = static_cast<uint32_t>(gathered->size());
      }
      if (it < item_hi) {
        cur_lo = plans[row_items[it]].col_lo;
        cur_hi = plans[row_items[it]].col_hi;
      }
    }
  }

  // --- Count phase. Per (plan, grid row), the plan's covered cells form
  // one contiguous SoA range [off_lo[first cell], off_hi[last cell]), so
  // a pure-spatial uniform-cutoff strip is one kernel sweep — split
  // around its fully-interior middle, which counts from the offsets
  // alone. Only stricter-than-minimum cutoffs fall back to per-cell
  // ranges (each cell's run is arrival-ordered; a strip as a whole is
  // not).
  const geo::Point* locs = gathered->locs.data();
  for (const BatchPlan& plan : plans) {
    if (plan.row_hi < row_lo || plan.row_lo > row_hi) continue;
    const uint32_t p_row_lo = std::max(plan.row_lo, row_lo);
    const uint32_t p_row_hi = std::min(plan.row_hi, row_hi);
    uint64_t c = 0;
    for (uint32_t row = p_row_lo; row <= p_row_hi; ++row) {
      const size_t base = static_cast<size_t>(row) * grid_.cols();
      const uint32_t lo = off_lo[base + plan.col_lo];
      const uint32_t hi = off_hi[base + plan.col_hi];
      if (lo >= hi) continue;
      if (plan.cutoff > min_cutoff) {
        const stream::Timestamp* ts = gathered->ts.data();
        for (uint32_t col = plan.col_lo; col <= plan.col_hi; ++col) {
          const uint32_t clo = off_lo[base + col];
          const uint32_t chi = off_hi[base + col];
          if (clo >= chi) continue;
          const uint32_t start =
              clo + static_cast<uint32_t>(simd::LowerBoundTimestamp(
                        ts + clo, chi - clo, plan.cutoff));
          if (plan.has_kw) {
            const size_t q_len = plan.q->keywords.size();
            const stream::KeywordId* q_kw = plan.q->keywords.data();
            for (uint32_t i = start; i < chi; ++i) {
              if (plan.has_range && !plan.q->range->Contains(locs[i])) {
                continue;
              }
              if (simd::AnyKeywordIntersect(gathered->kws[i].first,
                                            gathered->kws[i].second, q_kw,
                                            q_len)) {
                ++c;
              }
            }
          } else if (!plan.has_range ||
                     (row > plan.row_lo && row < plan.row_hi &&
                      col > plan.col_lo && col < plan.col_hi)) {
            c += chi - start;
          } else {
            c += simd::RectContainCount(locs + start, chi - start,
                                        *plan.q->range);
          }
        }
      } else if (plan.has_kw) {
        const size_t q_len = plan.q->keywords.size();
        const stream::KeywordId* q_kw = plan.q->keywords.data();
        for (uint32_t i = lo; i < hi; ++i) {
          if (plan.has_range && !plan.q->range->Contains(locs[i])) continue;
          if (simd::AnyKeywordIntersect(gathered->kws[i].first,
                                        gathered->kws[i].second, q_kw,
                                        q_len)) {
            ++c;
          }
        }
      } else if (!plan.has_range) {
        c += hi - lo;
      } else if (row > plan.row_lo && row < plan.row_hi &&
                 plan.col_hi > plan.col_lo + 1) {
        // Interior row: only the strip's first and last cells need point
        // tests; everything between is strictly inside the query rect.
        const uint32_t mid_lo = off_hi[base + plan.col_lo];
        const uint32_t mid_hi = off_lo[base + plan.col_hi];
        c += simd::RectContainCount(locs + lo, mid_lo - lo, *plan.q->range);
        c += mid_hi - mid_lo;
        c += simd::RectContainCount(locs + mid_hi, hi - mid_hi,
                                    *plan.q->range);
      } else {
        c += simd::RectContainCount(locs + lo, hi - lo, *plan.q->range);
      }
    }
    counts[plan.out_idx] += c;
  }
  return evicted;
}

void GridIndex::CountMatchesBatch(const stream::Query* const* queries,
                                  const stream::Timestamp* cutoffs, size_t k,
                                  uint64_t* counts) {
  if (k == 0) return;
  std::vector<BatchPlan> plans;
  plans.reserve(k);
  stream::Timestamp min_cutoff = std::numeric_limits<stream::Timestamp>::max();
  uint32_t u_col_lo = 0;
  uint32_t u_row_lo = 0;
  uint32_t u_col_hi = 0;
  uint32_t u_row_hi = 0;
  for (size_t i = 0; i < k; ++i) {
    counts[i] = 0;
    BatchPlan plan;
    plan.q = queries[i];
    plan.cutoff = cutoffs[i];
    plan.out_idx = static_cast<uint32_t>(i);
    plan.has_range = queries[i]->HasRange();
    plan.has_kw = queries[i]->HasKeywords();
    plan.col_hi = grid_.cols() - 1;
    plan.row_hi = grid_.rows() - 1;
    if (plan.has_range &&
        !grid_.CellRange(*queries[i]->range, &plan.col_lo, &plan.row_lo,
                         &plan.col_hi, &plan.row_hi)) {
      continue;  // Range misses the grid: zero matches, skip the scan.
    }
    if (plans.empty()) {
      u_col_lo = plan.col_lo;
      u_row_lo = plan.row_lo;
      u_col_hi = plan.col_hi;
      u_row_hi = plan.row_hi;
    } else {
      u_col_lo = std::min(u_col_lo, plan.col_lo);
      u_row_lo = std::min(u_row_lo, plan.row_lo);
      u_col_hi = std::max(u_col_hi, plan.col_hi);
      u_row_hi = std::max(u_row_hi, plan.row_hi);
    }
    min_cutoff = std::min(min_cutoff, plan.cutoff);
    plans.push_back(plan);
  }
  if (plans.empty()) return;
  bool want_kws = false;
  bool want_ts = false;
  for (const BatchPlan& plan : plans) {
    want_kws |= plan.has_kw;
    // Timestamps are only consulted to lower-bound past a stricter-than-
    // batch-minimum cutoff; a uniform-cutoff batch never reads them.
    want_ts |= plan.cutoff > min_cutoff;
  }
  // The interval sweep in BatchScanRows admits plans in column order.
  std::sort(plans.begin(), plans.end(),
            [](const BatchPlan& a, const BatchPlan& b) {
              return a.col_lo < b.col_lo;
            });
  const uint64_t num_rows = u_row_hi - u_row_lo + 1;
  const uint64_t num_cells = num_rows * (u_col_hi - u_col_lo + 1);
  if (pool_ == nullptr || pool_->num_threads() == 0 ||
      num_cells < kMinCellsForSharding || num_rows < 2) {
    size_ -= BatchScanRows(plans, min_cutoff, u_row_lo, u_row_hi, want_kws,
                           want_ts, counts, &batch_scratch_);
    return;
  }
  // Row-band sharding, as in CountMatches: each cell is evicted and
  // gathered by exactly one shard; per-shard count slots are summed after
  // the join in shard order, which is exact for integer tallies.
  const uint32_t num_shards = static_cast<uint32_t>(std::min<uint64_t>(
      num_rows, static_cast<uint64_t>(pool_->num_threads())));
  std::vector<std::vector<uint64_t>> shard_counts(
      num_shards, std::vector<uint64_t>(k, 0));
  std::vector<uint64_t> shard_evicted(num_shards, 0);
  pool_->ParallelFor(num_shards, [&](size_t shard) {
    const uint64_t begin = u_row_lo + num_rows * shard / num_shards;
    const uint64_t end = u_row_lo + num_rows * (shard + 1) / num_shards - 1;
    BatchScanScratch scratch;
    shard_evicted[shard] = BatchScanRows(
        plans, min_cutoff, static_cast<uint32_t>(begin),
        static_cast<uint32_t>(end), want_kws, want_ts,
        shard_counts[shard].data(), &scratch);
  });
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    for (size_t i = 0; i < k; ++i) counts[i] += shard_counts[shard][i];
    size_ -= shard_evicted[shard];
  }
}

void GridIndex::Clear() {
  for (Cell& cell : cells_) {
    cell.rows.clear();
    cell.head = 0;
    cell.head_ts = kUnknownTs;
  }
  size_ = 0;
}

}  // namespace latest::exact
