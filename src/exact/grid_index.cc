#include "exact/grid_index.h"

#include <algorithm>

namespace latest::exact {

namespace {

/// Minimum candidate cells before a query is worth sharding: below this
/// the dispatch overhead dominates the per-cell scan.
constexpr uint64_t kMinCellsForSharding = 64;

/// Evicted prefixes are erased (compacted away) once the dead prefix is
/// this long and at least half the buffer, keeping per-cell memory
/// proportional to live rows without per-eviction copying.
constexpr uint32_t kMinHeadForCompaction = 32;

}  // namespace

GridIndex::GridIndex(const stream::WindowStore* store, const geo::Rect& bounds,
                     uint32_t cols, uint32_t rows)
    : store_(store), grid_(bounds, cols, rows), cells_(grid_.num_cells()) {}

void GridIndex::Insert(Row row) {
  const stream::WindowStore::Reader reader(*store_);
  Insert(row, reader.loc(row));
}

void GridIndex::Insert(Row row, const geo::Point& loc) {
  cells_[grid_.CellOf(loc)].rows.push_back(row);
  ++size_;
}

uint64_t GridIndex::EvictCell(Cell* cell,
                              const stream::WindowStore::Reader& reader,
                              stream::Timestamp cutoff) {
  const size_t end = cell->rows.size();
  if (cell->head >= end) return 0;
  // Steady-state fast path: the cached head timestamp proves the whole
  // cell live without a store read (rows arrive in timestamp order).
  if (cell->head_ts != kUnknownTs && cell->head_ts >= cutoff) return 0;
  const Row first_live = store_->first_live_row();
  uint64_t evicted = 0;
  uint32_t head = cell->head;
  cell->head_ts = kUnknownTs;
  while (head < end) {
    const Row row = cell->rows[head];
    // Rows below the store's first live row belong to dropped slices:
    // discard them without dereferencing (they expired before the drop).
    if (row >= first_live) {
      const stream::Timestamp ts = reader.timestamp(row);
      if (ts >= cutoff) {
        cell->head_ts = ts;
        break;
      }
    }
    ++head;
    ++evicted;
  }
  cell->head = head;
  if (head >= kMinHeadForCompaction && head >= cell->rows.size() / 2) {
    cell->rows.erase(cell->rows.begin(), cell->rows.begin() + head);
    cell->head = 0;
  }
  return evicted;
}

void GridIndex::EvictBefore(stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  for (Cell& cell : cells_) {
    size_ -= EvictCell(&cell, reader, cutoff);
  }
}

std::pair<uint64_t, uint64_t> GridIndex::ScanRows(
    const stream::Query& q, stream::Timestamp cutoff, uint32_t row_lo,
    uint32_t row_hi, uint32_t col_lo, uint32_t col_hi, uint32_t range_row_lo,
    uint32_t range_row_hi) {
  // One Reader per scan: shards of a sharded CountMatches each get their
  // own slice cache, so concurrent scans never share mutable state.
  const stream::WindowStore::Reader reader(*store_);
  const bool check_range = q.HasRange();
  const bool check_kw = q.HasKeywords();
  uint64_t count = 0;
  uint64_t evicted = 0;
  stream::WindowStore::ColumnSlab slab;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    // A cell strictly inside the candidate cell range is fully covered by
    // the query range: any non-clamped point the same floor arithmetic
    // mapped strictly between the range's edge cells lies strictly between
    // the range's edges, and clamped outliers only land in grid-border
    // cells, which are never strictly interior. Rows surviving EvictCell
    // all have ts >= cutoff (arrival order), so such cells count in O(1)
    // with no location reads.
    const bool row_interior = check_range && !check_kw &&
                              row > range_row_lo && row < range_row_hi;
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      Cell& cell = cells_[row * grid_.cols() + col];
      evicted += EvictCell(&cell, reader, cutoff);
      if (row_interior && col > col_lo && col < col_hi) {
        count += cell.live();
        continue;
      }
      const size_t n = cell.rows.size();
      for (size_t i = cell.head; i < n; ++i) {
        const Row r = cell.rows[i];
        if (!slab.contains(r)) slab = reader.slab(r);
        const Row k = r - slab.base;
        if (check_range && !q.range->Contains(slab.locs[k])) continue;
        if (check_kw) {
          const stream::KeywordSpan span = slab.spans[k];
          if (!stream::KeywordSetsIntersect(slab.arena->Data(span), span.len,
                                            q.keywords.data(),
                                            q.keywords.size())) {
            continue;
          }
        }
        ++count;
      }
    }
  }
  return {count, evicted};
}

uint64_t GridIndex::CountMatches(const stream::Query& q,
                                 stream::Timestamp cutoff) {
  uint32_t col_lo = 0;
  uint32_t row_lo = 0;
  uint32_t col_hi = grid_.cols() - 1;
  uint32_t row_hi = grid_.rows() - 1;
  if (q.HasRange()) {
    if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
      return 0;
    }
  }
  const uint64_t num_rows = row_hi - row_lo + 1;
  const uint64_t num_cells = num_rows * (col_hi - col_lo + 1);
  if (pool_ == nullptr || pool_->num_threads() == 0 ||
      num_cells < kMinCellsForSharding || num_rows < 2) {
    const auto [count, evicted] =
        ScanRows(q, cutoff, row_lo, row_hi, col_lo, col_hi, row_lo, row_hi);
    size_ -= evicted;
    return count;
  }
  // Shard contiguous row bands: each cell (hence each row buffer) is
  // touched by exactly one shard, per-shard tallies land in pre-sized
  // slots, and the shared size_ is only adjusted after the join. Summing
  // unsigned partial counts is exact, so the result matches the serial
  // scan bit for bit.
  const uint32_t num_shards = static_cast<uint32_t>(std::min<uint64_t>(
      num_rows, static_cast<uint64_t>(pool_->num_threads())));
  std::vector<std::pair<uint64_t, uint64_t>> shard_results(num_shards);
  pool_->ParallelFor(num_shards, [&](size_t shard) {
    const uint64_t begin = row_lo + num_rows * shard / num_shards;
    const uint64_t end = row_lo + num_rows * (shard + 1) / num_shards - 1;
    shard_results[shard] =
        ScanRows(q, cutoff, static_cast<uint32_t>(begin),
                 static_cast<uint32_t>(end), col_lo, col_hi, row_lo, row_hi);
  });
  uint64_t count = 0;
  for (const auto& [shard_count, shard_evicted] : shard_results) {
    count += shard_count;
    size_ -= shard_evicted;
  }
  return count;
}

void GridIndex::Clear() {
  for (Cell& cell : cells_) {
    cell.rows.clear();
    cell.head = 0;
    cell.head_ts = kUnknownTs;
  }
  size_ = 0;
}

}  // namespace latest::exact
