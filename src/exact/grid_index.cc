#include "exact/grid_index.h"

#include <algorithm>

namespace latest::exact {

namespace {

/// Minimum candidate cells before a query is worth sharding: below this
/// the dispatch overhead dominates the per-cell scan.
constexpr uint64_t kMinCellsForSharding = 64;

}  // namespace

GridIndex::GridIndex(const geo::Rect& bounds, uint32_t cols, uint32_t rows)
    : grid_(bounds, cols, rows), cells_(grid_.num_cells()) {}

void GridIndex::Insert(const stream::GeoTextObject& obj) {
  cells_[grid_.CellOf(obj.loc)].push_back(obj);
  ++size_;
}

uint64_t GridIndex::EvictCell(uint32_t cell, stream::Timestamp cutoff) {
  auto& bucket = cells_[cell];
  uint64_t evicted = 0;
  while (!bucket.empty() && bucket.front().timestamp < cutoff) {
    bucket.pop_front();
    ++evicted;
  }
  return evicted;
}

void GridIndex::EvictBefore(stream::Timestamp cutoff) {
  for (uint32_t c = 0; c < cells_.size(); ++c) {
    size_ -= EvictCell(c, cutoff);
  }
}

std::pair<uint64_t, uint64_t> GridIndex::ScanRows(const stream::Query& q,
                                                  stream::Timestamp cutoff,
                                                  uint32_t row_lo,
                                                  uint32_t row_hi,
                                                  uint32_t col_lo,
                                                  uint32_t col_hi) {
  uint64_t count = 0;
  uint64_t evicted = 0;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      const uint32_t cell = row * grid_.cols() + col;
      evicted += EvictCell(cell, cutoff);
      for (const auto& obj : cells_[cell]) {
        if (q.Matches(obj)) ++count;
      }
    }
  }
  return {count, evicted};
}

uint64_t GridIndex::CountMatches(const stream::Query& q,
                                 stream::Timestamp cutoff) {
  uint32_t col_lo = 0;
  uint32_t row_lo = 0;
  uint32_t col_hi = grid_.cols() - 1;
  uint32_t row_hi = grid_.rows() - 1;
  if (q.HasRange()) {
    if (!grid_.CellRange(*q.range, &col_lo, &row_lo, &col_hi, &row_hi)) {
      return 0;
    }
  }
  const uint64_t num_rows = row_hi - row_lo + 1;
  const uint64_t num_cells = num_rows * (col_hi - col_lo + 1);
  if (pool_ == nullptr || pool_->num_threads() == 0 ||
      num_cells < kMinCellsForSharding || num_rows < 2) {
    const auto [count, evicted] =
        ScanRows(q, cutoff, row_lo, row_hi, col_lo, col_hi);
    size_ -= evicted;
    return count;
  }
  // Shard contiguous row bands: each cell (hence each deque) is touched
  // by exactly one shard, per-shard tallies land in pre-sized slots, and
  // the shared size_ is only adjusted after the join. Summing unsigned
  // partial counts is exact, so the result matches the serial scan bit
  // for bit.
  const uint32_t num_shards = static_cast<uint32_t>(std::min<uint64_t>(
      num_rows, static_cast<uint64_t>(pool_->num_threads())));
  std::vector<std::pair<uint64_t, uint64_t>> shard_results(num_shards);
  pool_->ParallelFor(num_shards, [&](size_t shard) {
    const uint64_t begin = row_lo + num_rows * shard / num_shards;
    const uint64_t end = row_lo + num_rows * (shard + 1) / num_shards - 1;
    shard_results[shard] =
        ScanRows(q, cutoff, static_cast<uint32_t>(begin),
                 static_cast<uint32_t>(end), col_lo, col_hi);
  });
  uint64_t count = 0;
  for (const auto& [shard_count, shard_evicted] : shard_results) {
    count += shard_count;
    size_ -= shard_evicted;
  }
  return count;
}

void GridIndex::Clear() {
  for (auto& cell : cells_) cell.clear();
  size_ = 0;
}

}  // namespace latest::exact
