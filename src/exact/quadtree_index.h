// Full point-region quadtree index over the window: references columnar
// store rows.
//
// The "QuadTree" full index of Table I. Leaves hold timestamp-ordered row
// references into a shared WindowStore; a leaf splits into four children
// when it exceeds `leaf_capacity` live rows (up to `max_depth`). Window
// expiry advances a per-leaf head offset lazily and empty subtrees
// collapse back into leaves.

#ifndef LATEST_EXACT_QUADTREE_INDEX_H_
#define LATEST_EXACT_QUADTREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exact/row_scan.h"
#include "geo/rect.h"
#include "stream/query.h"
#include "stream/window_store.h"

namespace latest::exact {

/// Windowed exact quadtree index over a shared columnar store.
class QuadTreeIndex {
 public:
  using Row = stream::WindowStore::Row;

  /// store: the columnar window store rows refer into (borrowed, must
  /// outlive the index). bounds: spatial domain. leaf_capacity: split
  /// threshold. max_depth: maximum subdivision depth (leaves at max depth
  /// grow unbounded).
  QuadTreeIndex(const stream::WindowStore* store, const geo::Rect& bounds,
                uint32_t leaf_capacity, uint32_t max_depth);

  /// Indexes a store row (append order = non-decreasing timestamps).
  void Insert(Row row);

  /// Same, with the row's location supplied by the caller (the evaluator
  /// already holds it at append time), skipping the store lookup.
  void Insert(Row row, const geo::Point& loc);

  /// Exact number of window objects matching the query; objects older than
  /// `cutoff` are ignored and lazily evicted.
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Batched exact evaluation: one recursive pass prunes the whole batch
  /// against node cells, and each leaf is evicted and gathered once for
  /// all covering queries, swept with the SIMD kernels. counts[i]
  /// receives the match count of *queries[i] under cutoffs[i],
  /// bit-identical to CountMatches(*queries[i], cutoffs[i]) at every
  /// kernel tier.
  void CountMatchesBatch(const stream::Query* const* queries,
                         const stream::Timestamp* cutoffs, size_t k,
                         uint64_t* counts);

  /// Removes all rows with timestamp < cutoff and collapses empty
  /// subtrees.
  void EvictBefore(stream::Timestamp cutoff);

  /// Number of rows currently indexed (including not-yet-evicted ones).
  uint64_t size() const { return size_; }

  /// Number of tree nodes (internal + leaves), for memory accounting.
  uint64_t num_nodes() const { return num_nodes_; }

  void Clear();

 private:
  struct Node {
    geo::Rect cell;
    uint32_t depth = 0;
    // Leaf payload: arrival-ordered rows, [head, rows.size()) live.
    // Empty and unused for internal nodes.
    std::vector<Row> rows;
    uint32_t head = 0;
    // Children quadrants (all set for internal nodes): SW, SE, NW, NE.
    std::unique_ptr<Node> children[4];
    bool is_leaf = true;

    size_t live() const { return rows.size() - head; }
  };

  void InsertInto(Node* node, Row row, const geo::Point& loc);
  void Split(Node* node, const stream::WindowStore::Reader& reader);
  int QuadrantOf(const Node& node, const geo::Point& p) const;
  uint64_t CountNode(Node* node, const stream::Query& q,
                     stream::Timestamp cutoff,
                     const stream::WindowStore::Reader& reader);
  /// Batch recursion: `active` indexes [a_begin, a_end) of a shared stack
  /// hold the batch queries whose ranges reach this node; children filter
  /// by appending to the stack and truncating after the visit.
  void CountNodeBatch(Node* node, std::vector<uint32_t>* active,
                      size_t a_begin, size_t a_end,
                      const stream::Query* const* queries,
                      const stream::Timestamp* cutoffs,
                      stream::Timestamp min_cutoff, bool want_kws,
                      bool want_ts,
                      const stream::WindowStore::Reader& reader,
                      GatheredRows* scratch, uint64_t* counts);
  /// Evicts expired rows; returns the node's live row count and collapses
  /// nodes whose subtree became empty.
  uint64_t EvictNode(Node* node, stream::Timestamp cutoff,
                     const stream::WindowStore::Reader& reader);
  /// Advances a leaf's head past expired rows, decrementing size_.
  void EvictLeaf(Node* node, stream::Timestamp cutoff,
                 const stream::WindowStore::Reader& reader);

  const stream::WindowStore* store_;
  std::unique_ptr<Node> root_;
  uint32_t leaf_capacity_;
  uint32_t max_depth_;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 1;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_QUADTREE_INDEX_H_
