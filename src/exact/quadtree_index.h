// Full point-region quadtree index over the window: stores actual objects.
//
// The "QuadTree" full index of Table I. Leaves hold timestamp-ordered
// object buckets; a leaf splits into four children when it exceeds
// `leaf_capacity` live objects (up to `max_depth`). Window expiry pops
// expired prefixes lazily and empty subtrees collapse back into leaves.

#ifndef LATEST_EXACT_QUADTREE_INDEX_H_
#define LATEST_EXACT_QUADTREE_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "geo/rect.h"
#include "stream/object.h"
#include "stream/query.h"

namespace latest::exact {

/// Windowed exact quadtree index.
class QuadTreeIndex {
 public:
  /// bounds: spatial domain. leaf_capacity: split threshold. max_depth:
  /// maximum subdivision depth (leaves at max depth grow unbounded).
  QuadTreeIndex(const geo::Rect& bounds, uint32_t leaf_capacity,
                uint32_t max_depth);

  /// Inserts an object (timestamps must be non-decreasing overall).
  void Insert(const stream::GeoTextObject& obj);

  /// Exact number of window objects matching the query; objects older than
  /// `cutoff` are ignored and lazily evicted.
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Removes all objects with timestamp < cutoff and collapses empty
  /// subtrees.
  void EvictBefore(stream::Timestamp cutoff);

  /// Number of objects currently stored (including not-yet-evicted ones).
  uint64_t size() const { return size_; }

  /// Number of tree nodes (internal + leaves), for memory accounting.
  uint64_t num_nodes() const { return num_nodes_; }

  void Clear();

 private:
  struct Node {
    geo::Rect cell;
    uint32_t depth = 0;
    // Leaf payload; empty and unused for internal nodes.
    std::deque<stream::GeoTextObject> objects;
    // Children quadrants (all set for internal nodes): SW, SE, NW, NE.
    std::unique_ptr<Node> children[4];
    bool is_leaf = true;
  };

  void InsertInto(Node* node, const stream::GeoTextObject& obj);
  void Split(Node* node);
  int QuadrantOf(const Node& node, const geo::Point& p) const;
  uint64_t CountNode(Node* node, const stream::Query& q,
                     stream::Timestamp cutoff);
  /// Evicts expired objects; returns the node's live object count and
  /// collapses nodes whose subtree became empty.
  uint64_t EvictNode(Node* node, stream::Timestamp cutoff);

  std::unique_ptr<Node> root_;
  uint32_t leaf_capacity_;
  uint32_t max_depth_;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 1;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_QUADTREE_INDEX_H_
