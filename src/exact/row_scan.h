// Shared row-resolution helpers for the exact backends' scan loops.
//
// Grid cells, quadtree leaves, and inverted posting lists all store dense
// WindowStore rows in arrival order and scan them the same way: resolve
// the containing ColumnSlab once per run of same-slice rows, then test
// the RC-DVQ predicate against the slab columns. That loop used to be
// copy-pasted into all three backends; RowScanner is the one
// implementation, and the batched evaluation paths reuse it to gather
// row columns into contiguous scratch the SIMD kernels can sweep.

#ifndef LATEST_EXACT_ROW_SCAN_H_
#define LATEST_EXACT_ROW_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "simd/kernels.h"
#include "stream/query.h"
#include "stream/window_store.h"

namespace latest::exact {

/// Cached-slab accessor over arrival-ordered row sequences. Not
/// thread-safe; create one per scan (like WindowStore::Reader, whose
/// slice cache it layers a slab cache on top of).
class RowScanner {
 public:
  using Row = stream::WindowStore::Row;

  explicit RowScanner(const stream::WindowStore::Reader& reader)
      : reader_(reader) {}

  stream::Timestamp timestamp(Row row) {
    Resolve(row);
    return slab_.timestamps[row - slab_.base];
  }

  const geo::Point& loc(Row row) {
    Resolve(row);
    return slab_.locs[row - slab_.base];
  }

  std::pair<const stream::KeywordId*, uint32_t> keywords(Row row) {
    Resolve(row);
    const stream::KeywordSpan span = slab_.spans[row - slab_.base];
    return {slab_.arena->Data(span), span.len};
  }

  /// Full RC-DVQ predicate against one live row (window membership is the
  /// caller's concern). The keyword test dispatches through the kernel
  /// layer, which is exact at every tier.
  bool MatchesQuery(Row row, const stream::Query& q) {
    Resolve(row);
    const Row k = row - slab_.base;
    if (q.HasRange() && !q.range->Contains(slab_.locs[k])) return false;
    if (q.HasKeywords()) {
      const stream::KeywordSpan span = slab_.spans[k];
      if (!simd::AnyKeywordIntersect(slab_.arena->Data(span), span.len,
                                     q.keywords.data(), q.keywords.size())) {
        return false;
      }
    }
    return true;
  }

 private:
  void Resolve(Row row) {
    if (!slab_.contains(row)) slab_ = reader_.slab(row);
  }

  const stream::WindowStore::Reader& reader_;
  stream::WindowStore::ColumnSlab slab_;
};

/// Contiguous per-batch scratch columns gathered from a row sequence, the
/// unit the SIMD kernels sweep. Reused across cells/leaves of one batch
/// pass so steady state allocates nothing.
struct GatheredRows {
  using Row = stream::WindowStore::Row;

  std::vector<stream::Timestamp> ts;
  std::vector<geo::Point> locs;
  std::vector<std::pair<const stream::KeywordId*, uint32_t>> kws;

  /// Gathers locations (and keyword refs when `want_kws`, timestamps when
  /// `want_ts`) of `n` arrival-ordered rows. Batches whose queries all
  /// share the window cutoff skip the timestamp column entirely: eviction
  /// at that cutoff already proves every gathered row live, and skipping
  /// the load+store halves the gather cost of pure-spatial sweeps.
  void Gather(const stream::WindowStore::Reader& reader, const Row* rows,
              size_t n, bool want_kws, bool want_ts = true) {
    ts.resize(want_ts ? n : 0);
    locs.resize(n);
    kws.resize(want_kws ? n : 0);
    stream::WindowStore::ColumnSlab slab;
    for (size_t i = 0; i < n; ++i) {
      const Row row = rows[i];
      if (!slab.contains(row)) slab = reader.slab(row);
      const Row k = row - slab.base;
      if (want_ts) ts[i] = slab.timestamps[k];
      locs[i] = slab.locs[k];
      if (want_kws) {
        const stream::KeywordSpan span = slab.spans[k];
        kws[i] = {slab.arena->Data(span), span.len};
      }
    }
  }

  void Clear() {
    ts.clear();
    locs.clear();
    kws.clear();
  }

  size_t size() const { return locs.size(); }

  /// Appends `n` rows' columns instead of replacing the scratch, so one
  /// batch pass can concatenate many cells into a single SoA (each cell's
  /// run stays arrival-ordered) and sweep contiguous multi-cell ranges
  /// with one kernel call. Capacity persists across Clear(), so steady
  /// state allocates nothing.
  void Append(const stream::WindowStore::Reader& reader, const Row* rows,
              size_t n, bool want_kws, bool want_ts) {
    stream::WindowStore::ColumnSlab slab;
    for (size_t i = 0; i < n; ++i) {
      const Row row = rows[i];
      if (!slab.contains(row)) slab = reader.slab(row);
      const Row k = row - slab.base;
      if (want_ts) ts.push_back(slab.timestamps[k]);
      locs.push_back(slab.locs[k]);
      if (want_kws) {
        const stream::KeywordSpan span = slab.spans[k];
        kws.push_back({slab.arena->Data(span), span.len});
      }
    }
  }
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_ROW_SCAN_H_
