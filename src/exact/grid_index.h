// Full spatial Grid index over the window: stores actual objects.
//
// This is (a) the "Grid" full index of Table I, answering queries exactly
// by scanning candidate cells, and (b) the spatial backend of the exact
// evaluator that produces the "system log" ground-truth selectivities.
// Objects arrive in timestamp order; each cell keeps a timestamp-ordered
// deque so window expiry pops an amortized-O(1) prefix.

#ifndef LATEST_EXACT_GRID_INDEX_H_
#define LATEST_EXACT_GRID_INDEX_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "stream/object.h"
#include "stream/query.h"
#include "util/thread_pool.h"

namespace latest::exact {

/// Windowed exact spatial grid index.
class GridIndex {
 public:
  /// bounds: spatial domain. cols/rows: grid resolution.
  GridIndex(const geo::Rect& bounds, uint32_t cols, uint32_t rows);

  /// Inserts an object (timestamps must be non-decreasing overall).
  void Insert(const stream::GeoTextObject& obj);

  /// Removes all objects with timestamp < cutoff.
  void EvictBefore(stream::Timestamp cutoff);

  /// Exact number of window objects matching the query. `cutoff` is the
  /// lower window bound NOW - T; objects older than it are ignored (and
  /// lazily evicted).
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Number of objects currently stored (including not-yet-evicted ones).
  uint64_t size() const { return size_; }

  const geo::Grid& grid() const { return grid_; }

  /// Drops all objects.
  void Clear();

  /// Shards CountMatches row bands across `pool` when the candidate cell
  /// range is large enough to amortize dispatch. Pass null (the default)
  /// for fully serial scans. The pool is borrowed, not owned, and must
  /// outlive the index. Results are bit-identical to the serial path:
  /// each cell is scanned (and lazily evicted) by exactly one shard and
  /// per-shard counts are summed after the join.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  /// Pops expired objects from one cell's front; returns evictions.
  uint64_t EvictCell(uint32_t cell, stream::Timestamp cutoff);

  /// Serial scan of rows [row_lo, row_hi] x cols [col_lo, col_hi];
  /// returns {matches, evicted} without touching size_.
  std::pair<uint64_t, uint64_t> ScanRows(const stream::Query& q,
                                         stream::Timestamp cutoff,
                                         uint32_t row_lo, uint32_t row_hi,
                                         uint32_t col_lo, uint32_t col_hi);

  geo::Grid grid_;
  std::vector<std::deque<stream::GeoTextObject>> cells_;
  uint64_t size_ = 0;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_GRID_INDEX_H_
