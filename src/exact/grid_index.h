// Full spatial Grid index over the window: stores actual objects.
//
// This is (a) the "Grid" full index of Table I, answering queries exactly
// by scanning candidate cells, and (b) the spatial backend of the exact
// evaluator that produces the "system log" ground-truth selectivities.
// Objects arrive in timestamp order; each cell keeps a timestamp-ordered
// deque so window expiry pops an amortized-O(1) prefix.

#ifndef LATEST_EXACT_GRID_INDEX_H_
#define LATEST_EXACT_GRID_INDEX_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "geo/grid.h"
#include "stream/object.h"
#include "stream/query.h"

namespace latest::exact {

/// Windowed exact spatial grid index.
class GridIndex {
 public:
  /// bounds: spatial domain. cols/rows: grid resolution.
  GridIndex(const geo::Rect& bounds, uint32_t cols, uint32_t rows);

  /// Inserts an object (timestamps must be non-decreasing overall).
  void Insert(const stream::GeoTextObject& obj);

  /// Removes all objects with timestamp < cutoff.
  void EvictBefore(stream::Timestamp cutoff);

  /// Exact number of window objects matching the query. `cutoff` is the
  /// lower window bound NOW - T; objects older than it are ignored (and
  /// lazily evicted).
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Number of objects currently stored (including not-yet-evicted ones).
  uint64_t size() const { return size_; }

  const geo::Grid& grid() const { return grid_; }

  /// Drops all objects.
  void Clear();

 private:
  /// Pops expired objects from one cell's front.
  void EvictCell(uint32_t cell, stream::Timestamp cutoff);

  geo::Grid grid_;
  std::vector<std::deque<stream::GeoTextObject>> cells_;
  uint64_t size_ = 0;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_GRID_INDEX_H_
