// Full spatial Grid index over the window: references columnar store rows.
//
// This is (a) the "Grid" full index of Table I, answering queries exactly
// by scanning candidate cells, and (b) the spatial backend of the exact
// evaluator that produces the "system log" ground-truth selectivities.
// Cells hold dense uint32 row references into a shared WindowStore; scans
// resolve rows through a per-scan store Reader, so they are cache-linear
// over plain arrays and copy no objects. Rows arrive in timestamp order;
// window expiry advances an amortized-O(1) per-cell head offset.

#ifndef LATEST_EXACT_GRID_INDEX_H_
#define LATEST_EXACT_GRID_INDEX_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "exact/row_scan.h"
#include "geo/grid.h"
#include "stream/query.h"
#include "stream/window_store.h"
#include "util/thread_pool.h"

namespace latest::exact {

/// Windowed exact spatial grid index over a shared columnar store.
class GridIndex {
 public:
  using Row = stream::WindowStore::Row;

  /// store: the columnar window store rows refer into (borrowed, must
  /// outlive the index). bounds: spatial domain. cols/rows: resolution.
  GridIndex(const stream::WindowStore* store, const geo::Rect& bounds,
            uint32_t cols, uint32_t rows);

  /// Indexes a store row (append order = non-decreasing timestamps).
  void Insert(Row row);

  /// Same, with the row's location supplied by the caller (the evaluator
  /// already holds it at append time), skipping the store lookup.
  void Insert(Row row, const geo::Point& loc);

  /// Removes all rows with timestamp < cutoff.
  void EvictBefore(stream::Timestamp cutoff);

  /// Exact number of window objects matching the query. `cutoff` is the
  /// lower window bound NOW - T; objects older than it are ignored (and
  /// lazily evicted).
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Batched exact evaluation: one pass over the union of the queries'
  /// candidate cell ranges, evicting and gathering each cell's columns
  /// once and sweeping them with the SIMD kernels for every covering
  /// query. counts[i] receives the match count of *queries[i] under
  /// cutoffs[i], bit-identical to CountMatches(*queries[i], cutoffs[i])
  /// at every kernel tier and thread count (large batches row-band shard
  /// across the pool like CountMatches).
  void CountMatchesBatch(const stream::Query* const* queries,
                         const stream::Timestamp* cutoffs, size_t k,
                         uint64_t* counts);

  /// Number of rows currently indexed (including not-yet-evicted ones).
  uint64_t size() const { return size_; }

  const geo::Grid& grid() const { return grid_; }

  /// Drops all rows.
  void Clear();

  /// Shards CountMatches row bands across `pool` when the candidate cell
  /// range is large enough to amortize dispatch. Pass null (the default)
  /// for fully serial scans. The pool is borrowed, not owned, and must
  /// outlive the index. Results are bit-identical to the serial path:
  /// each cell is scanned (and lazily evicted) by exactly one shard and
  /// per-shard counts are summed after the join.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  /// One grid cell: row refs in arrival order; [head, rows.size()) live.
  struct Cell {
    std::vector<Row> rows;
    uint32_t head = 0;
    /// Cached timestamp of rows[head], or kUnknownTs when not yet read.
    /// Never stale-high: set only from an actual read, and heads only
    /// advance, so `head_ts >= cutoff` proves the whole cell is live
    /// without touching the store.
    stream::Timestamp head_ts = kUnknownTs;

    size_t live() const { return rows.size() - head; }
  };

  static constexpr stream::Timestamp kUnknownTs =
      std::numeric_limits<stream::Timestamp>::min();

  /// Advances one cell's head past expired rows; returns evictions.
  uint64_t EvictCell(Cell* cell, const stream::WindowStore::Reader& reader,
                     stream::Timestamp cutoff);

  /// Serial scan of rows [row_lo, row_hi] x cols [col_lo, col_hi];
  /// returns {matches, evicted} without touching size_.
  /// [range_row_lo, range_row_hi] is the full candidate row range of the
  /// query (a superset of the scanned band under sharding): cells strictly
  /// inside the candidate range are fully covered by the query range and
  /// count in O(1) without reading locations.
  std::pair<uint64_t, uint64_t> ScanRows(const stream::Query& q,
                                         stream::Timestamp cutoff,
                                         uint32_t row_lo, uint32_t row_hi,
                                         uint32_t col_lo, uint32_t col_hi,
                                         uint32_t range_row_lo,
                                         uint32_t range_row_hi);

  /// One batch query's candidate cell box + cutoff (see grid_index.cc).
  struct BatchPlan;

  /// Reusable per-scan state of one BatchScanRows call: the gathered SoA,
  /// the per-cell [start, end) SoA offsets (only covered cells are ever
  /// written or read, so they are never cleared), and the row-bucketing
  /// arrays of the gather phase. The serial path keeps one as a member so
  /// steady state allocates nothing; shards build their own.
  struct BatchScanScratch {
    GatheredRows rows;
    std::vector<uint32_t> off_lo;
    std::vector<uint32_t> off_hi;
    std::vector<uint32_t> row_start;
    std::vector<uint32_t> row_items;
    std::vector<uint32_t> cursor;
  };

  /// Batch counterpart of ScanRows over one row band, in two phases.
  /// Gather: plans (col_lo-sorted by the caller) are bucketed by grid
  /// row, their col ranges merged into covered-column intervals, and
  /// every covered cell is evicted at the batch-minimum cutoff and its
  /// live columns appended to one SoA in row-major cell order, recording
  /// per-cell [start, end) offsets. Count: cells a plan's box covers
  /// within one grid row are then contiguous in the SoA, so each
  /// (plan, grid row) strip is swept with a single kernel call — and the
  /// strip's fully-interior middle counts wholesale from the offsets
  /// alone. Returns evictions.
  uint64_t BatchScanRows(const std::vector<BatchPlan>& plans,
                         stream::Timestamp min_cutoff, uint32_t row_lo,
                         uint32_t row_hi, bool want_kws, bool want_ts,
                         uint64_t* counts, BatchScanScratch* scratch);

  const stream::WindowStore* store_;
  geo::Grid grid_;
  std::vector<Cell> cells_;
  uint64_t size_ = 0;
  util::ThreadPool* pool_ = nullptr;
  /// Serial-path batch scan scratch (shards use their own).
  BatchScanScratch batch_scratch_;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_GRID_INDEX_H_
