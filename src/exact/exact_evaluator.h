// Exact RC-DVQ evaluation: the "query processor + system logs" of the
// paper.
//
// After LATEST returns an estimate, the actual query executes on real data
// and the system log records the true selectivity (Section V-D). This
// evaluator plays that role: it owns the columnar window store of actual
// objects plus a spatial grid and an inverted keyword index referencing
// it, and answers every query exactly, choosing the backend by predicate
// type.

#ifndef LATEST_EXACT_EXACT_EVALUATOR_H_
#define LATEST_EXACT_EXACT_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "exact/grid_index.h"
#include "exact/inverted_index.h"
#include "stream/object.h"
#include "stream/query.h"
#include "stream/window_store.h"
#include "util/serialization.h"

namespace latest::exact {

/// Ground-truth evaluator over the sliding window.
class ExactEvaluator {
 public:
  /// bounds: spatial domain; window_length_ms: the window size T.
  ExactEvaluator(const geo::Rect& bounds, stream::Timestamp window_length_ms,
                 uint32_t grid_cols = 64, uint32_t grid_rows = 64);

  /// Inserts an object (timestamps non-decreasing).
  void Insert(const stream::GeoTextObject& obj);

  /// Exact selectivity of q over the window ending at q.timestamp.
  uint64_t TrueSelectivity(const stream::Query& q);

  /// Batched exact evaluation: splits `queries[0..k)` by predicate type
  /// and answers each sub-batch in one pass over the shared backend
  /// (GridIndex / InvertedIndex CountMatchesBatch). counts[i] is
  /// bit-identical to TrueSelectivity(queries[i]) at every kernel tier
  /// and thread count.
  void TrueSelectivityBatch(const stream::Query* queries, size_t k,
                            uint64_t* counts);

  /// Called with the sub-batch size on every batched backend dispatch
  /// (observability hook for the latest_batch_size metric).
  using BatchObserver = std::function<void(size_t)>;
  void set_batch_observer(BatchObserver observer) {
    batch_observer_ = std::move(observer);
  }

  /// Evicts everything older than now - T; call periodically to bound
  /// memory between queries.
  void EvictExpired(stream::Timestamp now);

  stream::Timestamp window_length_ms() const { return window_length_ms_; }

  /// The columnar store backing both indexes (for occupancy gauges).
  const stream::WindowStore& store() const { return store_; }

  void Clear();

  /// Persists the columnar store only: the grid and inverted indexes are
  /// derived data (row references) and are rebuilt on Load.
  void Save(util::BinaryWriter* writer) const;

  /// Restores a store persisted by Save and rebuilds both indexes by
  /// re-inserting every resident row. Exact counting is insertion-order
  /// independent, so the rebuilt evaluator answers bit-identically. False
  /// on malformed input (the evaluator is left cleared).
  bool Load(util::BinaryReader* reader);

  /// Shards spatial ground-truth scans (GridIndex row bands) and batched
  /// keyword evaluation (InvertedIndex query bands) across `pool`; null
  /// restores serial evaluation. The pool is borrowed and must outlive
  /// the evaluator.
  void set_thread_pool(util::ThreadPool* pool) {
    grid_.set_thread_pool(pool);
    inverted_.set_thread_pool(pool);
  }

 private:
  /// Store slices per window; matches the default WindowConfig slicing so
  /// a full rotation retires exactly one sealed slice.
  static constexpr uint32_t kStoreSlicesPerWindow = 16;

  stream::Timestamp window_length_ms_;
  // Declaration order matters: the store must outlive the indexes that
  // hold rows into it.
  stream::WindowStore store_;
  GridIndex grid_;
  InvertedIndex inverted_;
  BatchObserver batch_observer_;

  // Batch-split scratch, reused across TrueSelectivityBatch calls.
  std::vector<const stream::Query*> batch_qs_;
  std::vector<stream::Timestamp> batch_cutoffs_;
  std::vector<uint32_t> batch_idx_;
  std::vector<uint64_t> batch_counts_;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_EXACT_EVALUATOR_H_
