#include "exact/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "simd/kernels.h"

namespace latest::exact {

namespace {

/// Evicted posting prefixes compact once the dead prefix is this long and
/// at least half the buffer (mirrors GridIndex cells).
constexpr uint32_t kMinHeadForCompaction = 32;

/// Minimum batch size before query bands are worth sharding.
constexpr size_t kMinBatchForSharding = 4;

/// A ranged multi-keyword query takes the dense path (full-store SIMD
/// rect mask + AND/popcount) once its candidates exceed 1/8 of the
/// resident rows; sparser candidate sets iterate their bits instead.
constexpr uint64_t kDenseCandidateFraction = 8;

/// Zeroes the first `nbits` bits of a mask (rows below a query's stricter
/// window cutoff).
void ClearMaskPrefix(uint64_t* mask, size_t nbits) {
  const size_t full = nbits >> 6;
  for (size_t w = 0; w < full; ++w) mask[w] = 0;
  if (nbits & 63) mask[full] &= ~uint64_t{0} << (nbits & 63);
}

}  // namespace

void InvertedIndex::Insert(Row row) {
  const stream::WindowStore::Reader reader(*store_);
  const auto [kw, kw_len] = reader.keywords(row);
  Insert(row, kw, kw_len);
}

void InvertedIndex::Insert(Row row, const stream::KeywordId* kw,
                           size_t kw_len) {
  for (size_t i = 0; i < kw_len; ++i) {
    const stream::KeywordId id = kw[i];
    if (id >= postings_.size()) postings_.resize(id + 1);
    postings_[id].rows.push_back(row);
    ++num_postings_;
  }
}

void InvertedIndex::EvictList(PostingList* list,
                              const stream::WindowStore::Reader& reader,
                              stream::Timestamp cutoff) {
  const size_t end = list->rows.size();
  if (list->head >= end) return;
  // Steady-state fast path: the cached head timestamp proves the whole
  // list live without a store read (postings arrive in timestamp order).
  if (list->head_ts != kUnknownTs && list->head_ts >= cutoff) return;
  const Row first_live = store_->first_live_row();
  uint32_t head = list->head;
  list->head_ts = kUnknownTs;
  while (head < end) {
    const Row row = list->rows[head];
    // Rows of dropped store slices are discarded without dereferencing.
    if (row >= first_live) {
      const stream::Timestamp ts = reader.timestamp(row);
      if (ts >= cutoff) {
        list->head_ts = ts;
        break;
      }
    }
    ++head;
    --num_postings_;
  }
  list->head = head;
  if (head >= kMinHeadForCompaction && head >= list->rows.size() / 2) {
    list->rows.erase(list->rows.begin(), list->rows.begin() + head);
    list->head = 0;
  }
}

uint32_t InvertedIndex::PrepareSeenEpoch() {
  const uint64_t resident = store_->resident_rows();
  uint64_t size = seen_stamps_.size();
  if (size < resident) {
    size = 64;
    while (size < resident) size *= 2;
    seen_stamps_.assign(size, 0);
    seen_epoch_ = 0;
  }
  if (seen_epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(seen_stamps_.begin(), seen_stamps_.end(), 0);
    seen_epoch_ = 0;
  }
  ++seen_epoch_;
  return static_cast<uint32_t>(size - 1);
}

uint64_t InvertedIndex::CountMatches(const stream::Query& q,
                                     stream::Timestamp cutoff) {
  assert(q.HasKeywords());
  const stream::WindowStore::Reader reader(*store_);

  // Single-keyword fast path: one list holds each object at most once, so
  // no dedup state is touched at all.
  if (q.keywords.size() == 1) {
    const stream::KeywordId id = q.keywords[0];
    if (id >= postings_.size()) return 0;
    PostingList& list = postings_[id];
    EvictList(&list, reader, cutoff);
    uint64_t count = 0;
    if (!q.HasRange()) return list.rows.size() - list.head;
    RowScanner scan(reader);
    const size_t n = list.rows.size();
    for (size_t i = list.head; i < n; ++i) {
      if (q.range->Contains(scan.loc(list.rows[i]))) ++count;
    }
    return count;
  }

  const uint32_t mask = PrepareSeenEpoch();
  const bool check_range = q.HasRange();
  uint64_t count = 0;
  RowScanner scan(reader);
  for (const stream::KeywordId id : q.keywords) {
    if (id >= postings_.size()) continue;
    PostingList& list = postings_[id];
    EvictList(&list, reader, cutoff);
    const size_t n = list.rows.size();
    for (size_t i = list.head; i < n; ++i) {
      const Row row = list.rows[i];
      if (check_range && !q.range->Contains(scan.loc(row))) continue;
      uint32_t& stamp = seen_stamps_[row & mask];
      if (stamp != seen_epoch_) {
        stamp = seen_epoch_;
        ++count;
      }
    }
  }
  return count;
}

const uint64_t* InvertedIndex::HotMask(stream::KeywordId id) const {
  const auto it = std::lower_bound(
      hot_ids_.begin(), hot_ids_.end(), id,
      [](const std::pair<stream::KeywordId, uint32_t>& entry,
         stream::KeywordId v) { return entry.first < v; });
  if (it == hot_ids_.end() || it->first != id) return nullptr;
  return hot_masks_[it->second].data();
}

void InvertedIndex::EvalBatchQuery(const stream::Query& q,
                                   stream::Timestamp cutoff,
                                   stream::Timestamp min_cutoff, Row base0,
                                   Row end_row,
                                   const stream::WindowStore::Reader& reader,
                                   BatchScratch* scratch,
                                   uint64_t* out) const {
  *out = 0;
  // Store rows ascend in timestamp, so `row >= cut_row <=> ts >= cutoff`:
  // one global binary search replaces per-row timestamp checks, and
  // per-list starts become integer lower bounds over the row values.
  Row cut_row = base0;
  if (cutoff > min_cutoff) {
    Row lo = base0;
    Row hi = end_row;
    while (lo < hi) {
      const Row mid = lo + (hi - lo) / 2;
      if (reader.timestamp(mid) < cutoff) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    cut_row = lo;
  }

  // Single-keyword fast path, as in CountMatches: one list holds each
  // object at most once, so no dedup bitmap is needed.
  if (q.keywords.size() == 1) {
    const stream::KeywordId id = q.keywords[0];
    if (id >= postings_.size()) return;
    const PostingList& list = postings_[id];
    const Row* begin = list.rows.data() + list.head;
    const Row* end = list.rows.data() + list.rows.size();
    if (cut_row > base0) begin = std::lower_bound(begin, end, cut_row);
    const size_t n = static_cast<size_t>(end - begin);
    if (!q.HasRange()) {
      *out = n;
      return;
    }
    scratch->rows.Gather(reader, begin, n, /*want_kws=*/false);
    *out = simd::RectContainCount(scratch->rows.locs.data(), n, *q.range);
    return;
  }

  const size_t resident_bits = end_row - base0;
  if (resident_bits == 0) return;
  const size_t words = simd::MaskWords(resident_bits);
  // Candidate bitmap = union of the keywords' posting rows; the bitmap
  // deduplicates objects carrying several query keywords for free.
  scratch->cand.assign(words, 0);
  for (const stream::KeywordId id : q.keywords) {
    if (id >= postings_.size()) continue;
    if (const uint64_t* hot = HotMask(id)) {
      simd::MaskOr(scratch->cand.data(), hot, words);
      continue;
    }
    const PostingList& list = postings_[id];
    const size_t n = list.rows.size();
    for (size_t i = list.head; i < n; ++i) {
      const Row bit = list.rows[i] - base0;
      scratch->cand[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  }
  if (cut_row > base0) ClearMaskPrefix(scratch->cand.data(), cut_row - base0);

  if (!q.HasRange()) {
    *out = simd::MaskPopcount(scratch->cand.data(), words);
    return;
  }
  const uint64_t candidates = simd::MaskPopcount(scratch->cand.data(), words);
  if (candidates == 0) return;
  if (candidates * kDenseCandidateFraction >= resident_bits) {
    // Dense: one SIMD rect sweep over every resident slice, merged into a
    // store-wide location mask, then AND + popcount against the
    // candidates.
    scratch->rect.assign(words, 0);
    Row row = base0;
    while (row < end_row) {
      const stream::WindowStore::ColumnSlab slab = reader.slab(row);
      const size_t len = slab.end - row;
      scratch->slab.resize(simd::MaskWords(len));
      simd::RectContainMask(slab.locs + (row - slab.base), len, *q.range,
                            scratch->slab.data());
      simd::MaskOrShifted(scratch->rect.data(), row - base0,
                          scratch->slab.data(), len);
      row = slab.end;
    }
    *out = simd::MaskAndPopcount(scratch->cand.data(), scratch->rect.data(),
                                 words);
    return;
  }
  // Sparse: resolve only the candidate rows' locations.
  RowScanner scan(reader);
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = scratch->cand[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const Row row = base0 + static_cast<Row>(w * 64 + b);
      if (q.range->Contains(scan.loc(row))) ++count;
    }
  }
  *out = count;
}

void InvertedIndex::CountMatchesBatch(const stream::Query* const* queries,
                                      const stream::Timestamp* cutoffs,
                                      size_t k, uint64_t* counts) {
  if (k == 0) return;
  stream::Timestamp min_cutoff = cutoffs[0];
  for (size_t i = 1; i < k; ++i) min_cutoff = std::min(min_cutoff, cutoffs[i]);

  const Row base0 = store_->first_live_row();
  const Row end_row = store_->end_row();
  {
    // Serial phase: evict every batch keyword once at the batch-minimum
    // cutoff (queries with stricter cutoffs mask the stale prefix later)
    // and build the hot-keyword bitmap index — keywords shared by two or
    // more multi-keyword queries get their posting rows materialized as a
    // bitmap OR-ed by each user instead of re-walked.
    const stream::WindowStore::Reader reader(*store_);
    batch_kws_.clear();
    for (size_t i = 0; i < k; ++i) {
      assert(queries[i]->HasKeywords());
      const bool multi = queries[i]->keywords.size() >= 2;
      for (const stream::KeywordId id : queries[i]->keywords) {
        batch_kws_.emplace_back(id, multi);
      }
    }
    std::sort(batch_kws_.begin(), batch_kws_.end());
    hot_ids_.clear();
    const size_t words = simd::MaskWords(end_row - base0);
    size_t next_mask = 0;
    for (size_t i = 0; i < batch_kws_.size();) {
      const stream::KeywordId id = batch_kws_[i].first;
      size_t multi_uses = 0;
      for (; i < batch_kws_.size() && batch_kws_[i].first == id; ++i) {
        if (batch_kws_[i].second) ++multi_uses;
      }
      if (id >= postings_.size()) continue;
      PostingList& list = postings_[id];
      EvictList(&list, reader, min_cutoff);
      if (multi_uses >= 2 && list.head < list.rows.size() && words > 0) {
        if (next_mask == hot_masks_.size()) hot_masks_.emplace_back();
        std::vector<uint64_t>& mask = hot_masks_[next_mask];
        mask.assign(words, 0);
        const size_t n = list.rows.size();
        for (size_t j = list.head; j < n; ++j) {
          const Row bit = list.rows[j] - base0;
          mask[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
        hot_ids_.emplace_back(id, static_cast<uint32_t>(next_mask));
        ++next_mask;
      }
    }
  }

  // Parallel phase: postings are read-only now; queries shard into
  // contiguous bands with per-shard readers and scratch, each writing its
  // own counts slots — deterministic at any thread count.
  if (pool_ != nullptr && pool_->num_threads() > 0 &&
      k >= kMinBatchForSharding) {
    const uint32_t num_shards = static_cast<uint32_t>(
        std::min<size_t>(k, pool_->num_threads()));
    pool_->ParallelFor(num_shards, [&](size_t shard) {
      const size_t begin = k * shard / num_shards;
      const size_t end = k * (shard + 1) / num_shards;
      const stream::WindowStore::Reader reader(*store_);
      BatchScratch scratch;
      for (size_t i = begin; i < end; ++i) {
        EvalBatchQuery(*queries[i], cutoffs[i], min_cutoff, base0, end_row,
                       reader, &scratch, &counts[i]);
      }
    });
    return;
  }
  const stream::WindowStore::Reader reader(*store_);
  for (size_t i = 0; i < k; ++i) {
    EvalBatchQuery(*queries[i], cutoffs[i], min_cutoff, base0, end_row,
                   reader, &serial_scratch_, &counts[i]);
  }
}

void InvertedIndex::EvictBefore(stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  for (PostingList& list : postings_) {
    EvictList(&list, reader, cutoff);
  }
}

void InvertedIndex::Clear() {
  postings_.clear();
  num_postings_ = 0;
  seen_stamps_.clear();
  seen_epoch_ = 0;
}

}  // namespace latest::exact
