#include "exact/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace latest::exact {

namespace {

/// Evicted posting prefixes compact once the dead prefix is this long and
/// at least half the buffer (mirrors GridIndex cells).
constexpr uint32_t kMinHeadForCompaction = 32;

}  // namespace

void InvertedIndex::Insert(Row row) {
  const stream::WindowStore::Reader reader(*store_);
  const auto [kw, kw_len] = reader.keywords(row);
  Insert(row, kw, kw_len);
}

void InvertedIndex::Insert(Row row, const stream::KeywordId* kw,
                           size_t kw_len) {
  for (size_t i = 0; i < kw_len; ++i) {
    const stream::KeywordId id = kw[i];
    if (id >= postings_.size()) postings_.resize(id + 1);
    postings_[id].rows.push_back(row);
    ++num_postings_;
  }
}

void InvertedIndex::EvictList(PostingList* list,
                              const stream::WindowStore::Reader& reader,
                              stream::Timestamp cutoff) {
  const size_t end = list->rows.size();
  if (list->head >= end) return;
  // Steady-state fast path: the cached head timestamp proves the whole
  // list live without a store read (postings arrive in timestamp order).
  if (list->head_ts != kUnknownTs && list->head_ts >= cutoff) return;
  const Row first_live = store_->first_live_row();
  uint32_t head = list->head;
  list->head_ts = kUnknownTs;
  while (head < end) {
    const Row row = list->rows[head];
    // Rows of dropped store slices are discarded without dereferencing.
    if (row >= first_live) {
      const stream::Timestamp ts = reader.timestamp(row);
      if (ts >= cutoff) {
        list->head_ts = ts;
        break;
      }
    }
    ++head;
    --num_postings_;
  }
  list->head = head;
  if (head >= kMinHeadForCompaction && head >= list->rows.size() / 2) {
    list->rows.erase(list->rows.begin(), list->rows.begin() + head);
    list->head = 0;
  }
}

uint32_t InvertedIndex::PrepareSeenEpoch() {
  const uint64_t resident = store_->resident_rows();
  uint64_t size = seen_stamps_.size();
  if (size < resident) {
    size = 64;
    while (size < resident) size *= 2;
    seen_stamps_.assign(size, 0);
    seen_epoch_ = 0;
  }
  if (seen_epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(seen_stamps_.begin(), seen_stamps_.end(), 0);
    seen_epoch_ = 0;
  }
  ++seen_epoch_;
  return static_cast<uint32_t>(size - 1);
}

uint64_t InvertedIndex::CountMatches(const stream::Query& q,
                                     stream::Timestamp cutoff) {
  assert(q.HasKeywords());
  const stream::WindowStore::Reader reader(*store_);

  // Single-keyword fast path: one list holds each object at most once, so
  // no dedup state is touched at all.
  if (q.keywords.size() == 1) {
    const stream::KeywordId id = q.keywords[0];
    if (id >= postings_.size()) return 0;
    PostingList& list = postings_[id];
    EvictList(&list, reader, cutoff);
    uint64_t count = 0;
    if (!q.HasRange()) return list.rows.size() - list.head;
    stream::WindowStore::ColumnSlab slab;
    const size_t n = list.rows.size();
    for (size_t i = list.head; i < n; ++i) {
      const Row row = list.rows[i];
      if (!slab.contains(row)) slab = reader.slab(row);
      if (q.range->Contains(slab.locs[row - slab.base])) ++count;
    }
    return count;
  }

  const uint32_t mask = PrepareSeenEpoch();
  const bool check_range = q.HasRange();
  uint64_t count = 0;
  stream::WindowStore::ColumnSlab slab;
  for (const stream::KeywordId id : q.keywords) {
    if (id >= postings_.size()) continue;
    PostingList& list = postings_[id];
    EvictList(&list, reader, cutoff);
    const size_t n = list.rows.size();
    for (size_t i = list.head; i < n; ++i) {
      const Row row = list.rows[i];
      if (check_range) {
        if (!slab.contains(row)) slab = reader.slab(row);
        if (!q.range->Contains(slab.locs[row - slab.base])) continue;
      }
      uint32_t& stamp = seen_stamps_[row & mask];
      if (stamp != seen_epoch_) {
        stamp = seen_epoch_;
        ++count;
      }
    }
  }
  return count;
}

void InvertedIndex::EvictBefore(stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  for (PostingList& list : postings_) {
    EvictList(&list, reader, cutoff);
  }
}

void InvertedIndex::Clear() {
  postings_.clear();
  num_postings_ = 0;
  seen_stamps_.clear();
  seen_epoch_ = 0;
}

}  // namespace latest::exact
