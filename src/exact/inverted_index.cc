#include "exact/inverted_index.h"

#include <cassert>

namespace latest::exact {

void InvertedIndex::Insert(const stream::GeoTextObject& obj) {
  for (const stream::KeywordId id : obj.keywords) {
    if (id >= postings_.size()) postings_.resize(id + 1);
    postings_[id].push_back(Posting{obj.timestamp, obj.loc, obj.oid});
    ++num_postings_;
  }
}

void InvertedIndex::EvictList(stream::KeywordId id, stream::Timestamp cutoff) {
  auto& list = postings_[id];
  while (!list.empty() && list.front().timestamp < cutoff) {
    list.pop_front();
    --num_postings_;
  }
}

uint64_t InvertedIndex::CountMatches(const stream::Query& q,
                                     stream::Timestamp cutoff) {
  assert(q.HasKeywords());
  std::unordered_set<stream::ObjectId> seen;
  for (const stream::KeywordId id : q.keywords) {
    if (id >= postings_.size()) continue;
    EvictList(id, cutoff);
    for (const Posting& p : postings_[id]) {
      if (q.HasRange() && !q.range->Contains(p.loc)) continue;
      seen.insert(p.oid);
    }
  }
  return seen.size();
}

void InvertedIndex::EvictBefore(stream::Timestamp cutoff) {
  for (stream::KeywordId id = 0; id < postings_.size(); ++id) {
    EvictList(id, cutoff);
  }
}

void InvertedIndex::Clear() {
  postings_.clear();
  num_postings_ = 0;
}

}  // namespace latest::exact
