#include "exact/exact_evaluator.h"

namespace latest::exact {

ExactEvaluator::ExactEvaluator(const geo::Rect& bounds,
                               stream::Timestamp window_length_ms,
                               uint32_t grid_cols, uint32_t grid_rows)
    : window_length_ms_(window_length_ms),
      grid_(bounds, grid_cols, grid_rows) {}

void ExactEvaluator::Insert(const stream::GeoTextObject& obj) {
  grid_.Insert(obj);
  if (!obj.keywords.empty()) inverted_.Insert(obj);
}

uint64_t ExactEvaluator::TrueSelectivity(const stream::Query& q) {
  const stream::Timestamp cutoff = q.timestamp - window_length_ms_;
  // Keyword postings are usually far more selective than spatial cells in
  // these workloads, so any query with a keyword predicate goes to the
  // inverted index; pure spatial queries go to the grid.
  if (q.HasKeywords()) return inverted_.CountMatches(q, cutoff);
  return grid_.CountMatches(q, cutoff);
}

void ExactEvaluator::EvictExpired(stream::Timestamp now) {
  const stream::Timestamp cutoff = now - window_length_ms_;
  grid_.EvictBefore(cutoff);
  inverted_.EvictBefore(cutoff);
}

void ExactEvaluator::Clear() {
  grid_.Clear();
  inverted_.Clear();
}

}  // namespace latest::exact
