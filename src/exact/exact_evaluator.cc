#include "exact/exact_evaluator.h"

#include <algorithm>

namespace latest::exact {

ExactEvaluator::ExactEvaluator(const geo::Rect& bounds,
                               stream::Timestamp window_length_ms,
                               uint32_t grid_cols, uint32_t grid_rows)
    : window_length_ms_(window_length_ms),
      store_(std::max<stream::Timestamp>(
          1, window_length_ms / kStoreSlicesPerWindow)),
      grid_(&store_, bounds, grid_cols, grid_rows),
      inverted_(&store_) {}

void ExactEvaluator::Insert(const stream::GeoTextObject& obj) {
  // One store row per object; both indexes reference it. The location and
  // keyword set are passed through directly — no store read-back.
  const stream::WindowStore::Row row = store_.Append(obj);
  grid_.Insert(row, obj.loc);
  if (!obj.keywords.empty()) {
    inverted_.Insert(row, obj.keywords.data(), obj.keywords.size());
  }
}

uint64_t ExactEvaluator::TrueSelectivity(const stream::Query& q) {
  const stream::Timestamp cutoff = q.timestamp - window_length_ms_;
  // Keyword postings are usually far more selective than spatial cells in
  // these workloads, so any query with a keyword predicate goes to the
  // inverted index; pure spatial queries go to the grid.
  if (q.HasKeywords()) return inverted_.CountMatches(q, cutoff);
  return grid_.CountMatches(q, cutoff);
}

void ExactEvaluator::TrueSelectivityBatch(const stream::Query* queries,
                                          size_t k, uint64_t* counts) {
  if (k == 0) return;
  // Two passes over the predicate split, same routing as
  // TrueSelectivity: keyword/hybrid queries to the inverted index, pure
  // spatial to the grid. batch_idx_ remembers each sub-batch entry's
  // position in the caller's arrays.
  for (int pass = 0; pass < 2; ++pass) {
    batch_qs_.clear();
    batch_cutoffs_.clear();
    batch_idx_.clear();
    for (size_t i = 0; i < k; ++i) {
      if (queries[i].HasKeywords() != (pass == 0)) continue;
      batch_qs_.push_back(&queries[i]);
      batch_cutoffs_.push_back(queries[i].timestamp - window_length_ms_);
      batch_idx_.push_back(static_cast<uint32_t>(i));
    }
    if (batch_qs_.empty()) continue;
    batch_counts_.assign(batch_qs_.size(), 0);
    if (pass == 0) {
      inverted_.CountMatchesBatch(batch_qs_.data(), batch_cutoffs_.data(),
                                  batch_qs_.size(), batch_counts_.data());
    } else {
      grid_.CountMatchesBatch(batch_qs_.data(), batch_cutoffs_.data(),
                              batch_qs_.size(), batch_counts_.data());
    }
    for (size_t j = 0; j < batch_idx_.size(); ++j) {
      counts[batch_idx_[j]] = batch_counts_[j];
    }
    if (batch_observer_) batch_observer_(batch_qs_.size());
  }
}

void ExactEvaluator::EvictExpired(stream::Timestamp now) {
  const stream::Timestamp cutoff = now - window_length_ms_;
  grid_.EvictBefore(cutoff);
  inverted_.EvictBefore(cutoff);
  // Only after both indexes dropped every row below the cutoff may the
  // store retire the slices holding them.
  store_.DropBefore(cutoff);
}

void ExactEvaluator::Clear() {
  grid_.Clear();
  inverted_.Clear();
  store_.Clear();
}

void ExactEvaluator::Save(util::BinaryWriter* writer) const {
  store_.Save(writer);
}

bool ExactEvaluator::Load(util::BinaryReader* reader) {
  grid_.Clear();
  inverted_.Clear();
  if (!store_.Load(reader)) {
    Clear();
    return false;
  }
  // Rebuild the row-reference indexes from the restored columns. The
  // original indexes may have lazily evicted some resident rows already;
  // re-inserting them is harmless — they are re-evicted on the next scan
  // past the cutoff, and match counts never include them.
  const stream::WindowStore::Reader rows(store_);
  for (stream::WindowStore::Row row = store_.first_live_row();
       row < store_.end_row(); ++row) {
    grid_.Insert(row, rows.loc(row));
    const auto [keywords, len] = rows.keywords(row);
    if (len > 0) inverted_.Insert(row, keywords, len);
  }
  return true;
}

}  // namespace latest::exact
