#include "exact/quadtree_index.h"

#include <cassert>

namespace latest::exact {

QuadTreeIndex::QuadTreeIndex(const geo::Rect& bounds, uint32_t leaf_capacity,
                             uint32_t max_depth)
    : root_(std::make_unique<Node>()),
      leaf_capacity_(leaf_capacity),
      max_depth_(max_depth) {
  assert(bounds.IsValid());
  assert(leaf_capacity > 0);
  root_->cell = bounds;
}

int QuadTreeIndex::QuadrantOf(const Node& node, const geo::Point& p) const {
  const geo::Point c = node.cell.Center();
  const int east = p.x >= c.x ? 1 : 0;
  const int north = p.y >= c.y ? 2 : 0;
  return east + north;
}

void QuadTreeIndex::Split(Node* node) {
  const geo::Point c = node->cell.Center();
  const geo::Rect& b = node->cell;
  const geo::Rect quads[4] = {
      {b.min_x, b.min_y, c.x, c.y},  // SW
      {c.x, b.min_y, b.max_x, c.y},  // SE
      {b.min_x, c.y, c.x, b.max_y},  // NW
      {c.x, c.y, b.max_x, b.max_y},  // NE
  };
  for (int i = 0; i < 4; ++i) {
    node->children[i] = std::make_unique<Node>();
    node->children[i]->cell = quads[i];
    node->children[i]->depth = node->depth + 1;
  }
  num_nodes_ += 4;
  node->is_leaf = false;
  // Redistribute, preserving timestamp order (deque order is arrival
  // order, and we push in that order).
  for (const auto& obj : node->objects) {
    node->children[QuadrantOf(*node, obj.loc)]->objects.push_back(obj);
  }
  node->objects.clear();
  node->objects.shrink_to_fit();
}

void QuadTreeIndex::InsertInto(Node* node, const stream::GeoTextObject& obj) {
  while (!node->is_leaf) {
    node = node->children[QuadrantOf(*node, obj.loc)].get();
  }
  node->objects.push_back(obj);
  if (node->objects.size() > leaf_capacity_ && node->depth < max_depth_) {
    Split(node);
  }
}

void QuadTreeIndex::Insert(const stream::GeoTextObject& obj) {
  InsertInto(root_.get(), obj);
  ++size_;
}

uint64_t QuadTreeIndex::CountNode(Node* node, const stream::Query& q,
                                  stream::Timestamp cutoff) {
  if (q.HasRange() && !q.range->Intersects(node->cell)) return 0;
  if (node->is_leaf) {
    while (!node->objects.empty() &&
           node->objects.front().timestamp < cutoff) {
      node->objects.pop_front();
      --size_;
    }
    uint64_t count = 0;
    for (const auto& obj : node->objects) {
      if (q.Matches(obj)) ++count;
    }
    return count;
  }
  uint64_t count = 0;
  for (auto& child : node->children) {
    count += CountNode(child.get(), q, cutoff);
  }
  return count;
}

uint64_t QuadTreeIndex::CountMatches(const stream::Query& q,
                                     stream::Timestamp cutoff) {
  return CountNode(root_.get(), q, cutoff);
}

uint64_t QuadTreeIndex::EvictNode(Node* node, stream::Timestamp cutoff) {
  if (node->is_leaf) {
    while (!node->objects.empty() &&
           node->objects.front().timestamp < cutoff) {
      node->objects.pop_front();
      --size_;
    }
    return node->objects.size();
  }
  uint64_t live = 0;
  for (auto& child : node->children) {
    live += EvictNode(child.get(), cutoff);
  }
  if (live == 0) {
    for (auto& child : node->children) child.reset();
    node->is_leaf = true;
    num_nodes_ -= 4;
  }
  return live;
}

void QuadTreeIndex::EvictBefore(stream::Timestamp cutoff) {
  EvictNode(root_.get(), cutoff);
}

void QuadTreeIndex::Clear() {
  const geo::Rect bounds = root_->cell;
  root_ = std::make_unique<Node>();
  root_->cell = bounds;
  size_ = 0;
  num_nodes_ = 1;
}

}  // namespace latest::exact
