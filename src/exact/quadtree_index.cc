#include "exact/quadtree_index.h"

#include <cassert>

namespace latest::exact {

namespace {

/// Evicted leaf prefixes compact once the dead prefix is this long and at
/// least half the buffer (mirrors GridIndex).
constexpr uint32_t kMinHeadForCompaction = 32;

}  // namespace

QuadTreeIndex::QuadTreeIndex(const stream::WindowStore* store,
                             const geo::Rect& bounds, uint32_t leaf_capacity,
                             uint32_t max_depth)
    : store_(store),
      root_(std::make_unique<Node>()),
      leaf_capacity_(leaf_capacity),
      max_depth_(max_depth) {
  assert(bounds.IsValid());
  assert(leaf_capacity > 0);
  root_->cell = bounds;
}

int QuadTreeIndex::QuadrantOf(const Node& node, const geo::Point& p) const {
  const geo::Point c = node.cell.Center();
  const int east = p.x >= c.x ? 1 : 0;
  const int north = p.y >= c.y ? 2 : 0;
  return east + north;
}

void QuadTreeIndex::Split(Node* node,
                          const stream::WindowStore::Reader& reader) {
  const geo::Point c = node->cell.Center();
  const geo::Rect& b = node->cell;
  const geo::Rect quads[4] = {
      {b.min_x, b.min_y, c.x, c.y},  // SW
      {c.x, b.min_y, b.max_x, c.y},  // SE
      {b.min_x, c.y, c.x, b.max_y},  // NW
      {c.x, c.y, b.max_x, b.max_y},  // NE
  };
  for (int i = 0; i < 4; ++i) {
    node->children[i] = std::make_unique<Node>();
    node->children[i]->cell = quads[i];
    node->children[i]->depth = node->depth + 1;
  }
  num_nodes_ += 4;
  node->is_leaf = false;
  // Redistribute live rows, preserving arrival (timestamp) order.
  for (size_t i = node->head; i < node->rows.size(); ++i) {
    const Row row = node->rows[i];
    node->children[QuadrantOf(*node, reader.loc(row))]->rows.push_back(row);
  }
  node->rows.clear();
  node->rows.shrink_to_fit();
  node->head = 0;
}

void QuadTreeIndex::InsertInto(Node* node, Row row, const geo::Point& loc) {
  while (!node->is_leaf) {
    node = node->children[QuadrantOf(*node, loc)].get();
  }
  node->rows.push_back(row);
  if (node->live() > leaf_capacity_ && node->depth < max_depth_) {
    const stream::WindowStore::Reader reader(*store_);
    Split(node, reader);
  }
}

void QuadTreeIndex::Insert(Row row) {
  const stream::WindowStore::Reader reader(*store_);
  Insert(row, reader.loc(row));
}

void QuadTreeIndex::Insert(Row row, const geo::Point& loc) {
  InsertInto(root_.get(), row, loc);
  ++size_;
}

void QuadTreeIndex::EvictLeaf(Node* node, stream::Timestamp cutoff,
                              const stream::WindowStore::Reader& reader) {
  const Row first_live = store_->first_live_row();
  uint32_t head = node->head;
  while (head < node->rows.size()) {
    const Row row = node->rows[head];
    // Rows of dropped store slices are discarded without dereferencing.
    if (row >= first_live && reader.timestamp(row) >= cutoff) break;
    ++head;
    --size_;
  }
  node->head = head;
  if (head >= kMinHeadForCompaction && head >= node->rows.size() / 2) {
    node->rows.erase(node->rows.begin(), node->rows.begin() + head);
    node->head = 0;
  }
}

uint64_t QuadTreeIndex::CountNode(Node* node, const stream::Query& q,
                                  stream::Timestamp cutoff,
                                  const stream::WindowStore::Reader& reader) {
  if (q.HasRange() && !q.range->Intersects(node->cell)) return 0;
  if (node->is_leaf) {
    EvictLeaf(node, cutoff, reader);
    const bool check_range = q.HasRange();
    const bool check_kw = q.HasKeywords();
    uint64_t count = 0;
    stream::WindowStore::ColumnSlab slab;
    const size_t n = node->rows.size();
    for (size_t i = node->head; i < n; ++i) {
      const Row row = node->rows[i];
      if (!slab.contains(row)) slab = reader.slab(row);
      const Row k = row - slab.base;
      if (check_range && !q.range->Contains(slab.locs[k])) continue;
      if (check_kw) {
        const stream::KeywordSpan span = slab.spans[k];
        if (!stream::KeywordSetsIntersect(slab.arena->Data(span), span.len,
                                          q.keywords.data(),
                                          q.keywords.size())) {
          continue;
        }
      }
      ++count;
    }
    return count;
  }
  uint64_t count = 0;
  for (auto& child : node->children) {
    count += CountNode(child.get(), q, cutoff, reader);
  }
  return count;
}

uint64_t QuadTreeIndex::CountMatches(const stream::Query& q,
                                     stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  return CountNode(root_.get(), q, cutoff, reader);
}

uint64_t QuadTreeIndex::EvictNode(Node* node, stream::Timestamp cutoff,
                                  const stream::WindowStore::Reader& reader) {
  if (node->is_leaf) {
    EvictLeaf(node, cutoff, reader);
    return node->live();
  }
  uint64_t live = 0;
  for (auto& child : node->children) {
    live += EvictNode(child.get(), cutoff, reader);
  }
  if (live == 0) {
    for (auto& child : node->children) child.reset();
    node->is_leaf = true;
    num_nodes_ -= 4;
  }
  return live;
}

void QuadTreeIndex::EvictBefore(stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  EvictNode(root_.get(), cutoff, reader);
}

void QuadTreeIndex::Clear() {
  const geo::Rect bounds = root_->cell;
  root_ = std::make_unique<Node>();
  root_->cell = bounds;
  size_ = 0;
  num_nodes_ = 1;
}

}  // namespace latest::exact
