#include "exact/quadtree_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "simd/kernels.h"

namespace latest::exact {

namespace {

/// Evicted leaf prefixes compact once the dead prefix is this long and at
/// least half the buffer (mirrors GridIndex).
constexpr uint32_t kMinHeadForCompaction = 32;

}  // namespace

QuadTreeIndex::QuadTreeIndex(const stream::WindowStore* store,
                             const geo::Rect& bounds, uint32_t leaf_capacity,
                             uint32_t max_depth)
    : store_(store),
      root_(std::make_unique<Node>()),
      leaf_capacity_(leaf_capacity),
      max_depth_(max_depth) {
  assert(bounds.IsValid());
  assert(leaf_capacity > 0);
  root_->cell = bounds;
}

int QuadTreeIndex::QuadrantOf(const Node& node, const geo::Point& p) const {
  const geo::Point c = node.cell.Center();
  const int east = p.x >= c.x ? 1 : 0;
  const int north = p.y >= c.y ? 2 : 0;
  return east + north;
}

void QuadTreeIndex::Split(Node* node,
                          const stream::WindowStore::Reader& reader) {
  const geo::Point c = node->cell.Center();
  const geo::Rect& b = node->cell;
  const geo::Rect quads[4] = {
      {b.min_x, b.min_y, c.x, c.y},  // SW
      {c.x, b.min_y, b.max_x, c.y},  // SE
      {b.min_x, c.y, c.x, b.max_y},  // NW
      {c.x, c.y, b.max_x, b.max_y},  // NE
  };
  for (int i = 0; i < 4; ++i) {
    node->children[i] = std::make_unique<Node>();
    node->children[i]->cell = quads[i];
    node->children[i]->depth = node->depth + 1;
  }
  num_nodes_ += 4;
  node->is_leaf = false;
  // Redistribute live rows, preserving arrival (timestamp) order.
  for (size_t i = node->head; i < node->rows.size(); ++i) {
    const Row row = node->rows[i];
    node->children[QuadrantOf(*node, reader.loc(row))]->rows.push_back(row);
  }
  node->rows.clear();
  node->rows.shrink_to_fit();
  node->head = 0;
}

void QuadTreeIndex::InsertInto(Node* node, Row row, const geo::Point& loc) {
  while (!node->is_leaf) {
    node = node->children[QuadrantOf(*node, loc)].get();
  }
  node->rows.push_back(row);
  if (node->live() > leaf_capacity_ && node->depth < max_depth_) {
    const stream::WindowStore::Reader reader(*store_);
    Split(node, reader);
  }
}

void QuadTreeIndex::Insert(Row row) {
  const stream::WindowStore::Reader reader(*store_);
  Insert(row, reader.loc(row));
}

void QuadTreeIndex::Insert(Row row, const geo::Point& loc) {
  InsertInto(root_.get(), row, loc);
  ++size_;
}

void QuadTreeIndex::EvictLeaf(Node* node, stream::Timestamp cutoff,
                              const stream::WindowStore::Reader& reader) {
  const Row first_live = store_->first_live_row();
  uint32_t head = node->head;
  while (head < node->rows.size()) {
    const Row row = node->rows[head];
    // Rows of dropped store slices are discarded without dereferencing.
    if (row >= first_live && reader.timestamp(row) >= cutoff) break;
    ++head;
    --size_;
  }
  node->head = head;
  if (head >= kMinHeadForCompaction && head >= node->rows.size() / 2) {
    node->rows.erase(node->rows.begin(), node->rows.begin() + head);
    node->head = 0;
  }
}

uint64_t QuadTreeIndex::CountNode(Node* node, const stream::Query& q,
                                  stream::Timestamp cutoff,
                                  const stream::WindowStore::Reader& reader) {
  if (q.HasRange() && !q.range->Intersects(node->cell)) return 0;
  if (node->is_leaf) {
    EvictLeaf(node, cutoff, reader);
    uint64_t count = 0;
    RowScanner scan(reader);
    const size_t n = node->rows.size();
    for (size_t i = node->head; i < n; ++i) {
      if (scan.MatchesQuery(node->rows[i], q)) ++count;
    }
    return count;
  }
  uint64_t count = 0;
  for (auto& child : node->children) {
    count += CountNode(child.get(), q, cutoff, reader);
  }
  return count;
}

uint64_t QuadTreeIndex::CountMatches(const stream::Query& q,
                                     stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  return CountNode(root_.get(), q, cutoff, reader);
}

void QuadTreeIndex::CountNodeBatch(Node* node, std::vector<uint32_t>* active,
                                   size_t a_begin, size_t a_end,
                                   const stream::Query* const* queries,
                                   const stream::Timestamp* cutoffs,
                                   stream::Timestamp min_cutoff, bool want_kws,
                                   bool want_ts,
                                   const stream::WindowStore::Reader& reader,
                                   GatheredRows* scratch, uint64_t* counts) {
  if (node->is_leaf) {
    // Evicting at the batch-minimum cutoff keeps every row any active
    // query may count; stricter cutoffs skip the stale prefix via a lower
    // bound over the gathered (arrival-ordered) timestamps.
    EvictLeaf(node, min_cutoff, reader);
    const size_t n = node->live();
    if (n == 0) return;
    scratch->Gather(reader, node->rows.data() + node->head, n, want_kws,
                    want_ts);
    for (size_t a = a_begin; a < a_end; ++a) {
      const uint32_t qi = (*active)[a];
      const stream::Query& q = *queries[qi];
      size_t start = 0;
      if (cutoffs[qi] > min_cutoff) {
        start = simd::LowerBoundTimestamp(scratch->ts.data(), n, cutoffs[qi]);
      }
      if (q.HasKeywords()) {
        uint64_t c = 0;
        const stream::KeywordId* q_kw = q.keywords.data();
        const size_t q_len = q.keywords.size();
        for (size_t i = start; i < n; ++i) {
          if (q.HasRange() && !q.range->Contains(scratch->locs[i])) continue;
          if (simd::AnyKeywordIntersect(scratch->kws[i].first,
                                        scratch->kws[i].second, q_kw,
                                        q_len)) {
            ++c;
          }
        }
        counts[qi] += c;
      } else if (q.HasRange()) {
        counts[qi] += simd::RectContainCount(scratch->locs.data() + start,
                                             n - start, *q.range);
      } else {
        counts[qi] += n - start;
      }
    }
    return;
  }
  for (auto& child : node->children) {
    const size_t child_begin = active->size();
    for (size_t a = a_begin; a < a_end; ++a) {
      const uint32_t qi = (*active)[a];
      if (!queries[qi]->HasRange() ||
          queries[qi]->range->Intersects(child->cell)) {
        active->push_back(qi);
      }
    }
    if (active->size() > child_begin) {
      CountNodeBatch(child.get(), active, child_begin, active->size(),
                     queries, cutoffs, min_cutoff, want_kws, want_ts, reader,
                     scratch, counts);
    }
    active->resize(child_begin);
  }
}

void QuadTreeIndex::CountMatchesBatch(const stream::Query* const* queries,
                                      const stream::Timestamp* cutoffs,
                                      size_t k, uint64_t* counts) {
  if (k == 0) return;
  stream::Timestamp min_cutoff =
      std::numeric_limits<stream::Timestamp>::max();
  bool want_kws = false;
  std::vector<uint32_t> active;
  active.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    counts[i] = 0;
    // Root-level prune, as in CountNode.
    if (queries[i]->HasRange() && !queries[i]->range->Intersects(root_->cell)) {
      continue;
    }
    active.push_back(static_cast<uint32_t>(i));
    min_cutoff = std::min(min_cutoff, cutoffs[i]);
    want_kws |= queries[i]->HasKeywords();
  }
  if (active.empty()) return;
  bool want_ts = false;
  for (const uint32_t qi : active) want_ts |= cutoffs[qi] > min_cutoff;
  const stream::WindowStore::Reader reader(*store_);
  GatheredRows scratch;
  const size_t a_end = active.size();
  CountNodeBatch(root_.get(), &active, 0, a_end, queries, cutoffs, min_cutoff,
                 want_kws, want_ts, reader, &scratch, counts);
}

uint64_t QuadTreeIndex::EvictNode(Node* node, stream::Timestamp cutoff,
                                  const stream::WindowStore::Reader& reader) {
  if (node->is_leaf) {
    EvictLeaf(node, cutoff, reader);
    return node->live();
  }
  uint64_t live = 0;
  for (auto& child : node->children) {
    live += EvictNode(child.get(), cutoff, reader);
  }
  if (live == 0) {
    for (auto& child : node->children) child.reset();
    node->is_leaf = true;
    num_nodes_ -= 4;
  }
  return live;
}

void QuadTreeIndex::EvictBefore(stream::Timestamp cutoff) {
  const stream::WindowStore::Reader reader(*store_);
  EvictNode(root_.get(), cutoff, reader);
}

void QuadTreeIndex::Clear() {
  const geo::Rect bounds = root_->cell;
  root_ = std::make_unique<Node>();
  root_->cell = bounds;
  size_ = 0;
  num_nodes_ = 1;
}

}  // namespace latest::exact
