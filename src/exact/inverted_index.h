// Windowed inverted keyword index, the textual backend of the exact
// evaluator.
//
// Per keyword, a timestamp-ordered contiguous postings vector of row
// references into the shared WindowStore. Keyword and hybrid RC-DVQ
// queries are answered exactly by merging the postings of the query
// keywords and deduplicating objects (an object carrying several query
// keywords counts once). Deduplication uses an epoch-stamped seen-bitmap
// keyed by dense row ids — one array store per candidate instead of a
// per-query hash set — which is exact because every window object occupies
// exactly one store row.

#ifndef LATEST_EXACT_INVERTED_INDEX_H_
#define LATEST_EXACT_INVERTED_INDEX_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "exact/row_scan.h"
#include "stream/query.h"
#include "stream/window_store.h"
#include "util/thread_pool.h"

namespace latest::exact {

/// Windowed exact inverted keyword index over a shared columnar store.
class InvertedIndex {
 public:
  using Row = stream::WindowStore::Row;

  /// store: the columnar window store rows refer into (borrowed, must
  /// outlive the index).
  explicit InvertedIndex(const stream::WindowStore* store) : store_(store) {}

  /// Indexes a store row under each keyword of its span.
  void Insert(Row row);

  /// Same, with the keyword set supplied by the caller (the evaluator
  /// already holds it at append time), skipping the store lookup.
  void Insert(Row row, const stream::KeywordId* kw, size_t kw_len);

  /// Exact number of window objects matching a query that has a keyword
  /// predicate. Must not be called for pure spatial queries.
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Batched exact evaluation of K keyword/hybrid queries. Evicts every
  /// batch keyword's postings once, builds per-batch row bitmaps for hot
  /// keywords (shared by two or more multi-keyword queries), and counts
  /// via bitmap OR/popcount and the SIMD rect kernels. counts[i] receives
  /// the match count of *queries[i] under cutoffs[i], bit-identical to
  /// CountMatches(*queries[i], cutoffs[i]) at every kernel tier and
  /// thread count (large batches query-band shard across the pool).
  void CountMatchesBatch(const stream::Query* const* queries,
                         const stream::Timestamp* cutoffs, size_t k,
                         uint64_t* counts);

  /// Shards CountMatchesBatch query bands across `pool` (borrowed, must
  /// outlive the index); null keeps batches serial. Single-query
  /// CountMatches is unaffected.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Removes all postings with timestamp < cutoff.
  void EvictBefore(stream::Timestamp cutoff);

  /// Total live postings (not distinct objects).
  uint64_t num_postings() const { return num_postings_; }

  void Clear();

 private:
  /// One keyword's postings: rows in arrival order; [head, size) live.
  struct PostingList {
    std::vector<Row> rows;
    uint32_t head = 0;
    /// Cached timestamp of rows[head], or kUnknownTs when not yet read.
    /// Never stale-high (set only from reads; heads only advance), so
    /// `head_ts >= cutoff` proves the whole list live with no store read.
    stream::Timestamp head_ts = kUnknownTs;
  };

  static constexpr stream::Timestamp kUnknownTs =
      std::numeric_limits<stream::Timestamp>::min();

  void EvictList(PostingList* list, const stream::WindowStore::Reader& reader,
                 stream::Timestamp cutoff);

  /// Ensures the seen-bitmap covers the resident row range and opens a
  /// fresh dedup epoch; returns the index mask.
  uint32_t PrepareSeenEpoch();

  /// Per-evaluation scratch of the batch path: candidate/rect/slab
  /// bitmaps plus gather columns. One per shard, reused across the
  /// shard's queries.
  struct BatchScratch {
    std::vector<uint64_t> cand;
    std::vector<uint64_t> rect;
    std::vector<uint64_t> slab;
    GatheredRows rows;
  };

  /// Evaluates one batch query against the (already evicted) postings.
  /// Read-only on the index; safe to call concurrently with per-shard
  /// readers and scratch.
  void EvalBatchQuery(const stream::Query& q, stream::Timestamp cutoff,
                      stream::Timestamp min_cutoff, Row base0, Row end_row,
                      const stream::WindowStore::Reader& reader,
                      BatchScratch* scratch, uint64_t* out) const;

  /// Precomputed row bitmap of a hot batch keyword, or null.
  const uint64_t* HotMask(stream::KeywordId id) const;

  const stream::WindowStore* store_;
  std::vector<PostingList> postings_;
  uint64_t num_postings_ = 0;
  util::ThreadPool* pool_ = nullptr;

  /// Batch-scoped hot-keyword bitmap index: hot_ids_ maps keyword id ->
  /// slot in hot_masks_ (sorted by id; rebuilt per batch, buffers
  /// recycled). Masks cover store rows [first_live_row, end_row).
  std::vector<std::pair<stream::KeywordId, uint32_t>> hot_ids_;
  std::vector<std::vector<uint64_t>> hot_masks_;
  /// (keyword id, used-by-multi-keyword-query) pairs of the current
  /// batch, sorted for the hot census.
  std::vector<std::pair<stream::KeywordId, bool>> batch_kws_;
  BatchScratch serial_scratch_;

  /// Epoch-stamped dedup bitmap: seen_stamps_[row & mask] == seen_epoch_
  /// means the row was already counted this query. Sized to the next
  /// power of two >= resident rows, so `row & mask` is injective over the
  /// contiguous live range and never aliases two live rows.
  std::vector<uint32_t> seen_stamps_;
  uint32_t seen_epoch_ = 0;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_INVERTED_INDEX_H_
