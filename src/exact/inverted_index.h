// Windowed inverted keyword index, the textual backend of the exact
// evaluator.
//
// Per keyword, a timestamp-ordered postings deque of (timestamp, location,
// oid). Keyword and hybrid RC-DVQ queries are answered exactly by merging
// the postings of the query keywords and deduplicating object ids (an
// object carrying several query keywords counts once).

#ifndef LATEST_EXACT_INVERTED_INDEX_H_
#define LATEST_EXACT_INVERTED_INDEX_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "stream/object.h"
#include "stream/query.h"

namespace latest::exact {

/// Windowed exact inverted keyword index.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes an object under each of its keywords.
  void Insert(const stream::GeoTextObject& obj);

  /// Exact number of window objects matching a query that has a keyword
  /// predicate. Must not be called for pure spatial queries.
  uint64_t CountMatches(const stream::Query& q, stream::Timestamp cutoff);

  /// Removes all postings with timestamp < cutoff.
  void EvictBefore(stream::Timestamp cutoff);

  /// Total live postings (not distinct objects).
  uint64_t num_postings() const { return num_postings_; }

  void Clear();

 private:
  struct Posting {
    stream::Timestamp timestamp;
    geo::Point loc;
    stream::ObjectId oid;
  };

  void EvictList(stream::KeywordId id, stream::Timestamp cutoff);

  std::vector<std::deque<Posting>> postings_;
  uint64_t num_postings_ = 0;
};

}  // namespace latest::exact

#endif  // LATEST_EXACT_INVERTED_INDEX_H_
