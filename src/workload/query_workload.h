// Query workload generators: the TwQW*/EbRQW*/CiQW* workloads of
// Section VI-A.
//
// A workload is a sequence of segments, each with its own mix of pure
// spatial / pure keyword / hybrid queries. Phase-changing mixes (TwQW1,
// TwQW6) drive LATEST's estimator switches; uniform mixes (TwQW2..TwQW5)
// exercise single-regime behaviour. Query centers follow the Bing-mobile-
// search pattern of the paper: mostly near data hotspots, with uniform
// background noise; query keywords are drawn from the dataset's keyword
// distribution.

#ifndef LATEST_WORKLOAD_QUERY_WORKLOAD_H_
#define LATEST_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/query.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/zipf.h"
#include "workload/dataset.h"

namespace latest::workload {

/// Mix of query types within one segment; fractions must sum to 1.
struct QueryMix {
  double spatial = 0.0;
  double keyword = 0.0;
  double hybrid = 0.0;
};

/// One contiguous stretch of the workload with a fixed mix.
struct WorkloadSegment {
  QueryMix mix;
  /// Fraction of the workload's total queries in this segment; segment
  /// fractions must sum to 1.
  double fraction = 1.0;
};

/// Full description of a query workload.
struct WorkloadSpec {
  std::string name;
  std::vector<WorkloadSegment> segments;

  /// Query rectangle side, as a fraction of the domain side, drawn
  /// uniformly from [min_side_fraction, max_side_fraction].
  double min_side_fraction = 0.01;
  double max_side_fraction = 0.06;

  /// Side multiplier applied to *pure spatial* queries only. Location-only
  /// searches (POI lookups) are tighter than topic searches, which makes
  /// spatial-dominated phases low-selectivity — the regime where sampling
  /// estimators lose accuracy and the histogram stays strong.
  double spatial_side_scale = 1.0;

  /// Keywords per keyword-bearing query, uniform in [min, max].
  uint32_t min_query_keywords = 1;
  uint32_t max_query_keywords = 3;

  /// Probability that a query center is drawn near a data hotspot rather
  /// than uniformly (Bing search locations correlate with population).
  double hotspot_center_probability = 0.85;

  uint32_t num_queries = 100000;
  uint64_t seed = 17;

  util::Status Validate() const;
};

/// The named workloads reproduced from the paper.
enum class WorkloadId {
  kTwQW1,   // 1/3 each, phase-rotating (several switches; Fig. 3).
  kTwQW2,   // 100% pure spatial.
  kTwQW3,   // 50% spatial, 50% hybrid (Table II, Figs. 6-7).
  kTwQW4,   // 100% single-keyword (Fig. 10, Table I).
  kTwQW5,   // 100% multi-keyword (Fig. 11).
  kTwQW6,   // 1/3 each, different phase order (two switches; Fig. 4).
  kEbRQW1,  // 100% spatial, eBird real-request style (Figs. 5, 8).
  kCiQW1,   // 100% single-keyword, CheckIn (Fig. 12).
};

/// Name of a workload id ("TwQW1", ...).
const char* WorkloadIdName(WorkloadId id);

/// Builds the spec for a named workload with the given query volume.
WorkloadSpec MakeWorkloadSpec(WorkloadId id, uint32_t num_queries,
                              uint64_t seed = 17);

/// Streams the queries of a workload (timestamps are assigned by the
/// stream driver, not here).
class QueryGenerator {
 public:
  /// dataset: the stream the queries will be posted against (provides
  /// bounds, hotspots, and the keyword distribution).
  QueryGenerator(const WorkloadSpec& spec, const DatasetSpec& dataset);

  bool HasNext() const { return produced_ < spec_.num_queries; }

  /// Produces the next query (timestamp 0; the driver stamps it).
  stream::Query Next();

  const WorkloadSpec& spec() const { return spec_; }
  uint32_t produced() const { return produced_; }

 private:
  const WorkloadSegment& CurrentSegment() const;
  geo::Point SampleCenter();
  geo::Rect SampleRange(double side_scale);
  std::vector<stream::KeywordId> SampleKeywords();

  WorkloadSpec spec_;
  DatasetSpec dataset_;
  util::Rng rng_;
  util::ZipfSampler keyword_sampler_;
  std::vector<double> hotspot_cdf_;
  std::vector<uint32_t> segment_start_;  // Query index where segment i starts.
  uint32_t produced_ = 0;
};

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_QUERY_WORKLOAD_H_
