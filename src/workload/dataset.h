// Synthetic geo-textual stream generators calibrated to the paper's three
// evaluation datasets.
//
// The paper streams 75M geotagged tweets, 41M eBird records, and 973K
// Foursquare check-ins — none of which are redistributable. These
// generators reproduce the properties that drive estimator behaviour:
// heavily skewed spatial density (Gaussian-mixture hotspots over a
// realistic bounding box plus uniform background), Zipf-distributed
// keyword frequencies, and a steady object arrival rate over the stream
// duration. Scales are configurable so experiments run anywhere from
// laptop-sized to paper-sized.

#ifndef LATEST_WORKLOAD_DATASET_H_
#define LATEST_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "stream/object.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/zipf.h"

namespace latest::workload {

/// One Gaussian spatial density hotspot.
struct Hotspot {
  geo::Point center;
  double stddev = 1.0;  // Isotropic, in coordinate degrees.
  double weight = 1.0;  // Relative mass among hotspots.
};

/// Full description of a synthetic dataset stream.
struct DatasetSpec {
  std::string name;
  geo::Rect bounds;
  std::vector<Hotspot> hotspots;
  /// Fraction of objects drawn uniformly over the bounds (background).
  double uniform_fraction = 0.1;
  /// Distinct keywords; ids are Zipf ranks (0 = most frequent).
  uint32_t vocabulary_size = 10000;
  double zipf_skew = 1.0;
  uint32_t min_keywords_per_object = 1;
  uint32_t max_keywords_per_object = 3;
  uint64_t num_objects = 100000;
  /// Stream duration in event-time milliseconds.
  stream::Timestamp duration_ms = 10LL * 60 * 60 * 1000;
  uint64_t seed = 7;

  util::Status Validate() const;
};

/// Twitter-like stream: US bounding box, strong urban hotspots, large
/// hashtag vocabulary. `scale` multiplies the default object count.
DatasetSpec TwitterLikeSpec(double scale = 1.0, uint64_t seed = 7);

/// eBird-like stream: Americas-wide extent, broader diffuse clusters,
/// small species-code vocabulary with milder skew.
DatasetSpec EbirdLikeSpec(double scale = 1.0, uint64_t seed = 11);

/// Foursquare-check-in-like stream: tightly clustered city venues, tag
/// vocabulary, smallest default volume (the paper's CheckIn dataset has
/// 973K records).
DatasetSpec CheckinLikeSpec(double scale = 1.0, uint64_t seed = 13);

/// Streams objects of a DatasetSpec in timestamp order.
class DatasetGenerator {
 public:
  explicit DatasetGenerator(const DatasetSpec& spec);

  /// True while objects remain.
  bool HasNext() const { return produced_ < spec_.num_objects; }

  /// Produces the next object; timestamps are evenly spaced with jitter
  /// across the spec duration, strictly non-decreasing.
  stream::GeoTextObject Next();

  const DatasetSpec& spec() const { return spec_; }
  uint64_t produced() const { return produced_; }

 private:
  geo::Point SampleLocation();

  DatasetSpec spec_;
  util::Rng rng_;
  util::ZipfSampler keyword_sampler_;
  std::vector<double> hotspot_cdf_;
  uint64_t produced_ = 0;
};

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_DATASET_H_
