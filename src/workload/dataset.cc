#include "workload/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::workload {

util::Status DatasetSpec::Validate() const {
  if (!bounds.IsValid()) {
    return util::Status::InvalidArgument("bounds must have positive area");
  }
  if (hotspots.empty() && uniform_fraction <= 0.0) {
    return util::Status::InvalidArgument(
        "need hotspots or a positive uniform_fraction");
  }
  if (uniform_fraction < 0.0 || uniform_fraction > 1.0) {
    return util::Status::InvalidArgument(
        "uniform_fraction must be in [0, 1]");
  }
  if (vocabulary_size == 0) {
    return util::Status::InvalidArgument("vocabulary_size must be > 0");
  }
  if (min_keywords_per_object > max_keywords_per_object) {
    return util::Status::InvalidArgument(
        "min_keywords_per_object > max_keywords_per_object");
  }
  if (num_objects == 0) {
    return util::Status::InvalidArgument("num_objects must be > 0");
  }
  if (duration_ms <= 0) {
    return util::Status::InvalidArgument("duration_ms must be > 0");
  }
  return util::Status::Ok();
}

DatasetSpec TwitterLikeSpec(double scale, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "twitter-like";
  spec.bounds = geo::Rect{-125.0, 24.0, -66.0, 50.0};  // Contiguous US.
  // Major metro hotspots (approximate lon/lat), weights ~ population.
  spec.hotspots = {
      {{-74.0, 40.7}, 0.8, 8.4},    // New York
      {{-118.2, 34.1}, 0.9, 4.0},   // Los Angeles
      {{-87.6, 41.9}, 0.7, 2.7},    // Chicago
      {{-95.4, 29.8}, 0.8, 2.3},    // Houston
      {{-112.1, 33.4}, 0.7, 1.7},   // Phoenix
      {{-75.2, 39.9}, 0.5, 1.6},    // Philadelphia
      {{-122.4, 37.8}, 0.5, 0.9},   // San Francisco
      {{-122.3, 47.6}, 0.5, 0.8},   // Seattle
      {{-80.2, 25.8}, 0.6, 0.5},    // Miami
      {{-84.4, 33.7}, 0.6, 0.5},    // Atlanta
      {{-104.9, 39.7}, 0.6, 0.7},   // Denver
      {{-90.1, 29.9}, 0.4, 0.4},    // New Orleans
  };
  spec.uniform_fraction = 0.15;
  spec.vocabulary_size = 20000;  // Hashtag-like vocabulary.
  spec.zipf_skew = 1.0;
  spec.min_keywords_per_object = 1;
  spec.max_keywords_per_object = 3;
  spec.num_objects = static_cast<uint64_t>(150000 * scale);
  spec.duration_ms = 10LL * 60 * 60 * 1000;  // 10 hours, as in the paper.
  spec.seed = seed;
  return spec;
}

DatasetSpec EbirdLikeSpec(double scale, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "ebird-like";
  spec.bounds = geo::Rect{-170.0, -56.0, -30.0, 72.0};  // The Americas.
  spec.hotspots = {
      {{-76.5, 42.4}, 4.0, 3.0},    // Northeastern US (Cornell country).
      {{-122.0, 37.0}, 3.5, 2.0},   // Pacific coast.
      {{-80.0, 26.0}, 3.0, 1.5},    // Florida.
      {{-99.0, 19.4}, 3.0, 1.0},    // Central Mexico.
      {{-58.4, -34.6}, 4.0, 0.8},   // Rio de la Plata.
      {{-123.1, 49.3}, 3.0, 0.9},   // British Columbia.
      {{-87.0, 41.0}, 3.5, 1.5},    // Great Lakes.
  };
  spec.uniform_fraction = 0.25;
  spec.vocabulary_size = 1200;  // Species codes / protocol types.
  spec.zipf_skew = 0.8;
  spec.min_keywords_per_object = 1;
  spec.max_keywords_per_object = 4;
  spec.num_objects = static_cast<uint64_t>(120000 * scale);
  spec.duration_ms = 6LL * 60 * 60 * 1000;  // 6 hours, as in the paper.
  spec.seed = seed;
  return spec;
}

DatasetSpec CheckinLikeSpec(double scale, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "checkin-like";
  spec.bounds = geo::Rect{-125.0, 24.0, -66.0, 50.0};
  // Check-ins concentrate even harder in city cores.
  spec.hotspots = {
      {{-74.0, 40.7}, 0.25, 10.0},  // New York
      {{-118.2, 34.1}, 0.3, 5.0},   // Los Angeles
      {{-87.6, 41.9}, 0.25, 3.0},   // Chicago
      {{-122.4, 37.8}, 0.2, 2.5},   // San Francisco
      {{-97.7, 30.3}, 0.2, 1.5},    // Austin
      {{-71.1, 42.4}, 0.2, 1.5},    // Boston
  };
  spec.uniform_fraction = 0.05;
  spec.vocabulary_size = 5000;  // Venue tags.
  spec.zipf_skew = 1.05;
  spec.min_keywords_per_object = 1;
  spec.max_keywords_per_object = 3;
  spec.num_objects = static_cast<uint64_t>(97000 * scale);
  spec.duration_ms = 4LL * 60 * 60 * 1000;
  spec.seed = seed;
  return spec;
}

DatasetGenerator::DatasetGenerator(const DatasetSpec& spec)
    : spec_(spec),
      rng_(spec.seed),
      keyword_sampler_(spec.vocabulary_size, spec.zipf_skew,
                       spec.seed ^ 0x5DEECE66DULL) {
  assert(spec.Validate().ok());
  double total = 0.0;
  hotspot_cdf_.reserve(spec_.hotspots.size());
  for (const Hotspot& h : spec_.hotspots) {
    total += h.weight;
    hotspot_cdf_.push_back(total);
  }
  for (auto& c : hotspot_cdf_) c /= total;
}

geo::Point DatasetGenerator::SampleLocation() {
  if (spec_.hotspots.empty() || rng_.NextBool(spec_.uniform_fraction)) {
    return geo::Point{
        rng_.NextDouble(spec_.bounds.min_x, spec_.bounds.max_x),
        rng_.NextDouble(spec_.bounds.min_y, spec_.bounds.max_y)};
  }
  const double u = rng_.NextDouble();
  const auto it =
      std::lower_bound(hotspot_cdf_.begin(), hotspot_cdf_.end(), u);
  const size_t idx = static_cast<size_t>(it - hotspot_cdf_.begin());
  const Hotspot& h =
      spec_.hotspots[std::min(idx, spec_.hotspots.size() - 1)];
  geo::Point p{rng_.NextGaussian(h.center.x, h.stddev),
               rng_.NextGaussian(h.center.y, h.stddev)};
  return spec_.bounds.Clamp(p);
}

stream::GeoTextObject DatasetGenerator::Next() {
  assert(HasNext());
  stream::GeoTextObject obj;
  obj.oid = produced_;
  obj.loc = SampleLocation();
  const uint32_t num_keywords =
      spec_.min_keywords_per_object +
      static_cast<uint32_t>(rng_.NextBounded(
          spec_.max_keywords_per_object - spec_.min_keywords_per_object + 1));
  obj.keywords.reserve(num_keywords);
  for (uint32_t i = 0; i < num_keywords; ++i) {
    obj.keywords.push_back(
        static_cast<stream::KeywordId>(keyword_sampler_.Next()));
  }
  stream::CanonicalizeKeywords(&obj.keywords);
  // Evenly spaced arrivals; the slice clock only needs non-decreasing
  // times.
  obj.timestamp = static_cast<stream::Timestamp>(
      static_cast<double>(spec_.duration_ms) *
      static_cast<double>(produced_) /
      static_cast<double>(spec_.num_objects));
  ++produced_;
  return obj;
}

}  // namespace latest::workload
