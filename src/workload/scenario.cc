#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace latest::workload {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Linear activation of a mutation window: 0 before `begin`, 1 at/after
/// `end`, linear in between. begin == end is an abrupt step.
double Ramp(double f, double begin, double end) {
  if (f < begin) return 0.0;
  if (f >= end) return 1.0;
  return (f - begin) / (end - begin);
}

/// Monotone event-time warp: object fraction -> warped time fraction.
///
/// Burst first (its window is specified in object fractions: that
/// stretch of the stream is compressed into 1/factor of its event
/// time), then the diurnal wave
///   t(f) = f - a/(2 pi p) * (1 - cos(2 pi p f)),
/// whose derivative 1 - a sin(2 pi p f) stays positive for a < 1 and
/// which is exact (t(1) = 1) at integer period counts.
double WarpFraction(const ScenarioSpec& spec, double f) {
  double t = f;
  if (spec.burst_length > 0.0 && spec.burst_factor > 1.0) {
    const double b = spec.burst_begin;
    const double len = spec.burst_length;
    const double rate = 1.0 / spec.burst_factor;
    const double total = (1.0 - len) + len * rate;
    double acc;
    if (t <= b) {
      acc = t;
    } else if (t < b + len) {
      acc = b + (t - b) * rate;
    } else {
      acc = b + len * rate + (t - b - len);
    }
    t = acc / total;
  }
  if (spec.load_wave_amplitude > 0.0) {
    const double periods =
        static_cast<double>(std::max<uint32_t>(1, spec.load_wave_periods));
    const double omega = 2.0 * kPi * periods;
    t = t - spec.load_wave_amplitude / omega * (1.0 - std::cos(omega * t));
  }
  return std::clamp(t, 0.0, 1.0);
}

int64_t TimestampAt(const ScenarioSpec& spec, double f) {
  return static_cast<int64_t>(static_cast<double>(spec.duration_ms) *
                              WarpFraction(spec, f));
}

/// Derives the per-stream generator seed (SplitMix64 of the scenario
/// seed and a stream tag) so object and query draws are independent.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream_tag) {
  uint64_t state = seed + 0x9E3779B97F4A7C15ULL * (stream_tag + 1);
  return util::SplitMix64(&state);
}

util::Status CheckFraction(const char* what, double value) {
  if (value >= 0.0 && value <= 1.0) return util::Status::Ok();
  return util::Status::InvalidArgument(std::string(what) +
                                       " must lie in [0, 1]");
}

bool MixesDiffer(const ScenarioQueryMix& a, const ScenarioQueryMix& b) {
  return a.keyword != b.keyword || a.spatial != b.spatial;
}

}  // namespace

util::Status ScenarioQueryMix::Validate() const {
  if (keyword < 0.0 || spatial < 0.0 || keyword + spatial > 1.0) {
    return util::Status::InvalidArgument(
        "query mix proportions must be non-negative and sum to <= 1");
  }
  return util::Status::Ok();
}

util::Status ScenarioSpec::Validate() const {
  if (objects == 0) return util::Status::InvalidArgument("objects must be > 0");
  if (duration_ms <= 0) {
    return util::Status::InvalidArgument("duration_ms must be > 0");
  }
  if (query_pace_ms == 0 && query_every_objects == 0) {
    return util::Status::InvalidArgument(
        "query_every_objects must be > 0 without query pacing");
  }
  if (!bounds.IsValid()) {
    return util::Status::InvalidArgument("bounds must have positive area");
  }
  LATEST_RETURN_IF_ERROR(CheckFraction("cluster_fraction", cluster_fraction));
  for (const geo::Rect* cluster : {&cluster_before, &cluster_after}) {
    if (!cluster->IsValid() || !bounds.ContainsRect(*cluster)) {
      return util::Status::InvalidArgument(
          "cluster rectangles must be valid and inside bounds");
    }
  }
  LATEST_RETURN_IF_ERROR(
      CheckFraction("spatial_shift_begin", spatial_shift_begin));
  LATEST_RETURN_IF_ERROR(CheckFraction("spatial_shift_end", spatial_shift_end));
  if (spatial_shift_begin > spatial_shift_end) {
    return util::Status::InvalidArgument(
        "spatial_shift_begin must be <= spatial_shift_end");
  }
  if (vocab_band == 0) {
    return util::Status::InvalidArgument("vocab_band must be > 0");
  }
  LATEST_RETURN_IF_ERROR(CheckFraction("vocab_shift_begin", vocab_shift_begin));
  LATEST_RETURN_IF_ERROR(CheckFraction("vocab_shift_end", vocab_shift_end));
  if (vocab_shift_begin > vocab_shift_end) {
    return util::Status::InvalidArgument(
        "vocab_shift_begin must be <= vocab_shift_end");
  }
  if (load_wave_amplitude < 0.0 || load_wave_amplitude >= 1.0) {
    return util::Status::InvalidArgument(
        "load_wave_amplitude must lie in [0, 1) to keep time monotone");
  }
  LATEST_RETURN_IF_ERROR(CheckFraction("burst_begin", burst_begin));
  LATEST_RETURN_IF_ERROR(CheckFraction("burst_length", burst_length));
  if (burst_begin + burst_length > 1.0) {
    return util::Status::InvalidArgument(
        "burst window must end within the stream");
  }
  if (burst_factor < 1.0) {
    return util::Status::InvalidArgument("burst_factor must be >= 1");
  }
  LATEST_RETURN_IF_ERROR(query_mix_before.Validate());
  LATEST_RETURN_IF_ERROR(query_mix_after.Validate());
  if (query_flip_at < 0.0) {
    return util::Status::InvalidArgument("query_flip_at must be >= 0");
  }
  if (min_query_keywords == 0 || min_query_keywords > max_query_keywords) {
    return util::Status::InvalidArgument(
        "query keyword bounds must satisfy 1 <= min <= max");
  }
  return util::Status::Ok();
}

std::vector<DriftInjection> InjectionsOf(const ScenarioSpec& spec) {
  std::vector<DriftInjection> out;
  const auto add = [&](const char* kind, double begin, double end) {
    DriftInjection injection;
    injection.kind = kind;
    injection.begin_fraction = begin;
    injection.end_fraction = end;
    injection.onset_ms = TimestampAt(spec, begin);
    injection.settled_ms = TimestampAt(spec, end);
    injection.onset_object =
        static_cast<uint64_t>(begin * static_cast<double>(spec.objects));
    out.push_back(std::move(injection));
  };
  if (!(spec.cluster_before == spec.cluster_after) &&
      spec.spatial_shift_begin < 1.0) {
    add("spatial", spec.spatial_shift_begin, spec.spatial_shift_end);
  }
  if (spec.vocab_base_before != spec.vocab_base_after &&
      spec.vocab_shift_begin < 1.0) {
    add("vocab", spec.vocab_shift_begin, spec.vocab_shift_end);
  }
  if (spec.query_flip_at < 1.0 &&
      MixesDiffer(spec.query_mix_before, spec.query_mix_after)) {
    add("query_mix", spec.query_flip_at, spec.query_flip_at);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const DriftInjection& a, const DriftInjection& b) {
                     return a.onset_ms < b.onset_ms;
                   });
  return out;
}

ScenarioStream::ScenarioStream(const ScenarioSpec& spec)
    : spec_(spec),
      object_rng_(DeriveSeed(spec.seed, 13)),
      query_rng_(DeriveSeed(spec.seed, 99)),
      next_query_due_ms_(spec.query_warmup_ms) {}

bool ScenarioStream::HasNext() const {
  return query_pending_ || objects_produced_ < spec_.objects;
}

int64_t ScenarioStream::TimestampOfObject(uint64_t index) const {
  const double f =
      static_cast<double>(index) / static_cast<double>(spec_.objects);
  return TimestampAt(spec_, f);
}

geo::Rect ScenarioStream::ClusterAt(double fraction) const {
  const double ramp =
      Ramp(fraction, spec_.spatial_shift_begin, spec_.spatial_shift_end);
  if (ramp <= 0.0) return spec_.cluster_before;
  if (ramp >= 1.0) return spec_.cluster_after;
  const auto lerp = [ramp](double a, double b) { return a + ramp * (b - a); };
  return geo::Rect{lerp(spec_.cluster_before.min_x, spec_.cluster_after.min_x),
                   lerp(spec_.cluster_before.min_y, spec_.cluster_after.min_y),
                   lerp(spec_.cluster_before.max_x, spec_.cluster_after.max_x),
                   lerp(spec_.cluster_before.max_y, spec_.cluster_after.max_y)};
}

stream::KeywordId ScenarioStream::KeywordBase(double fraction,
                                              util::Rng* rng) {
  const double ramp =
      Ramp(fraction, spec_.vocab_shift_begin, spec_.vocab_shift_end);
  // Only consume a draw mid-ramp so stationary-vocabulary scenarios do
  // not perturb the generator sequence.
  if (ramp <= 0.0) return spec_.vocab_base_before;
  if (ramp >= 1.0) return spec_.vocab_base_after;
  return rng->NextBool(ramp) ? spec_.vocab_base_after
                             : spec_.vocab_base_before;
}

stream::GeoTextObject ScenarioStream::MakeObject(uint64_t index) {
  const double f =
      static_cast<double>(index) / static_cast<double>(spec_.objects);
  stream::GeoTextObject obj;
  obj.oid = index;
  if (object_rng_.NextBool(spec_.cluster_fraction)) {
    const geo::Rect cluster = ClusterAt(f);
    obj.loc = {object_rng_.NextDouble(cluster.min_x, cluster.max_x),
               object_rng_.NextDouble(cluster.min_y, cluster.max_y)};
  } else {
    obj.loc = {object_rng_.NextDouble(spec_.bounds.min_x, spec_.bounds.max_x),
               object_rng_.NextDouble(spec_.bounds.min_y, spec_.bounds.max_y)};
  }
  const int num_kw = 1 + static_cast<int>(object_rng_.NextBounded(3));
  for (int k = 0; k < num_kw; ++k) {
    // u^2 skew: low ids inside the active band dominate, giving the
    // keyword distribution a head the selectivity estimators can learn.
    const double u = object_rng_.NextDouble();
    obj.keywords.push_back(
        KeywordBase(f, &object_rng_) +
        static_cast<stream::KeywordId>(u * u *
                                       static_cast<double>(spec_.vocab_band)));
  }
  stream::CanonicalizeKeywords(&obj.keywords);
  obj.timestamp = TimestampOfObject(index);
  return obj;
}

stream::Query ScenarioStream::MakeQuery(double fraction, int64_t timestamp) {
  stream::Query q;
  q.timestamp = timestamp;
  const ScenarioQueryMix& mix = fraction < spec_.query_flip_at
                                    ? spec_.query_mix_before
                                    : spec_.query_mix_after;
  const double u = query_rng_.NextDouble();
  const bool keyword_only = u < mix.keyword;
  const bool spatial_only = !keyword_only && u < mix.keyword + mix.spatial;
  if (!keyword_only) {
    // Ranges scale with the bounds: centers keep a 10% margin, extents
    // span 5-30% of each side (the stock 100x100 smoke shape).
    const double margin_x = spec_.bounds.Width() * 0.1;
    const double margin_y = spec_.bounds.Height() * 0.1;
    const geo::Point center{
        query_rng_.NextDouble(spec_.bounds.min_x + margin_x,
                              spec_.bounds.max_x - margin_x),
        query_rng_.NextDouble(spec_.bounds.min_y + margin_y,
                              spec_.bounds.max_y - margin_y)};
    q.range = geo::Rect::FromCenter(
        center, query_rng_.NextDouble(0.05, 0.30) * spec_.bounds.Width(),
        query_rng_.NextDouble(0.05, 0.30) * spec_.bounds.Height());
  }
  if (!spatial_only) {
    const uint32_t span = spec_.max_query_keywords - spec_.min_query_keywords;
    const uint32_t count =
        spec_.min_query_keywords +
        (span == 0 ? 0
                   : static_cast<uint32_t>(query_rng_.NextBounded(span + 1)));
    for (uint32_t k = 0; k < count; ++k) {
      q.keywords.push_back(
          KeywordBase(fraction, &query_rng_) +
          static_cast<stream::KeywordId>(
              query_rng_.NextBounded(spec_.vocab_band)));
    }
    stream::CanonicalizeKeywords(&q.keywords);
  }
  return q;
}

ScenarioEvent ScenarioStream::Next() {
  ScenarioEvent event;
  if (query_pending_) {
    query_pending_ = false;
    event.is_query = true;
    event.query = MakeQuery(pending_fraction_, pending_timestamp_);
    ++queries_produced_;
    return event;
  }
  const uint64_t index = objects_produced_;
  event.object = MakeObject(index);
  ++objects_produced_;
  const int64_t ts = event.object.timestamp;
  bool due = false;
  if (spec_.query_pace_ms > 0) {
    // Event-time pacing: at most one query per object, catching up one
    // pace boundary at a time — the query rate stays steady through
    // ingest bursts instead of spiking with the object rate.
    if (ts >= next_query_due_ms_) {
      due = true;
      next_query_due_ms_ += spec_.query_pace_ms;
    }
  } else {
    due = ts >= spec_.query_warmup_ms &&
          index % spec_.query_every_objects == 0;
  }
  if (due) {
    query_pending_ = true;
    pending_fraction_ =
        static_cast<double>(index) / static_cast<double>(spec_.objects);
    pending_timestamp_ = ts;
  }
  return event;
}

std::vector<std::string> ScenarioNames() {
  return {"baseline",    "flip",   "flash_crowd", "centroid_drift",
          "vocab_churn", "diurnal", "burst",      "query_flip",
          "deep_sampling"};
}

util::Result<ScenarioCatalogEntry> MakeScenario(std::string_view name,
                                                uint64_t objects,
                                                int64_t duration_ms,
                                                uint64_t seed) {
  ScenarioCatalogEntry entry;
  ScenarioSpec& spec = entry.spec;
  ScenarioGate& gate = entry.gate;
  spec.name = std::string(name);
  spec.objects = objects;
  spec.duration_ms = duration_ms;
  spec.seed = seed;

  // Gate floors shared by every scenario; per-scenario blocks tighten or
  // relax them. The numbers are pinned against the deterministic
  // alpha = 0 runs of the replay harness (see tests/scenario_test.cc).
  gate.min_tau_hit_rate = 0.50;
  gate.min_mean_accuracy = 0.70;

  const geo::Rect kClusterAway{60, 60, 80, 80};

  if (name == "baseline") {
    spec.description =
        "stationary control: no injected drift; gates pin steady-state "
        "accuracy and tau hit rate";
    gate.min_tau_hit_rate = 0.60;
    gate.min_mean_accuracy = 0.72;
    gate.max_cumulative_regret = 0.5;
  } else if (name == "flip") {
    spec.description =
        "abrupt combined drift at mid-stream: the dense cluster jumps to "
        "the opposite corner and a disjoint keyword vocabulary takes over "
        "(the --flip-workload-at shape)";
    spec.cluster_after = kClusterAway;
    spec.spatial_shift_begin = spec.spatial_shift_end = 0.5;
    spec.vocab_base_after = 50;
    spec.vocab_shift_begin = spec.vocab_shift_end = 0.5;
    gate.expects_detection = true;
    gate.max_detection_delay_queries = 120;
    gate.max_recover_slices = 20;
    gate.max_cumulative_regret = 0.5;
  } else if (name == "flash_crowd") {
    spec.description =
        "sudden spatial hotspot migration: the dense cluster jumps "
        "mid-stream while the vocabulary stays put";
    spec.cluster_after = kClusterAway;
    spec.spatial_shift_begin = spec.spatial_shift_end = 0.5;
    gate.expects_detection = true;
    gate.max_detection_delay_queries = 120;
    gate.max_recover_slices = 20;
    gate.max_cumulative_regret = 0.5;
  } else if (name == "centroid_drift") {
    spec.description =
        "gradual spatial drift: the dense cluster glides to the opposite "
        "corner over the middle 40% of the stream";
    spec.cluster_after = kClusterAway;
    spec.spatial_shift_begin = 0.35;
    spec.spatial_shift_end = 0.75;
    gate.expects_detection = true;
    gate.max_detection_delay_queries = 500;
    gate.max_recover_slices = 20;
    gate.max_cumulative_regret = 0.5;
  } else if (name == "vocab_churn") {
    spec.description =
        "keyword-vocabulary churn: a new term band injects while the old "
        "band decays over the middle tenth of the stream";
    spec.vocab_base_after = 50;
    spec.vocab_shift_begin = 0.45;
    spec.vocab_shift_end = 0.55;
    gate.expects_detection = true;
    gate.max_detection_delay_queries = 200;
    gate.max_recover_slices = 20;
    gate.max_cumulative_regret = 0.5;
  } else if (name == "diurnal") {
    spec.description =
        "diurnal load waves: arrival rate swings by +/-90% over two "
        "periods with no distribution change; gates pin stability";
    spec.load_wave_amplitude = 0.9;
    spec.load_wave_periods = 2;
    gate.max_cumulative_regret = 2.0;
  } else if (name == "burst") {
    spec.description =
        "burst ingest with paced queries: a fifth of the stream arrives "
        "at 8x rate while queries stay paced in event time";
    spec.burst_begin = 0.45;
    spec.burst_length = 0.2;
    spec.burst_factor = 8.0;
    // Pace queries at the stationary cadence (one per query_every
    // objects at the base rate) so the burst changes only ingest.
    spec.query_pace_ms = std::max<int64_t>(
        1, duration_ms * spec.query_every_objects /
               static_cast<int64_t>(std::max<uint64_t>(1, objects)));
    gate.max_cumulative_regret = 3.0;
  } else if (name == "query_flip") {
    spec.description =
        "query-distribution flip: the mix flips from keyword-heavy "
        "(70/15/15) to spatial-heavy (5/80/15) at mid-stream";
    spec.query_mix_after = {0.05, 0.80};
    spec.query_flip_at = 0.5;
    gate.max_cumulative_regret = 4.0;
  } else if (name == "deep_sampling") {
    spec.description =
        "DeepSampling-style validation: scoreboard-predicted accuracy and "
        "response time are scored against realized measurements across a "
        "query-mix flip";
    spec.query_mix_after = {0.05, 0.80};
    spec.query_flip_at = 0.5;
    spec.validate_predictions = true;
    gate.max_cumulative_regret = 4.0;
    gate.max_accuracy_prediction_mae = 0.25;
  } else {
    return util::Status::InvalidArgument("unknown scenario: " +
                                         std::string(name));
  }

  const util::Status status = spec.Validate();
  if (!status.ok()) return status;
  return entry;
}

}  // namespace latest::workload
