// Drift-aware scenario replay harness.
//
// RunScenario drives a full LATEST lifecycle (warm-up, pre-training,
// incremental) over a ScenarioStream with the deterministic alpha = 0
// smoke configuration and measures how the module weathered the
// scenario's injected drifts:
//
//   * accuracy trajectory — per-window-slice mean active-estimator
//     accuracy over the incremental phase;
//   * detection delay — answered queries between each injection's onset
//     and the first matching drift detection (ingest centroid series for
//     spatial injections, vocabulary-churn series for vocab injections);
//   * time-to-recover — window slices between an injection settling and
//     the slice-mean accuracy being back at/above tau;
//   * switch count, audit-trail counterfactual regret, tau hit rate;
//   * (validate_predictions mode) mean absolute error of the
//     scoreboard's predicted accuracy/latency against the realized
//     shadow measurements — the DeepSampling-style calibration check.
//
// The outcome carries the scenario's acceptance-gate verdict and a
// deterministic state digest CRC; ToResultJson renders the RESULT_JSON
// line consumed by tools/latest_scenario_run, the CI scenario matrix,
// and scripts/bench_regress.py.

#ifndef LATEST_WORKLOAD_SCENARIO_RUNNER_H_
#define LATEST_WORKLOAD_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/latest_module.h"
#include "util/status.h"
#include "workload/scenario.h"

namespace latest::workload {

struct ScenarioRunOptions {
  /// Estimation-pool worker threads (0 = inline). The lifecycle is
  /// deterministic in this knob at alpha = 0.
  uint32_t threads = 0;
  /// When non-empty, arms the flight recorder and dumps a "scenario"
  /// postmortem bundle at the end of the run.
  std::string postmortem_dir;
};

/// Per-injection verdict of one replay.
struct InjectionOutcome {
  DriftInjection injection;
  /// True when a matching drift detection fired at/after the onset.
  bool detected = false;
  /// Answered queries between the onset and the first matching
  /// detection (valid when `detected`).
  uint64_t detection_delay_queries = 0;
  /// True when some slice at/after the injection settled had its mean
  /// active accuracy at/above tau.
  bool recovered = false;
  /// Slices from settling until that first healthy slice (0 = accuracy
  /// never dipped below tau after the injection; valid when
  /// `recovered`).
  int64_t recover_slices = 0;
};

/// Everything one replay measured.
struct ScenarioOutcome {
  ScenarioSpec spec;
  ScenarioGate gate;
  uint32_t threads = 0;

  uint64_t objects = 0;
  uint64_t queries = 0;
  uint64_t incremental_queries = 0;
  /// Mean active-estimator accuracy over the incremental phase.
  double mean_accuracy = 0.0;
  /// Fraction of incremental queries with active accuracy >= tau.
  double tau_hit_rate = 0.0;
  double tau = 0.0;
  uint64_t switches = 0;
  /// Non-coalesced drift detections across all monitored series.
  uint64_t drift_detections = 0;
  uint64_t audit_entries = 0;
  uint64_t audit_resolved = 0;
  double cumulative_regret = 0.0;

  std::vector<InjectionOutcome> injections;

  /// Per-window-slice mean active accuracy over the incremental phase;
  /// slices without queries hold -1.
  std::vector<double> accuracy_trajectory;

  /// DeepSampling-style prediction validation (validate_predictions
  /// mode; 0 samples otherwise). The latency MAE is informational only
  /// — wall clock is not deterministic.
  uint64_t prediction_samples = 0;
  double accuracy_prediction_mae = 0.0;
  double latency_prediction_mae_ms = 0.0;

  /// CRC-32 of the module's deterministic lifecycle digest.
  uint32_t state_crc = 0;

  bool gates_passed = true;
  std::vector<std::string> gate_failures;

  /// Worst detection delay over detected injections (0 when none).
  uint64_t DetectionDelayMax() const;
  /// Worst recovery over recovered injections (0 when none).
  int64_t RecoverSlicesMax() const;
  /// True when every gated (spatial/vocab) injection was detected.
  bool AllDetected() const;
  /// True when every injection recovered.
  bool AllRecovered() const;
};

/// Replays one scenario end-to-end. Fails with InvalidArgument on a bad
/// spec and propagates module-creation errors.
util::Result<ScenarioOutcome> RunScenario(const ScenarioCatalogEntry& entry,
                                          const ScenarioRunOptions& options =
                                              ScenarioRunOptions());

/// The single-line RESULT_JSON payload (without the "RESULT_JSON "
/// prefix) for dashboards, CI gates, and bench_regress tolerance bands.
std::string ToResultJson(const ScenarioOutcome& outcome);

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_SCENARIO_RUNNER_H_
