#include "workload/stream_driver.h"

#include <cassert>

namespace latest::workload {

StreamDriver::StreamDriver(DatasetGenerator* dataset, QueryGenerator* queries,
                           stream::Timestamp query_start_ms,
                           stream::Timestamp query_end_ms)
    : dataset_(dataset),
      queries_(queries),
      query_start_ms_(query_start_ms),
      query_end_ms_(query_end_ms) {
  assert(dataset != nullptr && queries != nullptr);
  assert(query_end_ms >= query_start_ms);
}

void StreamDriver::AttachTelemetry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    objects_counter_ = nullptr;
    queries_counter_ = nullptr;
    event_time_gauge_ = nullptr;
    return;
  }
  objects_counter_ = registry->GetCounter(
      "latest_stream_objects_emitted_total",
      "Objects the stream driver has delivered to the module");
  queries_counter_ = registry->GetCounter(
      "latest_stream_queries_emitted_total",
      "Queries the stream driver has delivered to the module");
  event_time_gauge_ = registry->GetGauge(
      "latest_stream_event_time_ms", "Event time of the last emitted item");
}

stream::Timestamp StreamDriver::QueryTimestamp(uint32_t index) const {
  const uint32_t total = queries_->spec().num_queries;
  if (total <= 1) return query_start_ms_;
  return query_start_ms_ +
         static_cast<stream::Timestamp>(
             static_cast<double>(query_end_ms_ - query_start_ms_) *
             static_cast<double>(index) / static_cast<double>(total - 1));
}

stream::Timestamp StreamDriver::ObjectTimestamp(uint64_t index) const {
  const DatasetSpec& spec = dataset_->spec();
  return static_cast<stream::Timestamp>(
      static_cast<double>(spec.duration_ms) * static_cast<double>(index) /
      static_cast<double>(spec.num_objects));
}

}  // namespace latest::workload
