#include "workload/scenario_runner.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

#include "persist/crc32.h"
#include "util/serialization.h"

namespace latest::workload {
namespace {

using core::LatestConfig;
using core::LatestModule;
using core::Phase;
using core::QueryOutcome;

/// The deterministic smoke configuration shared with
/// tools/latest_stream_run: alpha = 0 keeps wall clock out of every
/// decision, shadow mode measures the whole portfolio per query, and
/// the short pre-train/hysteresis windows reach the incremental phase
/// within laptop-scale streams.
LatestConfig MakeConfig(const ScenarioSpec& spec,
                        const ScenarioRunOptions& options) {
  LatestConfig config;
  config.bounds = spec.bounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = spec.seed;
  config.num_threads = options.threads;
  // Detector sensitivity for the replay gates: the gradual scenarios
  // (centroid_drift, vocab_churn) raise Page-Hinkley's cumulative
  // statistic to ~0.4 before their ramps settle, which the stock 0.5
  // threshold misses. 0.35 catches them while staying ~100x above the
  // stationary ingest series' noise excursions (sigma^2 / (2 delta)).
  config.quality.drift.ph_lambda = 0.35;
  if (!options.postmortem_dir.empty()) {
    config.quality.postmortem_dir = options.postmortem_dir;
  }
  return config;
}

/// Which monitored series count as "detecting" an injection of a kind.
/// Spatial injections move the ingest centroid; vocabulary injections
/// move per-slice keyword churn; query-mix flips have no dedicated
/// ingest series, so any active-estimator error series counts.
bool SeriesMatchesInjection(const std::string& kind,
                            const std::string& series) {
  if (kind == "spatial") return series == "ingest_centroid";
  if (kind == "vocab") return series == "ingest_vocab_churn";
  return series.rfind("error_", 0) == 0;
}

/// Only injections with a dedicated ingest drift series participate in
/// the detection gate.
bool InjectionIsGated(const DriftInjection& injection) {
  return injection.kind == "spatial" || injection.kind == "vocab";
}

void AppendDouble(std::ostringstream* out, double value) {
  // Fixed precision keeps the JSON deterministic across runs and
  // readable; every gated metric is accuracy-derived, so 6 digits are
  // plenty.
  *out << std::fixed << std::setprecision(6) << value;
}

}  // namespace

uint64_t ScenarioOutcome::DetectionDelayMax() const {
  uint64_t max_delay = 0;
  for (const InjectionOutcome& injection : injections) {
    if (!injection.detected) continue;
    max_delay = std::max(max_delay, injection.detection_delay_queries);
  }
  return max_delay;
}

int64_t ScenarioOutcome::RecoverSlicesMax() const {
  int64_t max_slices = 0;
  for (const InjectionOutcome& injection : injections) {
    if (!injection.recovered) continue;
    max_slices = std::max(max_slices, injection.recover_slices);
  }
  return max_slices;
}

bool ScenarioOutcome::AllDetected() const {
  for (const InjectionOutcome& injection : injections) {
    if (InjectionIsGated(injection.injection) && !injection.detected) {
      return false;
    }
  }
  return true;
}

bool ScenarioOutcome::AllRecovered() const {
  for (const InjectionOutcome& injection : injections) {
    if (!injection.recovered) return false;
  }
  return true;
}

util::Result<ScenarioOutcome> RunScenario(const ScenarioCatalogEntry& entry,
                                          const ScenarioRunOptions& options) {
  const ScenarioSpec& spec = entry.spec;
  LATEST_RETURN_IF_ERROR(spec.Validate());

  const LatestConfig config = MakeConfig(spec, options);
  auto created = LatestModule::Create(config);
  if (!created.ok()) return created.status();
  std::unique_ptr<LatestModule> module = std::move(created).value();

  ScenarioOutcome outcome;
  outcome.spec = spec;
  outcome.gate = entry.gate;
  outcome.threads = options.threads;
  outcome.tau = config.tau;

  // Injection bookkeeping: lifetime queries answered when each onset
  // passes (for detection delay), plus the per-injection verdict.
  const std::vector<DriftInjection> injections = InjectionsOf(spec);
  std::vector<uint64_t> queries_at_onset(injections.size(), 0);
  std::vector<bool> onset_passed(injections.size(), false);
  outcome.injections.resize(injections.size());
  for (size_t i = 0; i < injections.size(); ++i) {
    outcome.injections[i].injection = injections[i];
  }

  // Accuracy trajectory: per-window-slice sums over incremental-phase
  // queries, slice index = event time / slice length.
  const int64_t slice_ms = static_cast<int64_t>(
      config.window.window_length_ms / config.window.num_slices);
  std::vector<double> slice_sum;
  std::vector<uint64_t> slice_count;
  const auto slice_of = [slice_ms](int64_t ts) {
    return static_cast<size_t>(ts / slice_ms);
  };

  double accuracy_sum = 0.0;
  uint64_t tau_hits = 0;
  double prediction_accuracy_error = 0.0;
  double prediction_latency_error = 0.0;

  ScenarioStream stream(spec);
  while (stream.HasNext()) {
    const ScenarioEvent event = stream.Next();
    const int64_t ts =
        event.is_query ? event.query.timestamp : event.object.timestamp;
    for (size_t i = 0; i < injections.size(); ++i) {
      if (!onset_passed[i] && ts >= injections[i].onset_ms) {
        onset_passed[i] = true;
        queries_at_onset[i] = module->queries_answered();
      }
    }
    if (!event.is_query) {
      module->OnObject(event.object);
      continue;
    }

    // DeepSampling-style calibration: snapshot the scoreboard's
    // expectation for every portfolio member before the query, score it
    // against the realized shadow measurement after. AccuracyOf returns
    // 0 for never-measured cells, which filters the cold start.
    std::array<double, estimators::kNumEstimatorKinds> predicted_accuracy{};
    std::array<double, estimators::kNumEstimatorKinds> predicted_latency{};
    const bool predict = spec.validate_predictions;
    if (predict) {
      const stream::QueryType type = event.query.Type();
      for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
        const auto kind = static_cast<estimators::EstimatorKind>(k);
        predicted_accuracy[k] = module->scoreboard().AccuracyOf(type, kind);
        predicted_latency[k] = module->scoreboard().LatencyOf(type, kind);
      }
    }

    const QueryOutcome result = module->OnQuery(event.query);
    ++outcome.queries;

    if (result.phase == Phase::kIncremental) {
      ++outcome.incremental_queries;
      accuracy_sum += result.accuracy;
      if (result.accuracy >= config.tau) ++tau_hits;
      const size_t slice = slice_of(ts);
      if (slice >= slice_sum.size()) {
        slice_sum.resize(slice + 1, 0.0);
        slice_count.resize(slice + 1, 0);
      }
      slice_sum[slice] += result.accuracy;
      ++slice_count[slice];

      if (predict) {
        for (const core::EstimatorMeasurement& m : result.measurements) {
          const auto k = static_cast<uint32_t>(m.kind);
          if (predicted_accuracy[k] <= 0.0) continue;
          ++outcome.prediction_samples;
          prediction_accuracy_error +=
              std::abs(predicted_accuracy[k] - m.accuracy);
          prediction_latency_error +=
              std::abs(predicted_latency[k] - m.latency_ms);
        }
      }
    }

    // Drain after every query so detections carry their firing order;
    // ingest-series detections fired during preceding OnObject calls
    // are drained here too (pending entries persist until drained).
    for (const obs::DriftDetection& detection :
         module->drift_monitor()->Drain()) {
      ++outcome.drift_detections;
      for (size_t i = 0; i < injections.size(); ++i) {
        InjectionOutcome& verdict = outcome.injections[i];
        if (verdict.detected || !onset_passed[i]) continue;
        if (detection.timestamp < injections[i].onset_ms) continue;
        if (!SeriesMatchesInjection(injections[i].kind, detection.series)) {
          continue;
        }
        verdict.detected = true;
        verdict.detection_delay_queries =
            detection.query_count > queries_at_onset[i]
                ? detection.query_count - queries_at_onset[i]
                : 0;
      }
    }
  }
  for (const obs::DriftDetection& detection :
       module->drift_monitor()->Drain()) {
    ++outcome.drift_detections;
    (void)detection;
  }

  outcome.objects = stream.objects_produced();
  if (outcome.incremental_queries > 0) {
    outcome.mean_accuracy =
        accuracy_sum / static_cast<double>(outcome.incremental_queries);
    outcome.tau_hit_rate = static_cast<double>(tau_hits) /
                           static_cast<double>(outcome.incremental_queries);
  }
  if (outcome.prediction_samples > 0) {
    outcome.accuracy_prediction_mae =
        prediction_accuracy_error /
        static_cast<double>(outcome.prediction_samples);
    outcome.latency_prediction_mae_ms =
        prediction_latency_error /
        static_cast<double>(outcome.prediction_samples);
  }
  outcome.switches = module->switch_log().size();

  outcome.accuracy_trajectory.assign(slice_sum.size(), -1.0);
  for (size_t s = 0; s < slice_sum.size(); ++s) {
    if (slice_count[s] > 0) {
      outcome.accuracy_trajectory[s] =
          slice_sum[s] / static_cast<double>(slice_count[s]);
    }
  }

  // Time-to-recover: first slice at/after the injection settling whose
  // mean active accuracy is back at/above tau.
  for (InjectionOutcome& verdict : outcome.injections) {
    const size_t settled_slice = slice_of(verdict.injection.settled_ms);
    for (size_t s = settled_slice; s < slice_sum.size(); ++s) {
      if (slice_count[s] == 0) continue;
      if (slice_sum[s] / static_cast<double>(slice_count[s]) >= config.tau) {
        verdict.recovered = true;
        verdict.recover_slices = static_cast<int64_t>(s - settled_slice);
        break;
      }
    }
  }

  const obs::SwitchAuditTrail::Summary audit =
      module->audit_trail()->GetSummary();
  outcome.audit_entries = audit.total_recorded;
  outcome.audit_resolved = audit.total_resolved;
  outcome.cumulative_regret = audit.cumulative_regret;

  util::BinaryWriter state;
  module->SaveDeterministicState(&state);
  outcome.state_crc = persist::Crc32(state.buffer());

  if (!options.postmortem_dir.empty()) {
    const auto written = module->DumpPostmortem("scenario");
    if (!written.ok()) return written.status();
  }

  // ---- Acceptance gates ----
  const ScenarioGate& gate = outcome.gate;
  const auto fail = [&outcome](std::string reason) {
    outcome.gates_passed = false;
    outcome.gate_failures.push_back(std::move(reason));
  };
  if (gate.expects_detection) {
    for (const InjectionOutcome& verdict : outcome.injections) {
      if (!InjectionIsGated(verdict.injection)) continue;
      if (!verdict.detected) {
        fail("missed detection: " + verdict.injection.kind +
             " injection raised no matching drift detection");
      } else if (verdict.detection_delay_queries >
                 gate.max_detection_delay_queries) {
        std::ostringstream reason;
        reason << "slow detection: " << verdict.injection.kind << " took "
               << verdict.detection_delay_queries << " queries (bound "
               << gate.max_detection_delay_queries << ")";
        fail(reason.str());
      }
    }
  }
  if (gate.max_recover_slices >= 0) {
    for (const InjectionOutcome& verdict : outcome.injections) {
      if (!verdict.recovered) {
        fail("no recovery: accuracy never returned to tau after the " +
             verdict.injection.kind + " injection");
      } else if (verdict.recover_slices > gate.max_recover_slices) {
        std::ostringstream reason;
        reason << "slow recovery: " << verdict.injection.kind << " took "
               << verdict.recover_slices << " slices (bound "
               << gate.max_recover_slices << ")";
        fail(reason.str());
      }
    }
  }
  if (outcome.tau_hit_rate < gate.min_tau_hit_rate) {
    std::ostringstream reason;
    reason << "tau_hit_rate " << std::fixed << std::setprecision(4)
           << outcome.tau_hit_rate << " < " << gate.min_tau_hit_rate;
    fail(reason.str());
  }
  if (outcome.mean_accuracy < gate.min_mean_accuracy) {
    std::ostringstream reason;
    reason << "mean_accuracy " << std::fixed << std::setprecision(4)
           << outcome.mean_accuracy << " < " << gate.min_mean_accuracy;
    fail(reason.str());
  }
  if (gate.max_cumulative_regret >= 0.0 &&
      outcome.cumulative_regret > gate.max_cumulative_regret) {
    std::ostringstream reason;
    reason << "cumulative_regret " << std::fixed << std::setprecision(4)
           << outcome.cumulative_regret << " > " << gate.max_cumulative_regret;
    fail(reason.str());
  }
  if (gate.max_accuracy_prediction_mae >= 0.0) {
    if (outcome.prediction_samples == 0) {
      fail("prediction gate armed but no prediction samples were scored");
    } else if (outcome.accuracy_prediction_mae >
               gate.max_accuracy_prediction_mae) {
      std::ostringstream reason;
      reason << "accuracy_prediction_mae " << std::fixed
             << std::setprecision(4) << outcome.accuracy_prediction_mae
             << " > " << gate.max_accuracy_prediction_mae;
      fail(reason.str());
    }
  }

  return outcome;
}

std::string ToResultJson(const ScenarioOutcome& outcome) {
  std::ostringstream out;
  out << "{\"experiment\":\"scenario_replay\",\"point\":\""
      << outcome.spec.name << "\",\"scenario\":\"" << outcome.spec.name
      << "\",\"objects\":" << outcome.objects
      << ",\"threads\":" << outcome.threads
      << ",\"queries\":" << outcome.queries
      << ",\"incremental_queries\":" << outcome.incremental_queries
      << ",\"mean_accuracy\":";
  AppendDouble(&out, outcome.mean_accuracy);
  out << ",\"tau_hit_rate\":";
  AppendDouble(&out, outcome.tau_hit_rate);
  out << ",\"switches\":" << outcome.switches
      << ",\"drift_detections\":" << outcome.drift_detections
      << ",\"audit_entries\":" << outcome.audit_entries
      << ",\"audit_resolved\":" << outcome.audit_resolved
      << ",\"cumulative_regret\":";
  AppendDouble(&out, outcome.cumulative_regret);
  out << ",\"injections\":" << outcome.injections.size()
      << ",\"detected\":" << (outcome.AllDetected() ? 1 : 0)
      << ",\"detection_delay_queries_max\":" << outcome.DetectionDelayMax()
      << ",\"recovered\":" << (outcome.AllRecovered() ? 1 : 0)
      << ",\"recover_slices_max\":" << outcome.RecoverSlicesMax()
      << ",\"prediction_samples\":" << outcome.prediction_samples
      << ",\"accuracy_prediction_mae\":";
  AppendDouble(&out, outcome.accuracy_prediction_mae);
  out << ",\"latency_prediction_mae_ms\":";
  AppendDouble(&out, outcome.latency_prediction_mae_ms);
  out << ",\"accuracy_trajectory\":[";
  for (size_t s = 0; s < outcome.accuracy_trajectory.size(); ++s) {
    if (s != 0) out << ",";
    out << std::fixed << std::setprecision(4)
        << outcome.accuracy_trajectory[s];
  }
  out << "],\"state_crc\":\"" << std::hex << std::setw(8)
      << std::setfill('0') << outcome.state_crc << std::dec
      << "\",\"gates_passed\":" << (outcome.gates_passed ? 1 : 0)
      << ",\"gate_failures\":[";
  for (size_t i = 0; i < outcome.gate_failures.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << outcome.gate_failures[i] << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace latest::workload
