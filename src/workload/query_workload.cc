#include "workload/query_workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::workload {

namespace {

constexpr double kMixTolerance = 1e-6;

}  // namespace

util::Status WorkloadSpec::Validate() const {
  if (segments.empty()) {
    return util::Status::InvalidArgument("workload needs >= 1 segment");
  }
  double fraction_total = 0.0;
  for (const WorkloadSegment& seg : segments) {
    const double mix_total = seg.mix.spatial + seg.mix.keyword + seg.mix.hybrid;
    if (std::abs(mix_total - 1.0) > kMixTolerance) {
      return util::Status::InvalidArgument("segment mix must sum to 1");
    }
    if (seg.mix.spatial < 0 || seg.mix.keyword < 0 || seg.mix.hybrid < 0) {
      return util::Status::InvalidArgument("segment mix must be >= 0");
    }
    fraction_total += seg.fraction;
  }
  if (std::abs(fraction_total - 1.0) > kMixTolerance) {
    return util::Status::InvalidArgument("segment fractions must sum to 1");
  }
  if (min_side_fraction <= 0.0 || max_side_fraction < min_side_fraction ||
      max_side_fraction > 1.0) {
    return util::Status::InvalidArgument("bad query side fractions");
  }
  if (min_query_keywords == 0 || max_query_keywords < min_query_keywords) {
    return util::Status::InvalidArgument("bad query keyword counts");
  }
  if (num_queries == 0) {
    return util::Status::InvalidArgument("num_queries must be > 0");
  }
  return util::Status::Ok();
}

const char* WorkloadIdName(WorkloadId id) {
  switch (id) {
    case WorkloadId::kTwQW1:
      return "TwQW1";
    case WorkloadId::kTwQW2:
      return "TwQW2";
    case WorkloadId::kTwQW3:
      return "TwQW3";
    case WorkloadId::kTwQW4:
      return "TwQW4";
    case WorkloadId::kTwQW5:
      return "TwQW5";
    case WorkloadId::kTwQW6:
      return "TwQW6";
    case WorkloadId::kEbRQW1:
      return "EbRQW1";
    case WorkloadId::kCiQW1:
      return "CiQW1";
  }
  return "unknown";
}

WorkloadSpec MakeWorkloadSpec(WorkloadId id, uint32_t num_queries,
                              uint64_t seed) {
  WorkloadSpec spec;
  spec.name = WorkloadIdName(id);
  spec.num_queries = num_queries;
  spec.seed = seed;
  switch (id) {
    case WorkloadId::kTwQW1:
      // One-third each overall, with the dominant type rotating through
      // phases — the workload that triggers four switches in Figure 3.
      spec.segments = {
          {{0.20, 0.30, 0.50}, 0.18},  // Hybrid-leaning warm mix.
          {{0.90, 0.05, 0.05}, 0.13},  // Spatial-dominated.
          {{0.20, 0.30, 0.50}, 0.22},  // Back to mixed.
          {{0.05, 0.90, 0.05}, 0.22},  // Keyword-dominated.
          {{0.20, 0.30, 0.50}, 0.25},  // Mixed tail.
      };
      spec.spatial_side_scale = 0.35;
      break;
    case WorkloadId::kTwQW2:
      spec.segments = {{{1.0, 0.0, 0.0}, 1.0}};
      break;
    case WorkloadId::kTwQW3:
      spec.segments = {{{0.5, 0.0, 0.5}, 1.0}};
      break;
    case WorkloadId::kTwQW4:
      spec.segments = {{{0.0, 1.0, 0.0}, 1.0}};
      spec.min_query_keywords = 1;
      spec.max_query_keywords = 1;
      break;
    case WorkloadId::kTwQW5:
      spec.segments = {{{0.0, 1.0, 0.0}, 1.0}};
      spec.min_query_keywords = 2;
      spec.max_query_keywords = 5;
      break;
    case WorkloadId::kTwQW6:
      // Same 1/3 composition as TwQW1 but phases land in a different
      // order — two switches in Figure 4.
      spec.segments = {
          {{0.25, 0.35, 0.40}, 0.18},  // Keyword-leaning mix.
          {{0.90, 0.05, 0.05}, 0.21},  // Spatial-dominated.
          {{0.15, 0.45, 0.40}, 0.61},  // Keyword-heavy tail.
      };
      spec.spatial_side_scale = 0.35;
      break;
    case WorkloadId::kEbRQW1:
      spec.segments = {{{1.0, 0.0, 0.0}, 1.0}};
      // Real dataset-search requests vary widely in extent.
      spec.min_side_fraction = 0.01;
      spec.max_side_fraction = 0.15;
      spec.hotspot_center_probability = 0.7;
      break;
    case WorkloadId::kCiQW1:
      spec.segments = {{{0.0, 1.0, 0.0}, 1.0}};
      spec.min_query_keywords = 1;
      spec.max_query_keywords = 1;
      break;
  }
  return spec;
}

QueryGenerator::QueryGenerator(const WorkloadSpec& spec,
                               const DatasetSpec& dataset)
    : spec_(spec),
      dataset_(dataset),
      rng_(spec.seed),
      keyword_sampler_(dataset.vocabulary_size, dataset.zipf_skew,
                       spec.seed ^ 0xDEADBEEFULL) {
  assert(spec.Validate().ok());
  double total = 0.0;
  hotspot_cdf_.reserve(dataset_.hotspots.size());
  for (const Hotspot& h : dataset_.hotspots) {
    total += h.weight;
    hotspot_cdf_.push_back(total);
  }
  for (auto& c : hotspot_cdf_) c /= total;

  segment_start_.reserve(spec_.segments.size());
  double cumulative = 0.0;
  for (const WorkloadSegment& seg : spec_.segments) {
    segment_start_.push_back(static_cast<uint32_t>(
        cumulative * static_cast<double>(spec_.num_queries)));
    cumulative += seg.fraction;
  }
}

const WorkloadSegment& QueryGenerator::CurrentSegment() const {
  size_t i = segment_start_.size() - 1;
  while (i > 0 && segment_start_[i] > produced_) --i;
  return spec_.segments[i];
}

geo::Point QueryGenerator::SampleCenter() {
  if (hotspot_cdf_.empty() ||
      !rng_.NextBool(spec_.hotspot_center_probability)) {
    return geo::Point{
        rng_.NextDouble(dataset_.bounds.min_x, dataset_.bounds.max_x),
        rng_.NextDouble(dataset_.bounds.min_y, dataset_.bounds.max_y)};
  }
  const double u = rng_.NextDouble();
  const auto it =
      std::lower_bound(hotspot_cdf_.begin(), hotspot_cdf_.end(), u);
  const size_t idx = static_cast<size_t>(it - hotspot_cdf_.begin());
  const Hotspot& h =
      dataset_.hotspots[std::min(idx, dataset_.hotspots.size() - 1)];
  // Spread query centers a bit wider than the data hotspot itself.
  geo::Point p{rng_.NextGaussian(h.center.x, h.stddev * 1.5),
               rng_.NextGaussian(h.center.y, h.stddev * 1.5)};
  return dataset_.bounds.Clamp(p);
}

geo::Rect QueryGenerator::SampleRange(double side_scale) {
  const double side_fraction =
      rng_.NextDouble(spec_.min_side_fraction, spec_.max_side_fraction) *
      side_scale;
  const double width = dataset_.bounds.Width() * side_fraction;
  const double height = dataset_.bounds.Height() * side_fraction;
  return geo::Rect::FromCenter(SampleCenter(), width, height);
}

std::vector<stream::KeywordId> QueryGenerator::SampleKeywords() {
  const uint32_t count =
      spec_.min_query_keywords +
      static_cast<uint32_t>(rng_.NextBounded(
          spec_.max_query_keywords - spec_.min_query_keywords + 1));
  std::vector<stream::KeywordId> keywords;
  keywords.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    keywords.push_back(
        static_cast<stream::KeywordId>(keyword_sampler_.Next()));
  }
  stream::CanonicalizeKeywords(&keywords);
  return keywords;
}

stream::Query QueryGenerator::Next() {
  assert(HasNext());
  const QueryMix& mix = CurrentSegment().mix;
  const double u = rng_.NextDouble();
  stream::Query q;
  if (u < mix.spatial) {
    q.range = SampleRange(spec_.spatial_side_scale);
  } else if (u < mix.spatial + mix.keyword) {
    q.keywords = SampleKeywords();
  } else {
    q.range = SampleRange(1.0);
    q.keywords = SampleKeywords();
  }
  ++produced_;
  return q;
}

}  // namespace latest::workload
