// Interleaves a dataset stream with a query workload in event-time order
// and feeds them to callbacks (typically LatestModule::OnObject/OnQuery).
//
// Queries are stamped evenly across [query_start_ms, query_end_ms] of the
// stream; query_start_ms should be at least the window length T so the
// warm-up phase (which receives data only) completes first.

#ifndef LATEST_WORKLOAD_STREAM_DRIVER_H_
#define LATEST_WORKLOAD_STREAM_DRIVER_H_

#include <cstdint>

#include "stream/object.h"
#include "stream/query.h"
#include "util/status.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace latest::workload {

/// Event-time interleaving of objects and queries.
class StreamDriver {
 public:
  /// Queries are spread evenly over [query_start_ms, query_end_ms].
  StreamDriver(DatasetGenerator* dataset, QueryGenerator* queries,
               stream::Timestamp query_start_ms,
               stream::Timestamp query_end_ms);

  /// Runs the whole stream. `object_fn(const GeoTextObject&)` and
  /// `query_fn(const Query&, uint32_t query_index)` are invoked in
  /// non-decreasing timestamp order.
  template <typename ObjectFn, typename QueryFn>
  void Run(ObjectFn&& object_fn, QueryFn&& query_fn) {
    while (dataset_->HasNext() || queries_->HasNext()) {
      if (!queries_->HasNext()) {
        object_fn(dataset_->Next());
        continue;
      }
      const stream::Timestamp next_query_time =
          QueryTimestamp(queries_->produced());
      if (!dataset_->HasNext()) {
        stream::Query q = queries_->Next();
        q.timestamp = next_query_time;
        query_fn(q, queries_->produced() - 1);
        continue;
      }
      // Peek the next object's timestamp without consuming it: object
      // times are deterministic in arrival index.
      const stream::Timestamp next_object_time =
          ObjectTimestamp(dataset_->produced());
      if (next_object_time <= next_query_time) {
        object_fn(dataset_->Next());
      } else {
        stream::Query q = queries_->Next();
        q.timestamp = next_query_time;
        query_fn(q, queries_->produced() - 1);
      }
    }
  }

  /// Timestamp assigned to query `index`.
  stream::Timestamp QueryTimestamp(uint32_t index) const;

  /// Timestamp the dataset generator will assign to object `index`.
  stream::Timestamp ObjectTimestamp(uint64_t index) const;

 private:
  DatasetGenerator* dataset_;
  QueryGenerator* queries_;
  stream::Timestamp query_start_ms_;
  stream::Timestamp query_end_ms_;
};

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_STREAM_DRIVER_H_
