// Interleaves a dataset stream with a query workload in event-time order
// and feeds them to callbacks (typically LatestModule::OnObject/OnQuery).
//
// Queries are stamped evenly across [query_start_ms, query_end_ms] of the
// stream; query_start_ms should be at least the window length T so the
// warm-up phase (which receives data only) completes first.

#ifndef LATEST_WORKLOAD_STREAM_DRIVER_H_
#define LATEST_WORKLOAD_STREAM_DRIVER_H_

#include <cstdint>

#include "obs/metrics_registry.h"
#include "stream/object.h"
#include "stream/query.h"
#include "util/status.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace latest::workload {

/// Event-time interleaving of objects and queries.
class StreamDriver {
 public:
  /// Queries are spread evenly over [query_start_ms, query_end_ms].
  StreamDriver(DatasetGenerator* dataset, QueryGenerator* queries,
               stream::Timestamp query_start_ms,
               stream::Timestamp query_end_ms);

  /// Mirrors driver progress into `latest_stream_objects_emitted_total`,
  /// `latest_stream_queries_emitted_total`, and
  /// `latest_stream_event_time_ms` on the registry (typically the module's
  /// own, so driver progress and module state share one exposition). Pass
  /// null to detach; the registry must outlive the driver.
  void AttachTelemetry(obs::MetricsRegistry* registry);

  /// Runs the whole stream. `object_fn(const GeoTextObject&)` and
  /// `query_fn(const Query&, uint32_t query_index)` are invoked in
  /// non-decreasing timestamp order.
  template <typename ObjectFn, typename QueryFn>
  void Run(ObjectFn&& object_fn, QueryFn&& query_fn) {
    while (dataset_->HasNext() || queries_->HasNext()) {
      if (!queries_->HasNext()) {
        EmitObject(ObjectTimestamp(dataset_->produced()));
        object_fn(dataset_->Next());
        continue;
      }
      const stream::Timestamp next_query_time =
          QueryTimestamp(queries_->produced());
      if (!dataset_->HasNext()) {
        stream::Query q = queries_->Next();
        q.timestamp = next_query_time;
        EmitQuery(next_query_time);
        query_fn(q, queries_->produced() - 1);
        continue;
      }
      // Peek the next object's timestamp without consuming it: object
      // times are deterministic in arrival index.
      const stream::Timestamp next_object_time =
          ObjectTimestamp(dataset_->produced());
      if (next_object_time <= next_query_time) {
        EmitObject(next_object_time);
        object_fn(dataset_->Next());
      } else {
        stream::Query q = queries_->Next();
        q.timestamp = next_query_time;
        EmitQuery(next_query_time);
        query_fn(q, queries_->produced() - 1);
      }
    }
  }

  /// Timestamp assigned to query `index`.
  stream::Timestamp QueryTimestamp(uint32_t index) const;

  /// Timestamp the dataset generator will assign to object `index`.
  stream::Timestamp ObjectTimestamp(uint64_t index) const;

 private:
  void EmitObject(stream::Timestamp t) {
    if (objects_counter_ == nullptr) return;
    objects_counter_->Increment();
    event_time_gauge_->Set(static_cast<double>(t));
  }
  void EmitQuery(stream::Timestamp t) {
    if (queries_counter_ == nullptr) return;
    queries_counter_->Increment();
    event_time_gauge_->Set(static_cast<double>(t));
  }

  DatasetGenerator* dataset_;
  QueryGenerator* queries_;
  stream::Timestamp query_start_ms_;
  stream::Timestamp query_end_ms_;

  obs::Counter* objects_counter_ = nullptr;
  obs::Counter* queries_counter_ = nullptr;
  obs::Gauge* event_time_gauge_ = nullptr;
};

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_STREAM_DRIVER_H_
