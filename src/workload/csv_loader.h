// CSV loading of geo-textual streams.
//
// Adopters replaying real datasets (geotagged tweets, eBird records,
// check-ins) can feed LATEST from a CSV file instead of the synthetic
// generators. Expected format, one object per line:
//
//   timestamp_ms,lon,lat,keyword1;keyword2;...
//
// - `#`-prefixed lines and blank lines are skipped.
// - The keyword field may be empty (object without keywords).
// - Keyword strings are interned through a caller-supplied dictionary.
// - Rows must be sorted by timestamp (validated).

#ifndef LATEST_WORKLOAD_CSV_LOADER_H_
#define LATEST_WORKLOAD_CSV_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "stream/keyword_dictionary.h"
#include "stream/object.h"
#include "util/status.h"

namespace latest::workload {

/// Result of loading a CSV stream.
struct CsvStream {
  std::vector<stream::GeoTextObject> objects;  // Timestamp-sorted.
  uint64_t lines_skipped = 0;                  // Comments and blanks.
};

/// Parses one CSV line into an object (oid assigned by the caller).
/// Returns InvalidArgument with a descriptive message on malformed input.
util::Status ParseCsvLine(std::string_view line,
                          stream::KeywordDictionary* dictionary,
                          stream::GeoTextObject* out);

/// Loads a whole CSV file. Fails on the first malformed row (the message
/// names the line number) or if timestamps regress.
util::Result<CsvStream> LoadCsvStream(const std::string& path,
                                      stream::KeywordDictionary* dictionary);

/// Parses CSV content from memory (same format/validation as the file
/// loader; useful for tests and embedded data).
util::Result<CsvStream> ParseCsvStream(std::string_view content,
                                       stream::KeywordDictionary* dictionary);

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_CSV_LOADER_H_
