// CSV loading of geo-textual streams.
//
// Adopters replaying real datasets (geotagged tweets, eBird records,
// check-ins) can feed LATEST from a CSV file instead of the synthetic
// generators. Expected format, one object per line:
//
//   timestamp_ms,lon,lat,keyword1;keyword2;...
//
// - `#`-prefixed lines and blank lines are skipped.
// - The keyword field may be empty (object without keywords).
// - Keyword strings are interned through a caller-supplied dictionary.
// - Rows must be sorted by timestamp (validated).

#ifndef LATEST_WORKLOAD_CSV_LOADER_H_
#define LATEST_WORKLOAD_CSV_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"
#include "stream/keyword_dictionary.h"
#include "stream/object.h"
#include "util/status.h"

namespace latest::workload {

/// Result of loading a CSV stream.
struct CsvStream {
  std::vector<stream::GeoTextObject> objects;  // Timestamp-sorted.
  uint64_t lines_skipped = 0;                  // Comments and blanks.
  /// Malformed rows dropped (only in skip_malformed_rows mode; the strict
  /// default fails on the first one instead).
  uint64_t rows_malformed = 0;
  /// The first malformed row's error, kept for diagnostics even when the
  /// row was skipped. OK when every row parsed.
  util::Status first_error;
};

/// Loader behavior knobs.
struct CsvLoadOptions {
  /// When true, a malformed row (short field count, bad lon/lat/timestamp,
  /// regressed timestamp) is counted in rows_malformed and dropped instead
  /// of failing the whole load. Real-world exports are rarely pristine;
  /// strict mode (the default) is for curated experiment inputs.
  bool skip_malformed_rows = false;

  /// When set, loading mirrors progress into counters on this registry:
  /// `workload_csv_rows_loaded_total`, `workload_csv_lines_skipped_total`
  /// (comments/blanks), and `workload_csv_rows_malformed_total`. The
  /// registry must outlive the call.
  obs::MetricsRegistry* telemetry = nullptr;
};

/// Parses one CSV line into an object (oid assigned by the caller).
/// Returns InvalidArgument with a descriptive message on malformed input.
util::Status ParseCsvLine(std::string_view line,
                          stream::KeywordDictionary* dictionary,
                          stream::GeoTextObject* out);

/// Loads a whole CSV file. By default fails on the first malformed row
/// (the message names the line number) or if timestamps regress; see
/// CsvLoadOptions for the tolerant mode.
util::Result<CsvStream> LoadCsvStream(const std::string& path,
                                      stream::KeywordDictionary* dictionary,
                                      const CsvLoadOptions& options = {});

/// Parses CSV content from memory (same format/validation as the file
/// loader; useful for tests and embedded data).
util::Result<CsvStream> ParseCsvStream(std::string_view content,
                                       stream::KeywordDictionary* dictionary,
                                       const CsvLoadOptions& options = {});

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_CSV_LOADER_H_
