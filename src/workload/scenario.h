// Adversarial workload scenarios: declarative, seeded mutations composed
// over the synthetic stream so the LATEST lifecycle can be proven out
// against regime changes instead of only the stock generator.
//
// A ScenarioSpec describes one named stream: a two-regime clustered
// object generator (dense hotspot + uniform background, banded Zipf-ish
// keywords — the shape of tools/latest_stream_run's drift smoke) plus a
// set of mutations, each activated over a window of the object stream:
//
//   * spatial shift   — the dense cluster moves: abruptly (flash crowd)
//                       or linearly interpolated (gradual centroid drift);
//   * vocabulary churn— the active keyword band migrates: new-term
//                       injection ramps up as old terms decay;
//   * load wave       — diurnal sinusoidal modulation of arrival rate
//                       via a monotone time warp;
//   * burst           — a contiguous stretch of the stream arrives at
//                       `burst_factor` times the base rate (queries can
//                       stay paced in event time via query_pace_ms);
//   * query-mix flip  — the spatial/keyword/hybrid proportions of the
//                       query stream change mid-stream.
//
// Everything is a pure function of the spec (seeded Rng, index-driven
// mutation ramps), so a scenario replays bit-identically: the durability
// layer can fast-forward through it after a crash and two runs produce
// byte-identical deterministic state digests.
//
// MakeScenario(name) returns the catalog entry for a named scenario
// together with its acceptance gate — the per-scenario thresholds
// (detection delay, time-to-recover, tau hit rate, regret) that
// tests/scenario_test.cc and the CI scenario matrix enforce.

#ifndef LATEST_WORKLOAD_SCENARIO_H_
#define LATEST_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/rect.h"
#include "stream/object.h"
#include "stream/query.h"
#include "util/rng.h"
#include "util/status.h"

namespace latest::workload {

/// Query-type proportions of one query regime; the remainder after
/// keyword + spatial is hybrid (range + keyword).
struct ScenarioQueryMix {
  double keyword = 0.70;
  double spatial = 0.15;
  util::Status Validate() const;
};

/// Full description of one adversarial scenario stream.
struct ScenarioSpec {
  std::string name;
  std::string description;

  uint64_t objects = 16000;
  int64_t duration_ms = 8000;
  uint64_t seed = 5;

  /// Query cadence: one query per `query_every_objects` objects once the
  /// stream clock passes `query_warmup_ms` (the window length, so the
  /// warm-up phase sees data only). When `query_pace_ms > 0` queries are
  /// instead scheduled by event time — one whenever the stream clock
  /// crosses the next pace boundary — which keeps the query rate steady
  /// through ingest bursts.
  uint32_t query_every_objects = 10;
  int64_t query_warmup_ms = 1000;
  int64_t query_pace_ms = 0;

  /// Object regime: `cluster_fraction` of objects fall uniformly inside
  /// the dense cluster, the rest uniformly over the bounds.
  geo::Rect bounds{0, 0, 100, 100};
  double cluster_fraction = 0.7;
  geo::Rect cluster_before{20, 20, 40, 40};
  geo::Rect cluster_after{20, 20, 40, 40};
  /// Activation window of the spatial shift, as fractions of the object
  /// stream. begin == end means an abrupt jump at that point; begin < end
  /// linearly interpolates the cluster between the two rectangles.
  double spatial_shift_begin = 0.5;
  double spatial_shift_end = 0.5;

  /// Keyword regime: ids are drawn u^2-skewed from a band of
  /// `vocab_band` ids starting at the active base. During the vocabulary
  /// churn window each keyword draw picks the new band with probability
  /// equal to the ramp — new terms inject while old terms decay.
  uint32_t vocab_band = 50;
  stream::KeywordId vocab_base_before = 0;
  stream::KeywordId vocab_base_after = 0;
  double vocab_shift_begin = 0.5;
  double vocab_shift_end = 0.5;

  /// Diurnal load wave: arrival rate modulated by
  /// 1 - amplitude * sin(2 pi periods f) through a monotone time warp.
  /// amplitude must stay < 1 so time never runs backwards.
  double load_wave_amplitude = 0.0;
  uint32_t load_wave_periods = 2;

  /// Burst: objects in [burst_begin, burst_begin + burst_length] (object
  /// fractions) arrive at `burst_factor` times the base rate.
  double burst_begin = 0.0;
  double burst_length = 0.0;
  double burst_factor = 1.0;

  /// Query regimes before/after the flip point (fraction of objects);
  /// query_flip_at >= 1 means the mix never changes.
  ScenarioQueryMix query_mix_before;
  ScenarioQueryMix query_mix_after;
  double query_flip_at = 1.0;

  /// Keywords-per-keyword-query bounds (uniform).
  uint32_t min_query_keywords = 1;
  uint32_t max_query_keywords = 1;

  /// DeepSampling-inspired validation mode: the replay harness records
  /// the scoreboard's predicted accuracy/latency for every measured
  /// estimator immediately before each query and scores the prediction
  /// against the realized measurement — validating that switch decisions
  /// rest on calibrated expectations.
  bool validate_predictions = false;

  util::Status Validate() const;
};

/// One injected distribution change of a scenario, in stream coordinates
/// — what detection-delay and time-to-recover are measured against.
struct DriftInjection {
  /// "spatial", "vocab", or "query_mix".
  std::string kind;
  /// Activation window as fractions of the object stream (begin == end
  /// for abrupt changes).
  double begin_fraction = 0.0;
  double end_fraction = 0.0;
  /// The same window in event time and object index.
  int64_t onset_ms = 0;
  int64_t settled_ms = 0;
  uint64_t onset_object = 0;
};

/// The injected drifts of a spec, onset-ordered (empty for stationary
/// scenarios like `baseline`, `diurnal`, `burst`).
std::vector<DriftInjection> InjectionsOf(const ScenarioSpec& spec);

/// Per-scenario acceptance thresholds, enforced by the replay harness,
/// tests/scenario_test.cc, and the CI scenario matrix.
struct ScenarioGate {
  /// The drift detectors must fire within `max_detection_delay_queries`
  /// answered queries of the earliest injection onset.
  bool expects_detection = false;
  uint64_t max_detection_delay_queries = 0;
  /// Slice-mean active accuracy must be back at/above tau within this
  /// many window slices of each injection settling (< 0 disables).
  int64_t max_recover_slices = -1;
  /// Floors over the incremental phase.
  double min_tau_hit_rate = 0.0;
  double min_mean_accuracy = 0.0;
  /// Ceiling on lifetime counterfactual regret from the switch audit
  /// trail (< 0 disables).
  double max_cumulative_regret = -1.0;
  /// Ceiling on the mean absolute error of scoreboard accuracy
  /// predictions (validate_predictions mode only; < 0 disables).
  double max_accuracy_prediction_mae = -1.0;
};

/// A named scenario with its acceptance gate.
struct ScenarioCatalogEntry {
  ScenarioSpec spec;
  ScenarioGate gate;
};

/// Names of every catalog scenario, in presentation order.
std::vector<std::string> ScenarioNames();

/// Builds a catalog scenario scaled to the given stream volume. The
/// defaults match tools/latest_stream_run's smoke shape (16000 objects
/// over 8000 event-time ms). Fails with InvalidArgument on an unknown
/// name.
util::Result<ScenarioCatalogEntry> MakeScenario(std::string_view name,
                                                uint64_t objects = 16000,
                                                int64_t duration_ms = 8000,
                                                uint64_t seed = 5);

/// One interleaved stream event.
struct ScenarioEvent {
  bool is_query = false;
  stream::GeoTextObject object;  // Valid when !is_query.
  stream::Query query;           // Valid when is_query.
};

/// Streams the events of a scenario in non-decreasing timestamp order.
/// A pure function of the spec: equal specs produce equal streams.
class ScenarioStream {
 public:
  explicit ScenarioStream(const ScenarioSpec& spec);

  bool HasNext() const;
  ScenarioEvent Next();

  uint64_t objects_produced() const { return objects_produced_; }
  uint64_t queries_produced() const { return queries_produced_; }

  /// Timestamp the stream will assign to object `index` (the composed
  /// monotone time warp; independent of consumption state).
  int64_t TimestampOfObject(uint64_t index) const;

  const ScenarioSpec& spec() const { return spec_; }

 private:
  geo::Rect ClusterAt(double fraction) const;
  /// Active keyword-band base at this point of the stream; draws from
  /// `rng` only inside the churn window (mid-ramp the band is chosen
  /// per keyword, which is what makes churn gradual).
  stream::KeywordId KeywordBase(double fraction, util::Rng* rng);
  stream::GeoTextObject MakeObject(uint64_t index);
  stream::Query MakeQuery(double fraction, int64_t timestamp);

  ScenarioSpec spec_;
  util::Rng object_rng_;
  util::Rng query_rng_;
  uint64_t objects_produced_ = 0;
  uint64_t queries_produced_ = 0;
  bool query_pending_ = false;
  double pending_fraction_ = 0.0;
  int64_t pending_timestamp_ = 0;
  int64_t next_query_due_ms_ = 0;
};

}  // namespace latest::workload

#endif  // LATEST_WORKLOAD_SCENARIO_H_
