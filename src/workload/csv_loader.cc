#include "workload/csv_loader.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace latest::workload {

namespace {

// Splits a view at the first `delim`; returns false when absent.
bool SplitOnce(std::string_view in, char delim, std::string_view* head,
               std::string_view* tail) {
  const size_t pos = in.find(delim);
  if (pos == std::string_view::npos) return false;
  *head = in.substr(0, pos);
  *tail = in.substr(pos + 1);
  return true;
}

util::Status ParseDouble(std::string_view field, const char* name,
                         double* out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return util::Status::InvalidArgument(std::string("bad ") + name +
                                         " field: '" + std::string(field) +
                                         "'");
  }
  return util::Status::Ok();
}

util::Status ParseTimestamp(std::string_view field, stream::Timestamp* out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return util::Status::InvalidArgument("bad timestamp field: '" +
                                         std::string(field) + "'");
  }
  return util::Status::Ok();
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

util::Status ParseCsvLine(std::string_view line,
                          stream::KeywordDictionary* dictionary,
                          stream::GeoTextObject* out) {
  std::string_view rest = line;
  std::string_view ts_field;
  std::string_view lon_field;
  std::string_view lat_field;
  if (!SplitOnce(rest, ',', &ts_field, &rest) ||
      !SplitOnce(rest, ',', &lon_field, &rest) ||
      !SplitOnce(rest, ',', &lat_field, &rest)) {
    return util::Status::InvalidArgument(
        "expected 'timestamp,lon,lat,keywords'");
  }
  LATEST_RETURN_IF_ERROR(ParseTimestamp(Trim(ts_field), &out->timestamp));
  if (out->timestamp < 0) {
    return util::Status::InvalidArgument("timestamp must be >= 0");
  }
  LATEST_RETURN_IF_ERROR(ParseDouble(Trim(lon_field), "lon", &out->loc.x));
  LATEST_RETURN_IF_ERROR(ParseDouble(Trim(lat_field), "lat", &out->loc.y));

  out->keywords.clear();
  std::string_view keywords = Trim(rest);
  while (!keywords.empty()) {
    std::string_view keyword;
    if (!SplitOnce(keywords, ';', &keyword, &keywords)) {
      keyword = keywords;
      keywords = {};
    }
    keyword = Trim(keyword);
    if (keyword.empty()) continue;
    out->keywords.push_back(dictionary->Intern(keyword));
  }
  stream::CanonicalizeKeywords(&out->keywords);
  dictionary->CountOccurrences(out->keywords);
  return util::Status::Ok();
}

util::Result<CsvStream> ParseCsvStream(std::string_view content,
                                       stream::KeywordDictionary* dictionary,
                                       const CsvLoadOptions& options) {
  CsvStream result;
  size_t line_number = 0;
  size_t start = 0;
  stream::Timestamp previous = -1;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    const std::string_view line = Trim(content.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') {
      ++result.lines_skipped;
      continue;
    }
    stream::GeoTextObject obj;
    obj.oid = result.objects.size();
    util::Status status = ParseCsvLine(line, dictionary, &obj);
    if (status.ok() && obj.timestamp < previous) {
      status = util::Status::InvalidArgument(
          "timestamps must be non-decreasing");
    }
    if (!status.ok()) {
      const util::Status annotated = util::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": " + status.message());
      if (!options.skip_malformed_rows) return annotated;
      ++result.rows_malformed;
      if (result.first_error.ok()) result.first_error = annotated;
      continue;
    }
    previous = obj.timestamp;
    result.objects.push_back(std::move(obj));
  }
  if (options.telemetry != nullptr) {
    options.telemetry
        ->GetCounter("workload_csv_rows_loaded_total",
                     "CSV rows parsed into stream objects")
        ->Increment(result.objects.size());
    options.telemetry
        ->GetCounter("workload_csv_lines_skipped_total",
                     "CSV comment/blank lines skipped")
        ->Increment(result.lines_skipped);
    options.telemetry
        ->GetCounter("workload_csv_rows_malformed_total",
                     "Malformed CSV rows dropped (tolerant mode)")
        ->Increment(result.rows_malformed);
  }
  return result;
}

util::Result<CsvStream> LoadCsvStream(const std::string& path,
                                      stream::KeywordDictionary* dictionary,
                                      const CsvLoadOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return util::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvStream(buffer.str(), dictionary, options);
}

}  // namespace latest::workload
