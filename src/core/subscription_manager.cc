#include "core/subscription_manager.h"

#include <algorithm>
#include <cassert>

namespace latest::core {

SubscriptionManager::SubscriptionManager(LatestModule* module)
    : module_(module) {
  assert(module != nullptr);
}

util::Result<SubscriptionId> SubscriptionManager::Subscribe(
    const stream::Query& query, stream::Timestamp period_ms,
    Callback callback, stream::Timestamp start_ms) {
  if (!query.HasRange() && !query.HasKeywords()) {
    return util::Status::InvalidArgument(
        "subscription query needs a spatial range or keywords");
  }
  if (query.HasRange() && !query.range->IsValid()) {
    return util::Status::InvalidArgument("subscription range has no area");
  }
  if (period_ms <= 0) {
    return util::Status::InvalidArgument("period_ms must be > 0");
  }
  if (callback == nullptr) {
    return util::Status::InvalidArgument("callback must be set");
  }
  Subscription sub;
  sub.id = next_id_++;
  sub.query = query;
  sub.period_ms = period_ms;
  sub.next_fire_ms = start_ms < 0 ? -1 : start_ms + period_ms;
  sub.callback = std::move(callback);
  subscriptions_.push_back(std::move(sub));
  return subscriptions_.back().id;
}

bool SubscriptionManager::Unsubscribe(SubscriptionId id) {
  const auto it = std::find_if(
      subscriptions_.begin(), subscriptions_.end(),
      [id](const Subscription& sub) { return sub.id == id; });
  if (it == subscriptions_.end()) return false;
  subscriptions_.erase(it);
  return true;
}

uint32_t SubscriptionManager::OnAdvance(stream::Timestamp now_ms) {
  uint32_t fired = 0;
  for (Subscription& sub : subscriptions_) {
    if (sub.next_fire_ms < 0) {
      // Armed on first sight of the clock.
      sub.next_fire_ms = now_ms + sub.period_ms;
      continue;
    }
    if (now_ms < sub.next_fire_ms) continue;
    stream::Query q = sub.query;
    q.timestamp = now_ms;
    SubscriptionEvent event;
    event.id = sub.id;
    event.fired_at = now_ms;
    event.outcome = module_->OnQuery(q);
    // Coalesce missed periods: schedule strictly after `now`.
    while (sub.next_fire_ms <= now_ms) sub.next_fire_ms += sub.period_ms;
    ++fired;
    ++events_delivered_;
    sub.callback(event);
  }
  return fired;
}

}  // namespace latest::core
