// Per-(query type x estimator) performance scoreboard.
//
// LATEST accumulates each estimator's measured accuracy and latency per
// query type: the pre-training phase fills every cell (all estimators run
// every query); the incremental phase keeps the measured estimators fresh
// through EWMAs. The scoreboard (a) labels incremental training records
// for the Hoeffding tree with the currently-best estimator and (b) serves
// as the model's fallback recommendation before the tree has learned
// anything.

#ifndef LATEST_CORE_SCOREBOARD_H_
#define LATEST_CORE_SCOREBOARD_H_

#include <array>
#include <cstdint>
#include <optional>

#include "core/metrics.h"
#include "estimators/estimator.h"
#include "obs/metrics_registry.h"
#include "stream/query.h"
#include "util/minmax_scaler.h"
#include "util/moving_stats.h"
#include "util/serialization.h"

namespace latest::core {

/// One measurement of one estimator on one query.
struct EstimatorMeasurement {
  estimators::EstimatorKind kind = estimators::EstimatorKind::kH4096;
  double estimate = 0.0;
  double accuracy = 0.0;    // In [0, 1].
  double latency_ms = 0.0;  // Wall clock of the Estimate call.
};

/// EWMA accuracy/latency per (query type, estimator kind) plus the global
/// latency min-max scaler that normalizes latencies for alpha blending.
///
/// Not thread-safe by design: the module's parallel portfolio fan-out
/// keeps `Record` on the caller's thread, after the join, in ascending
/// kind order — EWMA updates are order-sensitive, and serializing them
/// is what keeps the lifecycle bit-identical across thread counts.
class Scoreboard {
 public:
  /// ewma_alpha: weight of the newest measurement.
  explicit Scoreboard(double ewma_alpha = 0.05);

  /// Mirrors every cell into gauges on `registry`
  /// (`latest_scoreboard_accuracy{type,estimator}` and friends). Call once
  /// before any Record; pass null to detach. The registry must outlive the
  /// scoreboard.
  void AttachTelemetry(obs::MetricsRegistry* registry);

  /// Records one measurement under the given query type.
  void Record(stream::QueryType type, const EstimatorMeasurement& m);

  /// Alpha-blended score of one cell; nullopt when the cell has never
  /// been measured.
  std::optional<double> Score(stream::QueryType type,
                              estimators::EstimatorKind kind,
                              double alpha) const;

  /// Best-scoring estimator for the query type. `exclude` removes one
  /// kind from consideration (used to force a switch away from the
  /// failing active estimator). Falls back to RSH when nothing has been
  /// measured.
  estimators::EstimatorKind BestFor(
      stream::QueryType type, double alpha,
      std::optional<estimators::EstimatorKind> exclude = std::nullopt) const;

  /// Expected alpha-blended score of one estimator under a workload mix:
  /// weights[t] is the recent fraction of query type t (spatial, keyword,
  /// hybrid). Unmeasured cells are skipped with their weight; nullopt
  /// when no weighted cell has been measured.
  std::optional<double> WeightedScore(estimators::EstimatorKind kind,
                                      const std::array<double, 3>& weights,
                                      double alpha) const;

  /// Best estimator under a workload mix (see WeightedScore); falls back
  /// to RSH when nothing is measured.
  estimators::EstimatorKind WeightedBestFor(
      const std::array<double, 3>& weights, double alpha,
      std::optional<estimators::EstimatorKind> exclude = std::nullopt) const;

  /// EWMA accuracy of a cell (0 when never measured).
  double AccuracyOf(stream::QueryType type,
                    estimators::EstimatorKind kind) const;

  /// EWMA latency of a cell in ms (0 when never measured).
  double LatencyOf(stream::QueryType type,
                   estimators::EstimatorKind kind) const;

  /// Normalizes a latency against everything observed so far.
  double NormalizeLatency(double latency_ms) const {
    return latency_scaler_.Scale(latency_ms);
  }

  void Reset();

  /// Persists every cell and the latency scaler. With
  /// `include_latency = false` the wall-clock side (per-cell latency
  /// averages and the latency scaler) is omitted: that layout is for
  /// deterministic state digests — two runs over the same event stream
  /// agree on it bitwise — and is NOT loadable by Restore.
  void Serialize(util::BinaryWriter* writer,
                 bool include_latency = true) const;

  /// Restores a snapshot written by Serialize(writer, true); on failure
  /// the scoreboard is reset and an error is returned.
  util::Status Restore(util::BinaryReader* reader);

 private:
  struct Cell {
    util::Ewma accuracy;
    util::Ewma latency_ms;
    uint64_t count = 0;
    Cell() : accuracy(0.05), latency_ms(0.05) {}
    explicit Cell(double a) : accuracy(a), latency_ms(a) {}
  };

  static constexpr uint32_t kNumTypes = 3;

  const Cell& CellOf(stream::QueryType type,
                     estimators::EstimatorKind kind) const {
    return cells_[static_cast<uint32_t>(type)][static_cast<uint32_t>(kind)];
  }
  Cell& CellOf(stream::QueryType type, estimators::EstimatorKind kind) {
    return cells_[static_cast<uint32_t>(type)][static_cast<uint32_t>(kind)];
  }

  /// Cached telemetry handles of one cell (null when detached).
  struct CellGauges {
    obs::Gauge* accuracy = nullptr;
    obs::Gauge* latency_ms = nullptr;
    obs::Counter* records = nullptr;
  };

  void PublishCell(stream::QueryType type, estimators::EstimatorKind kind);

  double ewma_alpha_;
  std::array<std::array<Cell, estimators::kNumEstimatorKinds>, kNumTypes>
      cells_;
  std::array<std::array<CellGauges, estimators::kNumEstimatorKinds>,
             kNumTypes>
      gauges_{};
  util::MinMaxScaler latency_scaler_;
};

}  // namespace latest::core

#endif  // LATEST_CORE_SCOREBOARD_H_
