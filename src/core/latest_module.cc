#include "core/latest_module.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/span.h"
#include "simd/kernels.h"
#include "util/stopwatch.h"

namespace latest::core {

namespace {

/// Learning-model feature schema: query type (categorical, 3 values) plus
/// five numeric workload features; label = estimator kind (6 classes).
ml::FeatureSchema ModelSchema() {
  ml::FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_numeric = 5;
  schema.num_classes = estimators::kNumEstimatorKinds;
  return schema;
}

// Maps log10(area fraction) from [-8, 0] to [0, 1].
double NormalizeLogArea(double area, double domain_area) {
  if (area <= 0.0 || domain_area <= 0.0) return 0.0;
  const double lg = std::log10(std::max(1e-8, area / domain_area));
  return std::clamp((lg + 8.0) / 8.0, 0.0, 1.0);
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kWarmup:
      return "warmup";
    case Phase::kPretraining:
      return "pretraining";
    case Phase::kIncremental:
      return "incremental";
  }
  return "unknown";
}

util::Status LatestConfig::Validate() const {
  if (!bounds.IsValid()) {
    return util::Status::InvalidArgument("bounds must have positive area");
  }
  LATEST_RETURN_IF_ERROR(window.Validate());
  LATEST_RETURN_IF_ERROR(tree.Validate());
  if (alpha < 0.0 || alpha > 1.0) {
    return util::Status::InvalidArgument("alpha must be in [0, 1]");
  }
  if (tau <= 0.0 || tau >= 1.0) {
    return util::Status::InvalidArgument("tau must be in (0, 1)");
  }
  if (beta <= 0.0 || beta >= 1.0) {
    return util::Status::InvalidArgument("beta must be in (0, 1)");
  }
  if (monitor_window == 0) {
    return util::Status::InvalidArgument("monitor_window must be > 0");
  }
  uint32_t enabled_count = 0;
  for (const bool enabled : enabled_estimators) enabled_count += enabled;
  if (enabled_count < 2) {
    return util::Status::InvalidArgument(
        "at least two estimators must be enabled for switching to exist");
  }
  if (!enabled_estimators[static_cast<uint32_t>(default_estimator)]) {
    return util::Status::InvalidArgument(
        "default_estimator must be enabled");
  }
  if (auto_retrain_error_threshold < 0.0) {
    return util::Status::InvalidArgument(
        "auto_retrain_error_threshold must be >= 0");
  }
  if (num_threads > 128) {
    return util::Status::InvalidArgument("num_threads must be <= 128");
  }
  return util::Status::Ok();
}

util::Result<std::unique_ptr<LatestModule>> LatestModule::Create(
    const LatestConfig& config) {
  LATEST_RETURN_IF_ERROR(config.Validate());
  LatestConfig effective = config;
  effective.estimator.bounds = config.bounds;
  effective.estimator.window = config.window;
  LATEST_RETURN_IF_ERROR(effective.estimator.Validate());
  auto module = std::unique_ptr<LatestModule>(new LatestModule(effective));
  if (effective.enable_introspection) {
    obs::IntrospectionSources sources;
    sources.registry = &module->telemetry_->registry();
    sources.events = &module->telemetry_->events();
    sources.traces = &module->telemetry_->traces();
    sources.slo = module->slo_monitor_.get();
    sources.errors = module->error_accountant_.get();
    sources.drift = module->drift_monitor_.get();
    sources.audit = module->audit_trail_.get();
    sources.flight = module->flight_recorder_.get();
    obs::IntrospectionInfo info;
    info.tau = effective.tau;
    info.prefill_threshold = effective.PrefillThreshold();
    module->introspection_ = std::make_unique<obs::IntrospectionServer>(
        sources, std::move(info));
    LATEST_RETURN_IF_ERROR(module->introspection_->Start(
        effective.introspection_port, effective.slo_tick_ms));
  }
  return module;
}

LatestModule::LatestModule(const LatestConfig& config)
    : config_(config),
      pool_(std::make_unique<util::ThreadPool>(config.num_threads)),
      clock_(config.window),
      window_population_(config.window.num_slices),
      system_log_(config.bounds, config.window.window_length_ms),
      active_kind_(config.default_estimator),
      model_(std::make_unique<ml::HoeffdingTree>(ModelSchema(), config.tree)),
      scoreboard_(),
      accuracy_monitor_(config.monitor_window),
      recent_spatial_ratio_(config.monitor_window),
      recent_keyword_ratio_(config.monitor_window),
      recent_hybrid_ratio_(config.monitor_window),
      keyword_stats_(4096),
      keyword_decay_(
          static_cast<double>(config.window.num_slices - 1) /
          std::max(1u, config.window.num_slices)),
      telemetry_(std::make_unique<obs::Telemetry>(config.telemetry)) {
  RegisterMetrics();
  slo_monitor_ = std::make_unique<obs::SloMonitor>(&telemetry_->registry(),
                                                   &telemetry_->events());
  {
    std::vector<obs::SloRule> rules = config_.slo_rules;
    if (rules.empty() && config_.enable_introspection) {
      rules = obs::DefaultLatestSloRules(config_.tau);
    }
    for (const obs::SloRule& rule : rules) slo_monitor_->AddRule(rule);
  }
  if (config_.quality.enabled) {
    error_accountant_ = std::make_unique<obs::ErrorAccountant>(config_.tau);
    error_accountant_->AttachMetrics(&telemetry_->registry());
    drift_monitor_ = std::make_unique<obs::DriftMonitor>(config_.quality.drift);
    drift_monitor_->AttachMetrics(&telemetry_->registry());
    drift_monitor_->AttachEventLog(&telemetry_->events());
    drift_monitor_->AddSeries("ingest_vocab_churn");
    drift_monitor_->AddSeries("ingest_centroid");
    audit_trail_ = std::make_unique<obs::SwitchAuditTrail>(
        config_.quality.audit_capacity,
        config_.quality.audit_resolution_window);
    audit_trail_->AttachMetrics(&telemetry_->registry());
    obs::FlightRecorder::Options flight_options;
    flight_options.capacity = config_.quality.flight_frames;
    flight_recorder_ =
        std::make_unique<obs::FlightRecorder>(std::move(flight_options));
    flight_recorder_->AttachMetrics(&telemetry_->registry());
    flight_recorder_->AttachEventLog(&telemetry_->events());
    flight_recorder_->AttachAuditTrail(audit_trail_.get());
    flight_recorder_->AttachSpans(obs::GetSpanCollector());
  }
  scoreboard_.AttachTelemetry(&telemetry_->registry());
  obs::ThreadPoolMetrics::Attach(pool_.get(), &telemetry_->registry(),
                                 "estimation", &pool_metrics_);
  system_log_.set_thread_pool(pool_.get());
  // All enabled estimation structures are pre-filled during the warm-up
  // phase (Section V-C), so every enabled instance exists from the start.
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    if (IsEnabled(kind)) EnsureInstance(kind);
  }
}

void LatestModule::RegisterMetrics() {
  obs::MetricsRegistry& registry = telemetry_->registry();
  objects_counter_ = registry.GetCounter(
      "latest_objects_ingested_total",
      "Stream objects ingested over the module lifetime");
  queries_counter_ = registry.GetCounter(
      "latest_queries_total",
      "Estimation queries answered over the module lifetime");
  switches_counter_ = registry.GetCounter(
      "latest_switches_total", "Active-estimator switches performed");
  prefills_started_counter_ = registry.GetCounter(
      "latest_prefills_started_total",
      "Replacement pre-fills started by the accuracy monitor");
  prefills_aborted_counter_ = registry.GetCounter(
      "latest_prefills_aborted_total",
      "Pre-filled candidates discarded after accuracy recovered");
  retrains_counter_ = registry.GetCounter(
      "latest_model_retrains_total",
      "Automatic Hoeffding-tree retrainings (Section V-D trigger)");
  phase_gauge_ = registry.GetGauge(
      "latest_phase",
      "Lifecycle phase: 0 warmup, 1 pretraining, 2 incremental");
  active_gauge_ = registry.GetGauge(
      "latest_active_estimator",
      "EstimatorKind index of the active estimator");
  candidate_gauge_ = registry.GetGauge(
      "latest_candidate_estimator",
      "EstimatorKind index of the pre-filling candidate (-1 when none)");
  candidate_gauge_->Set(-1.0);
  monitor_accuracy_gauge_ = registry.GetGauge(
      "latest_monitor_accuracy",
      "Moving-average accuracy of the active estimator");
  window_population_gauge_ = registry.GetGauge(
      "latest_window_population", "Objects currently inside the window");
  store_live_rows_gauge_ = registry.GetGauge(
      "latest_store_live_rows",
      "Rows resident in the columnar window store (ground-truth path)");
  store_arena_bytes_gauge_ = registry.GetGauge(
      "latest_store_arena_bytes",
      "Keyword payload bytes held across the store's slice arenas");
  store_slices_gauge_ = registry.GetGauge(
      "latest_store_slices_resident",
      "Window store slices resident (including the open one)");
  model_records_gauge_ = registry.GetGauge(
      "latest_model_records", "Training records absorbed by the model");
  model_leaves_gauge_ =
      registry.GetGauge("latest_model_leaves", "Hoeffding-tree leaves");
  model_depth_gauge_ =
      registry.GetGauge("latest_model_depth", "Hoeffding-tree depth");
  accuracy_histogram_ = registry.GetHistogram(
      "latest_query_accuracy", "Per-query estimation accuracy in [0, 1]",
      obs::Histogram::UnitIntervalBuckets());
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    if (!IsEnabled(kind)) continue;
    estimator_latency_histograms_[k] = registry.GetHistogram(
        "latest_estimate_latency_ms",
        "Wall clock of Estimate calls per portfolio member (ms)",
        obs::Histogram::LatencyBucketsMs(),
        {{"estimator", estimators::EstimatorKindName(kind)}});
  }
  kernel_tier_gauge_ = registry.GetGauge(
      "latest_kernel_tier",
      "Active SIMD kernel dispatch tier: 0 scalar, 1 sse2, 2 avx2");
  kernel_tier_gauge_->Set(static_cast<double>(simd::ActiveTier()));
  batch_size_histogram_ = registry.GetHistogram(
      "latest_batch_size",
      "Queries per batched ground-truth evaluation pass",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256});
  system_log_.set_batch_observer([this](size_t batch) {
    batch_size_histogram_->Observe(static_cast<double>(batch));
  });
  phase_gauge_->Set(static_cast<double>(phase_));
  active_gauge_->Set(static_cast<double>(active_kind_));
}

obs::Event LatestModule::MakeEvent(obs::EventType type) const {
  obs::Event event;
  event.type = type;
  event.timestamp = static_cast<int64_t>(clock_.now());
  event.query_count = queries_counter_->value();
  event.phase = static_cast<int32_t>(phase_);
  event.from_estimator = static_cast<int32_t>(active_kind_);
  event.monitor_accuracy = accuracy_monitor_.Mean();
  return event;
}

void LatestModule::EnterPhase(Phase next) {
  if (next == phase_) return;
  obs::Event event = MakeEvent(obs::EventType::kPhaseChanged);
  event.detail = static_cast<double>(phase_);  // Previous phase.
  phase_ = next;
  event.phase = static_cast<int32_t>(phase_);
  phase_gauge_->Set(static_cast<double>(phase_));
  telemetry_->events().Append(event);
}

estimators::Estimator* LatestModule::EnsureInstance(
    estimators::EstimatorKind kind) {
  assert(IsEnabled(kind));
  auto& slot = instances_[static_cast<uint32_t>(kind)];
  if (slot == nullptr) {
    estimators::EstimatorConfig cfg = config_.estimator;
    cfg.seed = config_.seed * estimators::kNumEstimatorKinds +
               static_cast<uint32_t>(kind);
    auto result = estimators::CreateEstimator(kind, cfg);
    assert(result.ok());  // Config was validated at module creation.
    slot = std::move(result).value();
  }
  return slot.get();
}

void LatestModule::DestroyInstance(estimators::EstimatorKind kind) {
  instances_[static_cast<uint32_t>(kind)].reset();
}

void LatestModule::AdvanceClock(stream::Timestamp t) {
  const uint32_t rotations = clock_.Advance(t);
  if (rotations == 0) return;
  {
    LATEST_SPAN("slice_seal");
    for (uint32_t r = 0; r < rotations; ++r) {
      window_population_.Rotate();
      for (auto& instance : instances_) {
        if (instance != nullptr) instance->OnSliceRotate();
      }
      keyword_stats_.Decay(keyword_decay_);
      keyword_objects_ *= keyword_decay_;

      // Ingest-feature drift: fold the sealed slice's vocabulary churn
      // and centroid displacement into the drift monitor. Observational
      // only — nothing downstream of the lifecycle reads these.
      if (drift_monitor_ != nullptr && slice_objects_ > 0) {
        const double churn =
            slice_distinct_keywords_ > 0
                ? static_cast<double>(slice_new_keywords_) /
                      static_cast<double>(slice_distinct_keywords_)
                : 0.0;
        drift_monitor_->Observe("ingest_vocab_churn", churn,
                                static_cast<int64_t>(clock_.now()),
                                queries_counter_->value());
        const double cx =
            slice_sum_x_ / static_cast<double>(slice_objects_);
        const double cy =
            slice_sum_y_ / static_cast<double>(slice_objects_);
        if (!centroid_initialized_) {
          centroid_x_ = cx;
          centroid_y_ = cy;
          centroid_initialized_ = true;
        }
        const double dx = (cx - centroid_x_) / std::max(
            1e-9, config_.bounds.max_x - config_.bounds.min_x);
        const double dy = (cy - centroid_y_) / std::max(
            1e-9, config_.bounds.max_y - config_.bounds.min_y);
        const double displacement = std::sqrt(dx * dx + dy * dy);
        drift_monitor_->Observe("ingest_centroid", displacement,
                                static_cast<int64_t>(clock_.now()),
                                queries_counter_->value());
        // Long-term centroid follows slowly so a persistent hotspot move
        // shows up as a sustained displacement, not a one-slice blip.
        centroid_x_ += 0.2 * (cx - centroid_x_);
        centroid_y_ += 0.2 * (cy - centroid_y_);
      }
      slice_distinct_keywords_ = 0;
      slice_new_keywords_ = 0;
      slice_sum_x_ = 0.0;
      slice_sum_y_ = 0.0;
      slice_objects_ = 0;
      ++ingest_slice_index_;
      // Bound the vocabulary map: drop entries stale for > 4 windows.
      if (vocab_last_slice_.size() > (1u << 16)) {
        const uint64_t horizon = 4ull * config_.window.num_slices;
        for (auto it = vocab_last_slice_.begin();
             it != vocab_last_slice_.end();) {
          if (it->second + horizon < ingest_slice_index_) {
            it = vocab_last_slice_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
  LATEST_SPAN("evict");
  system_log_.EvictExpired(clock_.now());
}

void LatestModule::OnObject(const stream::GeoTextObject& obj) {
  LATEST_SPAN("ingest");
  AdvanceClock(obj.timestamp);
  {
    LATEST_SPAN("store_insert");
    system_log_.Insert(obj);
  }
  window_population_.Add();
  for (const stream::KeywordId kw : obj.keywords) keyword_stats_.Add(kw);
  keyword_objects_ += 1.0;
  if (drift_monitor_ != nullptr) {
    // Per-slice ingest-feature accumulators (folded at slice rotation).
    for (const stream::KeywordId kw : obj.keywords) {
      auto [it, inserted] = vocab_last_slice_.try_emplace(
          kw, ingest_slice_index_);
      if (inserted) {
        ++slice_distinct_keywords_;
        ++slice_new_keywords_;
      } else if (it->second != ingest_slice_index_) {
        ++slice_distinct_keywords_;
        // "New" = absent from the whole preceding window, not merely
        // from the last slice — that is vocabulary churn, not mixing.
        if (it->second + config_.window.num_slices < ingest_slice_index_) {
          ++slice_new_keywords_;
        }
        it->second = ingest_slice_index_;
      }
    }
    slice_sum_x_ += obj.loc.x;
    slice_sum_y_ += obj.loc.y;
    ++slice_objects_;
  }
  {
    LATEST_SPAN("estimator_insert");
    for (auto& instance : instances_) {
      if (instance != nullptr) instance->Insert(obj);
    }
  }
  objects_counter_->Increment();
  window_population_gauge_->Set(
      static_cast<double>(window_population_.total()));
  // O(1) reads off the columnar store, for memory-budget scrapes.
  const stream::WindowStore& store = system_log_.store();
  store_live_rows_gauge_->Set(static_cast<double>(store.resident_rows()));
  store_arena_bytes_gauge_->Set(static_cast<double>(store.arena_bytes()));
  store_slices_gauge_->Set(static_cast<double>(store.slices_resident()));
  if (phase_ == Phase::kWarmup &&
      clock_.now() >= config_.window.window_length_ms) {
    EnterPhase(Phase::kPretraining);
  }
}

EstimatorMeasurement LatestModule::Measure(estimators::Estimator* est,
                                           const stream::Query& q,
                                           uint64_t actual) const {
  EstimatorMeasurement m;
  m.kind = est->kind();
  util::Stopwatch watch;
  double estimate = est->Estimate(q);
  m.latency_ms = watch.ElapsedMillis();
  // Scale estimates of partially pre-filled structures up to the window
  // population (Section V-D pre-filling).
  const uint64_t seen = est->seen_population();
  const uint64_t window = window_population_.total();
  if (seen == 0) {
    estimate = 0.0;
  } else if (window > seen) {
    estimate *= static_cast<double>(window) / static_cast<double>(seen);
  }
  m.estimate = estimate;
  m.accuracy = EstimationAccuracy(estimate, actual);
  return m;
}

void LatestModule::MeasurePortfolio(
    const std::vector<uint32_t>& kinds, const stream::Query& q,
    uint64_t actual,
    std::array<EstimatorMeasurement, estimators::kNumEstimatorKinds>* slots)
    const {
  // One task per estimator, each writing a distinct pre-sized slot.
  // Estimate() only touches the estimator's own structures, so tasks
  // share nothing mutable; with zero workers ParallelFor degenerates to
  // the exact serial loop this replaced.
  pool_->ParallelFor(kinds.size(), [&](size_t i) {
    const uint32_t k = kinds[i];
    (*slots)[k] = Measure(
        instances_[k].get(), q, actual);
  });
}

ml::FeatureVector LatestModule::BuildFeatures(const stream::Query& q) const {
  ml::FeatureVector f;
  f.categorical = {static_cast<int>(q.Type())};
  f.numeric.resize(5, 0.0);
  if (q.HasRange()) {
    f.numeric[0] = NormalizeLogArea(q.range->Area(), config_.bounds.Area());
  }
  f.numeric[1] =
      std::min(1.0, static_cast<double>(q.keywords.size()) / 8.0);
  if (q.HasKeywords() && keyword_objects_ >= 1.0) {
    double miss_all = 1.0;
    for (const stream::KeywordId kw : q.keywords) {
      const double p =
          std::clamp(keyword_stats_.Count(kw) / keyword_objects_, 0.0, 1.0);
      miss_all *= (1.0 - p);
    }
    f.numeric[2] = 1.0 - miss_all;
  }
  f.numeric[3] = recent_spatial_ratio_.Mean();
  f.numeric[4] = recent_keyword_ratio_.Mean();
  return f;
}

estimators::EstimatorKind LatestModule::Recommend(
    const stream::Query& q) const {
  return static_cast<estimators::EstimatorKind>(
      model_->Predict(BuildFeatures(q)));
}

void LatestModule::ConcludePretraining() {
  EnterPhase(Phase::kIncremental);
  active_kind_ = config_.default_estimator;
  candidate_kind_.reset();
  if (!config_.maintain_shadow_estimators) {
    // Wipe every structure except the active one to reduce system
    // overhead (Section V-C).
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      const auto kind = static_cast<estimators::EstimatorKind>(k);
      if (kind != active_kind_) DestroyInstance(kind);
    }
  }
  accuracy_monitor_.Reset();
  monitor_below_prefill_ = false;
  monitor_below_tau_ = false;
  incremental_queries_ = 0;
  last_switch_query_ = 0;
  active_gauge_->Set(static_cast<double>(active_kind_));
  candidate_gauge_->Set(-1.0);
}


namespace {

constexpr uint32_t kSnapshotMagic = 0x4C544553;  // "LTES"
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

std::string LatestModule::SerializeLearnedState() const {
  util::BinaryWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  writer.WriteDouble(config_.alpha);
  model_->Serialize(&writer);
  scoreboard_.Serialize(&writer);
  return writer.TakeBuffer();
}

util::Status LatestModule::RestoreLearnedState(std::string_view snapshot) {
  util::BinaryReader reader(snapshot);
  uint32_t magic;
  uint32_t version;
  if (!reader.ReadU32(&magic) || magic != kSnapshotMagic) {
    return util::Status::InvalidArgument("not a LATEST snapshot");
  }
  if (!reader.ReadU32(&version) || version != kSnapshotVersion) {
    return util::Status::InvalidArgument("unsupported snapshot version");
  }
  double alpha;
  if (!reader.ReadDouble(&alpha)) {
    return util::Status::InvalidArgument("truncated snapshot");
  }
  // A snapshot taken under a different alpha encodes rewards for a
  // different objective; refuse rather than silently mislearn.
  if (std::abs(alpha - config_.alpha) > 1e-9) {
    return util::Status::FailedPrecondition(
        "snapshot was taken with a different alpha");
  }
  LATEST_RETURN_IF_ERROR(model_->Restore(&reader));
  LATEST_RETURN_IF_ERROR(scoreboard_.Restore(&reader));
  if (!reader.exhausted()) {
    model_->Reset();
    scoreboard_.Reset();
    return util::Status::InvalidArgument("trailing bytes in snapshot");
  }
  return util::Status::Ok();
}

namespace {

/// Bumped whenever the full-lifecycle layout below changes.
constexpr uint32_t kLifecycleVersion = 1;

}  // namespace

void LatestModule::SaveState(util::BinaryWriter* writer) const {
  SaveStateImpl(writer, /*include_wall_clock=*/true);
}

void LatestModule::SaveDeterministicState(util::BinaryWriter* writer) const {
  SaveStateImpl(writer, /*include_wall_clock=*/false);
}

void LatestModule::SaveStateImpl(util::BinaryWriter* writer,
                                 bool include_wall_clock) const {
  writer->WriteU32(kLifecycleVersion);
  // Configuration fingerprint: every knob that shapes the serialized
  // layout or the post-restore decision sequence. num_threads is
  // deliberately absent — the lifecycle is thread-count invariant.
  writer->WriteDouble(config_.alpha);
  writer->WriteDouble(config_.tau);
  writer->WriteDouble(config_.beta);
  writer->WriteDouble(config_.regret_margin);
  writer->WriteU32(config_.pretrain_queries);
  writer->WriteU32(config_.monitor_window);
  writer->WriteU32(config_.min_queries_between_switches);
  writer->WriteU32(static_cast<uint32_t>(config_.default_estimator));
  for (const bool enabled : config_.enabled_estimators) {
    writer->WriteBool(enabled);
  }
  writer->WriteI64(config_.window.window_length_ms);
  writer->WriteU32(config_.window.num_slices);
  writer->WriteU64(config_.seed);
  writer->WriteBool(config_.maintain_shadow_estimators);
  writer->WriteDouble(config_.auto_retrain_error_threshold);
  writer->WriteU32(config_.min_queries_between_retrains);

  // Phase machine and stream clock.
  writer->WriteU32(static_cast<uint32_t>(phase_));
  clock_.Save(writer);
  window_population_.Save(writer);

  // Ground-truth window contents (indexes are rebuilt on load).
  system_log_.Save(writer);

  // Estimator portfolio: presence flag per kind, then the instance state.
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const estimators::Estimator* est = instances_[k].get();
    writer->WriteBool(est != nullptr);
    if (est != nullptr) est->SaveState(writer);
  }
  writer->WriteU32(static_cast<uint32_t>(active_kind_));
  writer->WriteBool(candidate_kind_.has_value());
  writer->WriteU32(candidate_kind_.has_value()
                       ? static_cast<uint32_t>(*candidate_kind_)
                       : 0);

  // Learned state. The scoreboard's latency side is wall clock — the
  // one piece of lifecycle state two identical runs legitimately differ
  // on — so the deterministic digest omits it.
  model_->Serialize(writer);
  scoreboard_.Serialize(writer, /*include_latency=*/include_wall_clock);

  // Monitors and workload-mix trackers.
  accuracy_monitor_.Save(writer);
  recent_spatial_ratio_.Save(writer);
  recent_keyword_ratio_.Save(writer);
  recent_hybrid_ratio_.Save(writer);

  // Keyword statistics feeding the model features.
  keyword_stats_.Save(writer);
  writer->WriteDouble(keyword_objects_);

  // Phase bookkeeping.
  writer->WriteU64(pretrain_seen_);
  writer->WriteU64(incremental_queries_);
  writer->WriteU64(last_switch_query_);
  writer->WriteU64(switch_log_.size());
  for (const SwitchEvent& e : switch_log_) {
    writer->WriteU64(e.query_index);
    writer->WriteI64(e.timestamp);
    writer->WriteU32(static_cast<uint32_t>(e.from));
    writer->WriteU32(static_cast<uint32_t>(e.to));
  }
  writer->WriteDouble(error_since_retrain_);
  writer->WriteU64(queries_since_retrain_);
  writer->WriteBool(monitor_below_prefill_);
  writer->WriteBool(monitor_below_tau_);

  // Lifetime counters: the query ordinal drives trace sampling and the
  // object count feeds ModuleStats, so both must survive a restart.
  writer->WriteU64(objects_counter_->value());
  writer->WriteU64(queries_counter_->value());
  writer->WriteU64(switches_counter_->value());
  writer->WriteU64(prefills_started_counter_->value());
  writer->WriteU64(prefills_aborted_counter_->value());
  writer->WriteU64(retrains_counter_->value());
}

util::Status LatestModule::LoadState(util::BinaryReader* reader) {
  const auto corrupt = [](const char* what) {
    return util::Status::DataLoss(std::string("lifecycle snapshot: ") +
                                  what);
  };
  uint32_t version;
  if (!reader->ReadU32(&version) || version != kLifecycleVersion) {
    return corrupt("bad version");
  }
  double alpha;
  double tau;
  double beta;
  double regret_margin;
  uint32_t pretrain_queries;
  uint32_t monitor_window;
  uint32_t min_switch;
  uint32_t default_kind;
  if (!reader->ReadDouble(&alpha) || !reader->ReadDouble(&tau) ||
      !reader->ReadDouble(&beta) || !reader->ReadDouble(&regret_margin) ||
      !reader->ReadU32(&pretrain_queries) ||
      !reader->ReadU32(&monitor_window) || !reader->ReadU32(&min_switch) ||
      !reader->ReadU32(&default_kind)) {
    return corrupt("truncated fingerprint");
  }
  std::array<bool, estimators::kNumEstimatorKinds> enabled;
  for (auto& e : enabled) {
    if (!reader->ReadBool(&e)) return corrupt("truncated fingerprint");
  }
  int64_t window_length_ms;
  uint32_t num_slices;
  uint64_t seed;
  bool shadow;
  double retrain_threshold;
  uint32_t min_retrains;
  if (!reader->ReadI64(&window_length_ms) || !reader->ReadU32(&num_slices) ||
      !reader->ReadU64(&seed) || !reader->ReadBool(&shadow) ||
      !reader->ReadDouble(&retrain_threshold) ||
      !reader->ReadU32(&min_retrains)) {
    return corrupt("truncated fingerprint");
  }
  if (alpha != config_.alpha || tau != config_.tau || beta != config_.beta ||
      regret_margin != config_.regret_margin ||
      pretrain_queries != config_.pretrain_queries ||
      monitor_window != config_.monitor_window ||
      min_switch != config_.min_queries_between_switches ||
      default_kind != static_cast<uint32_t>(config_.default_estimator) ||
      enabled != config_.enabled_estimators ||
      window_length_ms != config_.window.window_length_ms ||
      num_slices != config_.window.num_slices || seed != config_.seed ||
      shadow != config_.maintain_shadow_estimators ||
      retrain_threshold != config_.auto_retrain_error_threshold ||
      min_retrains != config_.min_queries_between_retrains) {
    return util::Status::FailedPrecondition(
        "lifecycle snapshot was taken under a different configuration");
  }

  uint32_t phase;
  if (!reader->ReadU32(&phase) || phase > 2) return corrupt("bad phase");
  phase_ = static_cast<Phase>(phase);
  if (!clock_.Load(reader)) return corrupt("bad clock");
  if (!window_population_.Load(reader)) {
    return corrupt("bad window population");
  }
  if (!system_log_.Load(reader)) return corrupt("bad system log");

  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    bool present;
    if (!reader->ReadBool(&present)) return corrupt("truncated portfolio");
    if (!present) {
      DestroyInstance(kind);
      continue;
    }
    if (!IsEnabled(kind)) return corrupt("disabled estimator present");
    if (!EnsureInstance(kind)->LoadState(reader)) {
      return corrupt("bad estimator state");
    }
  }
  uint32_t active;
  bool has_candidate;
  uint32_t candidate;
  if (!reader->ReadU32(&active) ||
      active >= estimators::kNumEstimatorKinds ||
      !reader->ReadBool(&has_candidate) || !reader->ReadU32(&candidate) ||
      candidate >= estimators::kNumEstimatorKinds) {
    return corrupt("bad active/candidate kinds");
  }
  active_kind_ = static_cast<estimators::EstimatorKind>(active);
  candidate_kind_ =
      has_candidate
          ? std::optional<estimators::EstimatorKind>(
                static_cast<estimators::EstimatorKind>(candidate))
          : std::nullopt;

  LATEST_RETURN_IF_ERROR(model_->Restore(reader));
  LATEST_RETURN_IF_ERROR(scoreboard_.Restore(reader));

  if (!accuracy_monitor_.Load(reader) ||
      !recent_spatial_ratio_.Load(reader) ||
      !recent_keyword_ratio_.Load(reader) ||
      !recent_hybrid_ratio_.Load(reader)) {
    return corrupt("bad monitors");
  }
  if (!keyword_stats_.Load(reader) ||
      !reader->ReadDouble(&keyword_objects_)) {
    return corrupt("bad keyword stats");
  }

  uint64_t num_switches;
  if (!reader->ReadU64(&pretrain_seen_) ||
      !reader->ReadU64(&incremental_queries_) ||
      !reader->ReadU64(&last_switch_query_) ||
      !reader->ReadU64(&num_switches) ||
      num_switches > reader->remaining()) {
    return corrupt("bad phase bookkeeping");
  }
  switch_log_.clear();
  switch_log_.reserve(num_switches);
  for (uint64_t i = 0; i < num_switches; ++i) {
    SwitchEvent e;
    uint32_t from;
    uint32_t to;
    if (!reader->ReadU64(&e.query_index) || !reader->ReadI64(&e.timestamp) ||
        !reader->ReadU32(&from) || from >= estimators::kNumEstimatorKinds ||
        !reader->ReadU32(&to) || to >= estimators::kNumEstimatorKinds) {
      return corrupt("bad switch log");
    }
    e.from = static_cast<estimators::EstimatorKind>(from);
    e.to = static_cast<estimators::EstimatorKind>(to);
    switch_log_.push_back(e);
  }
  if (!reader->ReadDouble(&error_since_retrain_) ||
      !reader->ReadU64(&queries_since_retrain_) ||
      !reader->ReadBool(&monitor_below_prefill_) ||
      !reader->ReadBool(&monitor_below_tau_)) {
    return corrupt("bad retrain/monitor flags");
  }

  const std::array<obs::Counter*, 6> counters = {
      objects_counter_,          queries_counter_,
      switches_counter_,         prefills_started_counter_,
      prefills_aborted_counter_, retrains_counter_};
  for (obs::Counter* counter : counters) {
    uint64_t value;
    if (!reader->ReadU64(&value) || value < counter->value()) {
      return corrupt("bad lifetime counters");
    }
    counter->Increment(value - counter->value());
  }

  // Re-publish decision-state gauges (scoreboard gauges refresh on the
  // next Record).
  phase_gauge_->Set(static_cast<double>(phase_));
  active_gauge_->Set(static_cast<double>(active_kind_));
  candidate_gauge_->Set(candidate_kind_.has_value()
                            ? static_cast<double>(*candidate_kind_)
                            : -1.0);
  monitor_accuracy_gauge_->Set(accuracy_monitor_.Mean());
  window_population_gauge_->Set(
      static_cast<double>(window_population_.total()));
  const stream::WindowStore& store = system_log_.store();
  store_live_rows_gauge_->Set(static_cast<double>(store.resident_rows()));
  store_arena_bytes_gauge_->Set(static_cast<double>(store.arena_bytes()));
  store_slices_gauge_->Set(static_cast<double>(store.slices_resident()));
  model_records_gauge_->Set(static_cast<double>(model_->num_trained()));
  model_leaves_gauge_->Set(static_cast<double>(model_->num_leaves()));
  model_depth_gauge_->Set(static_cast<double>(model_->depth()));
  return util::Status::Ok();
}

void LatestModule::ResetModel() {
  model_->Reset();
  error_since_retrain_ = 0.0;
  queries_since_retrain_ = 0;
  telemetry_->events().Append(MakeEvent(obs::EventType::kModelReset));
}

void LatestModule::TrackModelError(double relative_error) {
  if (config_.auto_retrain_error_threshold <= 0.0) return;
  error_since_retrain_ += relative_error;
  ++queries_since_retrain_;
  if (queries_since_retrain_ < config_.min_queries_between_retrains) return;
  const double mean_error =
      error_since_retrain_ / static_cast<double>(queries_since_retrain_);
  if (mean_error > config_.auto_retrain_error_threshold) {
    // Section V-D: the overall error rate since the last training grew
    // past tolerance — drop the model and re-grow it from fresh records.
    model_->Reset();
    retrains_counter_->Increment();
    obs::Event event = MakeEvent(obs::EventType::kModelRetrained);
    event.detail = mean_error;
    telemetry_->events().Append(event);
  }
  error_since_retrain_ = 0.0;
  queries_since_retrain_ = 0;
}

estimators::EstimatorKind LatestModule::ClampToEnabled(
    estimators::EstimatorKind kind, bool exclude_active) const {
  if (IsEnabled(kind) && !(exclude_active && kind == active_kind_)) {
    return kind;
  }
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto candidate = static_cast<estimators::EstimatorKind>(k);
    if (!IsEnabled(candidate)) continue;
    if (exclude_active && candidate == active_kind_) continue;
    return candidate;
  }
  return active_kind_;  // Unreachable with >= 2 enabled estimators.
}

std::array<double, 3> LatestModule::RecentTypeWeights() const {
  std::array<double, 3> weights = {recent_spatial_ratio_.Mean(),
                                   recent_keyword_ratio_.Mean(),
                                   recent_hybrid_ratio_.Mean()};
  const double total = weights[0] + weights[1] + weights[2];
  if (total <= 0.0) return {1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (auto& w : weights) w /= total;
  return weights;
}

bool LatestModule::MaybeSwitch(const stream::Query& q, uint64_t query_index) {
  if (!accuracy_monitor_.full()) return false;
  const double avg = accuracy_monitor_.Mean();
  const std::array<double, 3> weights = RecentTypeWeights();

  // Edge-detect threshold crossings for the lifecycle event log.
  const bool below_prefill_now = avg < config_.PrefillThreshold();
  const bool below_tau_now = avg < config_.tau;
  if (below_tau_now && !monitor_below_tau_) {
    obs::Event event =
        MakeEvent(obs::EventType::kAccuracyBelowSwitchThreshold);
    event.detail = config_.tau;
    telemetry_->events().Append(event);
  } else if (below_prefill_now && !monitor_below_prefill_) {
    obs::Event event =
        MakeEvent(obs::EventType::kAccuracyBelowPrefillThreshold);
    event.detail = config_.PrefillThreshold();
    telemetry_->events().Append(event);
  }
  if (!below_prefill_now && monitor_below_prefill_) {
    obs::Event event = MakeEvent(obs::EventType::kAccuracyRecovered);
    event.detail = config_.PrefillThreshold();
    telemetry_->events().Append(event);
  }
  monitor_below_prefill_ = below_prefill_now;
  monitor_below_tau_ = below_tau_now;

  // The learning model's recommendation, forced away from the active
  // estimator (used once switch pressure exists).
  auto recommend_non_active = [&]() {
    LATEST_SPAN("tree_infer");
    const std::vector<double> dist =
        model_->PredictDistribution(BuildFeatures(q));
    estimators::EstimatorKind best = active_kind_;
    double best_p = -1.0;
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      const auto kind = static_cast<estimators::EstimatorKind>(k);
      if (kind == active_kind_ || !IsEnabled(kind)) continue;
      if (dist[k] > best_p) {
        best_p = dist[k];
        best = kind;
      }
    }
    if (best == active_kind_ || best_p <= 0.0) {
      best = scoreboard_.WeightedBestFor(weights, config_.alpha,
                                         active_kind_);
    }
    return ClampToEnabled(best, /*exclude_active=*/true);
  };

  // Switch pressure exists when (a) the moving accuracy fell below tau
  // AND the scoreboard knows some alternative scoring at least as well
  // under the recent workload mix, or (b) an alternative dominates the
  // active estimator's mix-weighted blended score by the regret margin
  // (even with acceptable absolute accuracy — the Fig. 5 / Fig. 8
  // situations). Scores are weighted by the recent query-type mix so a
  // mixed workload does not thrash toward a single-type specialist.
  const auto active_score =
      scoreboard_.WeightedScore(active_kind_, weights, config_.alpha);
  const estimators::EstimatorKind alternative = ClampToEnabled(
      scoreboard_.WeightedBestFor(weights, config_.alpha, active_kind_),
      /*exclude_active=*/true);
  const auto alternative_score =
      scoreboard_.WeightedScore(alternative, weights, config_.alpha);
  const bool alternative_at_least_as_good =
      alternative_score.has_value() &&
      (!active_score.has_value() || *alternative_score >= *active_score);
  const bool regret_pressure =
      config_.regret_margin > 0.0 && alternative_score.has_value() &&
      active_score.has_value() &&
      *alternative_score > *active_score + config_.regret_margin;
  const bool accuracy_pressure =
      avg < config_.tau && alternative_at_least_as_good;
  const bool prefill_pressure =
      regret_pressure ||
      (avg < config_.PrefillThreshold() && alternative_at_least_as_good);

  if ((accuracy_pressure || regret_pressure) &&
      query_index - last_switch_query_ >=
          config_.min_queries_between_switches) {
    // Switch. Use the pre-filled candidate when available; otherwise ask
    // the model now (the candidate will start cold — exactly the cost the
    // pre-filling phase exists to avoid).
    const estimators::EstimatorKind recommendation =
        candidate_kind_.value_or(recommend_non_active());
    const estimators::EstimatorKind to = recommendation;
    if (to != active_kind_) {
      LATEST_SPAN("switch");
      EnsureInstance(to);
      if (!config_.maintain_shadow_estimators) {
        DestroyInstance(active_kind_);
      }
      switch_log_.push_back(SwitchEvent{query_index, clock_.now(),
                                        active_kind_, to});
      obs::Event event = MakeEvent(obs::EventType::kSwitched);
      event.to_estimator = static_cast<int32_t>(to);
      event.recommended = static_cast<int32_t>(recommendation);
      telemetry_->events().Append(event);
      switches_counter_->Increment();
      RecordSwitchAudit(q, weights, to, recommendation,
                        /*had_prefilled_candidate=*/
                        candidate_kind_.has_value());
      active_kind_ = to;
      candidate_kind_.reset();
      last_switch_query_ = query_index;
      accuracy_monitor_.Reset();
      monitor_below_prefill_ = false;
      monitor_below_tau_ = false;
      active_gauge_->Set(static_cast<double>(active_kind_));
      candidate_gauge_->Set(-1.0);
      return true;
    }
    candidate_kind_.reset();
    candidate_gauge_->Set(-1.0);
    return false;
  }

  if (prefill_pressure) {
    // Anticipate the switch: start pre-filling the recommended structure.
    if (!candidate_kind_.has_value()) {
      LATEST_SPAN("prefill");
      const estimators::EstimatorKind rec = recommend_non_active();
      if (rec != active_kind_) {
        candidate_kind_ = rec;
        EnsureInstance(rec);
        obs::Event event = MakeEvent(obs::EventType::kPrefillStarted);
        event.to_estimator = static_cast<int32_t>(rec);
        event.recommended = static_cast<int32_t>(rec);
        telemetry_->events().Append(event);
        prefills_started_counter_->Increment();
        candidate_gauge_->Set(static_cast<double>(rec));
      }
    }
    return false;
  }

  // Pressure receded: discard the pre-filled candidate (Section V-D).
  if (candidate_kind_.has_value()) {
    if (!config_.maintain_shadow_estimators) {
      DestroyInstance(*candidate_kind_);
    }
    obs::Event event = MakeEvent(obs::EventType::kPrefillAborted);
    event.to_estimator = static_cast<int32_t>(*candidate_kind_);
    telemetry_->events().Append(event);
    prefills_aborted_counter_->Increment();
    candidate_kind_.reset();
    candidate_gauge_->Set(-1.0);
  }
  return false;
}

QueryOutcome LatestModule::OnQuery(const stream::Query& q,
                                   double tokenize_ms) {
  return OnQueryImpl(q, tokenize_ms, /*precomputed_actual=*/nullptr,
                     /*precomputed_truth_ms=*/0.0);
}

void LatestModule::OnQueryBatch(const stream::Query* queries, size_t k,
                                QueryOutcome* outcomes,
                                const double* tokenize_ms,
                                QueryStageBreakdown* stages) {
  if (k == 0) return;
  if (k == 1) {
    // Degenerate tick: identical code path to the unbatched API.
    outcomes[0] = OnQuery(queries[0], tokenize_ms ? tokenize_ms[0] : 0.0);
    if (stages != nullptr) stages[0] = last_stage_breakdown_;
    return;
  }
  const util::Stopwatch truth_watch;
  batch_truths_.resize(k);
  {
    LATEST_SPAN("ground_truth");
    system_log_.TrueSelectivityBatch(queries, k, batch_truths_.data());
  }
  // Trace attribution: the batch pass is amortized evenly across queries.
  const double truth_ms_each =
      truth_watch.ElapsedMillis() / static_cast<double>(k);
  for (size_t i = 0; i < k; ++i) {
    outcomes[i] =
        OnQueryImpl(queries[i], tokenize_ms ? tokenize_ms[i] : 0.0,
                    &batch_truths_[i], truth_ms_each);
    if (stages != nullptr) stages[i] = last_stage_breakdown_;
  }
}

QueryOutcome LatestModule::OnQueryImpl(const stream::Query& q,
                                       double tokenize_ms,
                                       const uint64_t* precomputed_actual,
                                       double precomputed_truth_ms) {
  const util::Stopwatch total_watch;
  LATEST_SPAN("query");
  AdvanceClock(q.timestamp);
  if (phase_ == Phase::kWarmup &&
      clock_.now() >= config_.window.window_length_ms) {
    EnterPhase(Phase::kPretraining);
  }

  const uint64_t ordinal = queries_counter_->value();
  const bool traced = telemetry_->traces().ShouldSample(ordinal);
  queries_counter_->Increment();

  uint64_t actual = 0;
  double ground_truth_ms = precomputed_truth_ms;
  if (precomputed_actual != nullptr) {
    actual = *precomputed_actual;
  } else {
    const util::Stopwatch truth_watch;
    {
      LATEST_SPAN("ground_truth");
      actual = system_log_.TrueSelectivity(q);
    }
    ground_truth_ms = truth_watch.ElapsedMillis();
  }
  const stream::QueryType type = q.Type();
  recent_spatial_ratio_.Add(type == stream::QueryType::kSpatial ? 1.0 : 0.0);
  recent_keyword_ratio_.Add(type == stream::QueryType::kKeyword ? 1.0 : 0.0);
  recent_hybrid_ratio_.Add(type == stream::QueryType::kHybrid ? 1.0 : 0.0);

  QueryOutcome outcome;
  outcome.actual = actual;
  outcome.phase = phase_;
  outcome.active = active_kind_;

  switch (phase_) {
    case Phase::kWarmup: {
      // The paper's warm-up receives no queries; answer with the default
      // estimator without any training.
      const util::Stopwatch estimate_watch;
      EstimatorMeasurement m;
      {
        LATEST_SPAN("estimate");
        m = Measure(EnsureInstance(active_kind_), q, actual);
      }
      const double estimate_ms = estimate_watch.ElapsedMillis();
      outcome.estimate = m.estimate;
      outcome.accuracy = m.accuracy;
      outcome.latency_ms = m.latency_ms;
      FinishQuery(q, outcome, traced, ordinal, tokenize_ms, ground_truth_ms,
                  estimate_ms, /*model_ms=*/0.0, total_watch);
      return outcome;
    }

    case Phase::kPretraining: {
      // Run the query on every enabled estimator — concurrently when the
      // pool has workers — and label the training record with the best
      // alpha-blended performer (Section V-C). The fan-out writes into
      // pre-sized slots; scoreboard EWMAs, feedback, and the latency
      // scaler are updated serially after the join, in kind order, so
      // the learned state is independent of the thread count.
      const util::Stopwatch estimate_watch;
      outcome.measurements.reserve(estimators::kNumEstimatorKinds);
      EstimatorMeasurement active_m;
      std::vector<uint32_t> kinds;
      kinds.reserve(estimators::kNumEstimatorKinds);
      for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
        const auto kind = static_cast<estimators::EstimatorKind>(k);
        if (!IsEnabled(kind)) continue;
        EnsureInstance(kind);
        kinds.push_back(k);
      }
      std::array<EstimatorMeasurement, estimators::kNumEstimatorKinds>
          slots;
      {
        LATEST_SPAN("estimate");
        MeasurePortfolio(kinds, q, actual, &slots);
      }
      for (const uint32_t k : kinds) {
        const auto kind = static_cast<estimators::EstimatorKind>(k);
        const EstimatorMeasurement& m = slots[k];
        scoreboard_.Record(type, m);
        instance(kind)->OnFeedback(q, m.estimate, actual);
        if (kind == active_kind_) active_m = m;
        outcome.measurements.push_back(m);
      }
      const double estimate_ms = estimate_watch.ElapsedMillis();

      const util::Stopwatch model_watch;
      uint32_t best = static_cast<uint32_t>(active_kind_);
      double best_score = -1.0;
      for (const auto& m : outcome.measurements) {
        const double score =
            BlendedScore(m.accuracy, scoreboard_.NormalizeLatency(m.latency_ms),
                         config_.alpha);
        if (score > best_score) {
          best_score = score;
          best = static_cast<uint32_t>(m.kind);
        }
      }
      {
        LATEST_SPAN("tree_train");
        model_->Train(ml::TrainingExample{BuildFeatures(q), best});
      }

      outcome.estimate = active_m.estimate;
      outcome.accuracy = active_m.accuracy;
      outcome.latency_ms = active_m.latency_ms;
      accuracy_monitor_.Add(active_m.accuracy);
      outcome.monitor_accuracy = accuracy_monitor_.Mean();
      TrackModelError(RelativeError(active_m.estimate, actual));
      const double model_ms = model_watch.ElapsedMillis();

      if (++pretrain_seen_ >= config_.pretrain_queries) {
        ConcludePretraining();
      }
      FinishQuery(q, outcome, traced, ordinal, tokenize_ms, ground_truth_ms,
                  estimate_ms, model_ms, total_watch);
      return outcome;
    }

    case Phase::kIncremental: {
      ++incremental_queries_;
      // Measure the active estimator (always), the pre-filling candidate,
      // and — in evaluation mode — every shadow estimator. Fan-out and
      // post-join bookkeeping mirror the pre-training phase.
      const util::Stopwatch estimate_watch;
      EstimatorMeasurement active_m;
      std::vector<uint32_t> kinds;
      kinds.reserve(estimators::kNumEstimatorKinds);
      for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
        const auto kind = static_cast<estimators::EstimatorKind>(k);
        if (instance(kind) == nullptr) continue;
        const bool is_active = kind == active_kind_;
        const bool is_candidate =
            candidate_kind_.has_value() && kind == *candidate_kind_;
        if (!is_active && !is_candidate &&
            !config_.maintain_shadow_estimators) {
          continue;
        }
        kinds.push_back(k);
      }
      std::array<EstimatorMeasurement, estimators::kNumEstimatorKinds>
          slots;
      {
        LATEST_SPAN("estimate");
        MeasurePortfolio(kinds, q, actual, &slots);
      }
      for (const uint32_t k : kinds) {
        const auto kind = static_cast<estimators::EstimatorKind>(k);
        const EstimatorMeasurement& m = slots[k];
        scoreboard_.Record(type, m);
        instance(kind)->OnFeedback(q, m.estimate, actual);
        const bool is_candidate =
            candidate_kind_.has_value() && kind == *candidate_kind_;
        if (kind == active_kind_) active_m = m;
        if (config_.maintain_shadow_estimators || is_candidate) {
          outcome.measurements.push_back(m);
        }
      }
      const double estimate_ms = estimate_watch.ElapsedMillis();

      // System-log feedback becomes an additional training record labeled
      // with the scoreboard's current best (Section V-D).
      const util::Stopwatch model_watch;
      const auto label = static_cast<uint32_t>(
          scoreboard_.BestFor(type, config_.alpha));
      {
        LATEST_SPAN("tree_train");
        model_->Train(ml::TrainingExample{BuildFeatures(q), label});
      }

      outcome.estimate = active_m.estimate;
      outcome.accuracy = active_m.accuracy;
      outcome.latency_ms = active_m.latency_ms;
      accuracy_monitor_.Add(active_m.accuracy);
      outcome.monitor_accuracy = accuracy_monitor_.Mean();
      TrackModelError(RelativeError(active_m.estimate, actual));
      outcome.switched = MaybeSwitch(q, incremental_queries_);
      outcome.active = active_kind_;
      const double model_ms = model_watch.ElapsedMillis();
      FinishQuery(q, outcome, traced, ordinal, tokenize_ms, ground_truth_ms,
                  estimate_ms, model_ms, total_watch);
      return outcome;
    }
  }
  return outcome;
}

void LatestModule::FinishQuery(const stream::Query& /*q*/,
                               const QueryOutcome& outcome, bool traced,
                               uint64_t ordinal, double tokenize_ms,
                               double ground_truth_ms, double estimate_ms,
                               double model_ms,
                               const util::Stopwatch& total_watch) {
  last_stage_breakdown_.ground_truth_ms = ground_truth_ms;
  last_stage_breakdown_.estimate_ms = estimate_ms;
  last_stage_breakdown_.model_ms = model_ms;
  accuracy_histogram_->Observe(outcome.accuracy);
  monitor_accuracy_gauge_->Set(accuracy_monitor_.Mean());
  window_population_gauge_->Set(
      static_cast<double>(window_population_.total()));
  model_records_gauge_->Set(static_cast<double>(model_->num_trained()));
  model_leaves_gauge_->Set(static_cast<double>(model_->num_leaves()));
  model_depth_gauge_->Set(static_cast<double>(model_->depth()));

  // Feed the per-estimator latency histograms once per measurement; if
  // the active estimator was measured outside `measurements` (incremental
  // phase without shadows), add its latency separately.
  bool active_measured = false;
  for (const auto& m : outcome.measurements) {
    obs::Histogram* histogram =
        estimator_latency_histograms_[static_cast<uint32_t>(m.kind)];
    if (histogram != nullptr) histogram->Observe(m.latency_ms);
    if (m.kind == outcome.active) active_measured = true;
  }
  if (!active_measured) {
    obs::Histogram* histogram =
        estimator_latency_histograms_[static_cast<uint32_t>(outcome.active)];
    if (histogram != nullptr) histogram->Observe(outcome.latency_ms);
  }

  // Quality observability: fold every ground-truth measurement into the
  // per-estimator error accountant, subscribe the active estimator's
  // smoothed error to drift detection, and advance pending switch-audit
  // resolution windows by this query. Strictly observational — none of
  // this feeds back into the lifecycle.
  if (error_accountant_ != nullptr) {
    const double actual = static_cast<double>(outcome.actual);
    std::vector<std::pair<int32_t, double>> measured;
    measured.reserve(outcome.measurements.size() + 1);
    for (const auto& m : outcome.measurements) {
      error_accountant_->Record(m.kind, m.estimate, actual);
      measured.emplace_back(static_cast<int32_t>(m.kind), m.accuracy);
    }
    if (!active_measured) {
      error_accountant_->Record(outcome.active, outcome.estimate, actual);
      measured.emplace_back(static_cast<int32_t>(outcome.active),
                            outcome.accuracy);
    }
    if (drift_monitor_ != nullptr) {
      drift_monitor_->Observe(
          std::string("error_") +
              estimators::EstimatorKindName(outcome.active),
          error_accountant_->EwmaRelativeError(outcome.active),
          static_cast<int64_t>(clock_.now()), ordinal + 1);
    }
    if (audit_trail_ != nullptr) audit_trail_->ResolveQuery(measured);
  }
  if (flight_recorder_ != nullptr &&
      config_.quality.flight_tick_every_queries > 0 &&
      (ordinal + 1) % config_.quality.flight_tick_every_queries == 0) {
    flight_recorder_->Tick(static_cast<int64_t>(clock_.now()), ordinal + 1);
  }

  if (traced) {
    obs::QueryTrace trace;
    trace.query_ordinal = ordinal;
    trace.timestamp = static_cast<int64_t>(clock_.now());
    trace.phase = static_cast<int32_t>(outcome.phase);
    trace.active_estimator = static_cast<int32_t>(outcome.active);
    trace.stage_ms[static_cast<uint32_t>(obs::TraceStage::kTokenize)] =
        tokenize_ms;
    trace.stage_ms[static_cast<uint32_t>(obs::TraceStage::kGroundTruth)] =
        ground_truth_ms;
    trace.stage_ms[static_cast<uint32_t>(obs::TraceStage::kEstimate)] =
        estimate_ms;
    trace.stage_ms[static_cast<uint32_t>(obs::TraceStage::kModelUpdate)] =
        model_ms;
    trace.total_ms = total_watch.ElapsedMillis() + tokenize_ms;
    telemetry_->traces().Record(trace);
  }

  // Query-driven SLO evaluation: stamps breach events with stream event
  // time (the server's ticker thread stamps 0).
  if (config_.slo_eval_every_queries > 0 &&
      (ordinal + 1) % config_.slo_eval_every_queries == 0) {
    slo_monitor_->EvaluateAll(static_cast<int64_t>(clock_.now()));
  }

  // Postmortem on the healthy -> degraded edge (one bundle per episode,
  // not per breached tick). Requires a configured directory.
  const bool degraded_now = slo_monitor_->degraded();
  if (degraded_now && !was_degraded_ && flight_recorder_ != nullptr &&
      !config_.quality.postmortem_dir.empty()) {
    (void)DumpPostmortem("slo_breach");
  }
  was_degraded_ = degraded_now;
}

void LatestModule::RecordSwitchAudit(const stream::Query& q,
                                     const std::array<double, 3>& weights,
                                     estimators::EstimatorKind to,
                                     estimators::EstimatorKind recommended,
                                     bool had_prefilled_candidate) {
  if (audit_trail_ == nullptr) return;
  obs::SwitchAuditEntry entry;
  entry.timestamp = static_cast<int64_t>(clock_.now());
  entry.query_count = queries_counter_->value();
  entry.trigger = had_prefilled_candidate ? "prefill" : "tree_infer";
  const ml::FeatureVector features = BuildFeatures(q);
  entry.features.reserve(features.categorical.size() +
                         features.numeric.size());
  for (const int categorical : features.categorical) {
    entry.features.push_back(static_cast<double>(categorical));
  }
  entry.features.insert(entry.features.end(), features.numeric.begin(),
                        features.numeric.end());
  entry.scores.assign(estimators::kNumEstimatorKinds, 0.0);
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    if (!IsEnabled(kind)) continue;
    entry.scores[k] =
        scoreboard_.WeightedScore(kind, weights, config_.alpha).value_or(0.0);
  }
  entry.from_estimator = static_cast<int32_t>(active_kind_);
  entry.chosen_estimator = static_cast<int32_t>(to);
  entry.recommended_estimator = static_cast<int32_t>(recommended);
  entry.monitor_accuracy = accuracy_monitor_.Mean();
  audit_trail_->Record(std::move(entry), estimators::kNumEstimatorKinds);
}

util::Result<std::string> LatestModule::DumpPostmortem(
    const std::string& reason, std::string dir) {
  if (flight_recorder_ == nullptr) {
    return util::Status::InvalidArgument(
        "quality observability is disabled (config.quality.enabled)");
  }
  if (dir.empty()) dir = config_.quality.postmortem_dir;
  if (dir.empty()) {
    return util::Status::InvalidArgument(
        "no postmortem directory configured");
  }
  // Capture a final frame so the bundle always includes the state at the
  // moment of the trigger, not just the last periodic tick.
  flight_recorder_->Tick(static_cast<int64_t>(clock_.now()),
                         queries_counter_->value());
  std::vector<std::string> annotations;
  annotations.push_back(std::string("phase=") + PhaseName(phase_));
  annotations.push_back(std::string("active_estimator=") +
                        estimators::EstimatorKindName(active_kind_));
  for (const std::string& rule : slo_monitor_->BreachedRules()) {
    annotations.push_back("breached_rule=" + rule);
  }
  util::Result<std::string> written =
      flight_recorder_->WriteBundle(dir, reason, annotations);
  if (written.ok()) {
    obs::Event event = MakeEvent(obs::EventType::kPostmortemDumped);
    event.note = reason;
    telemetry_->events().Append(event);
  }
  return written;
}

uint64_t LatestModule::objects_ingested() const {
  return objects_counter_->value();
}

uint64_t LatestModule::queries_answered() const {
  return queries_counter_->value();
}

uint64_t LatestModule::model_retrains() const {
  return retrains_counter_->value();
}

}  // namespace latest::core
