#include "core/scoreboard.h"

namespace latest::core {

Scoreboard::Scoreboard(double ewma_alpha) : ewma_alpha_(ewma_alpha) {
  for (auto& row : cells_) {
    for (auto& cell : row) cell = Cell(ewma_alpha_);
  }
}

void Scoreboard::AttachTelemetry(obs::MetricsRegistry* registry) {
  for (uint32_t t = 0; t < kNumTypes; ++t) {
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      CellGauges& handles = gauges_[t][k];
      if (registry == nullptr) {
        handles = CellGauges{};
        continue;
      }
      const obs::LabelSet labels = {
          {"type", stream::QueryTypeName(static_cast<stream::QueryType>(t))},
          {"estimator",
           estimators::EstimatorKindName(
               static_cast<estimators::EstimatorKind>(k))}};
      handles.accuracy = registry->GetGauge(
          "latest_scoreboard_accuracy",
          "EWMA accuracy per (query type, estimator) scoreboard cell",
          labels);
      handles.latency_ms = registry->GetGauge(
          "latest_scoreboard_latency_ms",
          "EWMA Estimate latency per scoreboard cell (ms)", labels);
      handles.records = registry->GetCounter(
          "latest_scoreboard_records_total",
          "Measurements recorded per scoreboard cell", labels);
    }
  }
}

void Scoreboard::PublishCell(stream::QueryType type,
                             estimators::EstimatorKind kind) {
  const CellGauges& handles =
      gauges_[static_cast<uint32_t>(type)][static_cast<uint32_t>(kind)];
  if (handles.accuracy == nullptr) return;
  const Cell& cell = CellOf(type, kind);
  handles.accuracy->Set(cell.accuracy.Value());
  handles.latency_ms->Set(cell.latency_ms.Value());
}

void Scoreboard::Record(stream::QueryType type,
                        const EstimatorMeasurement& m) {
  Cell& cell = CellOf(type, m.kind);
  cell.accuracy.Add(m.accuracy);
  cell.latency_ms.Add(m.latency_ms);
  ++cell.count;
  latency_scaler_.Observe(m.latency_ms);
  const CellGauges& handles =
      gauges_[static_cast<uint32_t>(type)][static_cast<uint32_t>(m.kind)];
  if (handles.records != nullptr) handles.records->Increment();
  PublishCell(type, m.kind);
}

std::optional<double> Scoreboard::Score(stream::QueryType type,
                                        estimators::EstimatorKind kind,
                                        double alpha) const {
  const Cell& cell = CellOf(type, kind);
  if (cell.count == 0) return std::nullopt;
  const double latency_norm = latency_scaler_.Scale(cell.latency_ms.Value());
  return BlendedScore(cell.accuracy.Value(), latency_norm, alpha);
}

estimators::EstimatorKind Scoreboard::BestFor(
    stream::QueryType type, double alpha,
    std::optional<estimators::EstimatorKind> exclude) const {
  estimators::EstimatorKind best = estimators::EstimatorKind::kRsh;
  double best_score = -1.0;
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    if (exclude.has_value() && kind == *exclude) continue;
    const auto score = Score(type, kind, alpha);
    if (score.has_value() && *score > best_score) {
      best_score = *score;
      best = kind;
    }
  }
  if (best_score < 0.0 && exclude.has_value() && best == *exclude) {
    // Nothing measured and the fallback is excluded: pick any other kind.
    best = estimators::EstimatorKind::kH4096;
  }
  return best;
}

std::optional<double> Scoreboard::WeightedScore(
    estimators::EstimatorKind kind, const std::array<double, 3>& weights,
    double alpha) const {
  double score = 0.0;
  double weight_total = 0.0;
  for (uint32_t t = 0; t < kNumTypes; ++t) {
    if (weights[t] <= 0.0) continue;
    const auto s = Score(static_cast<stream::QueryType>(t), kind, alpha);
    if (!s.has_value()) continue;
    score += weights[t] * (*s);
    weight_total += weights[t];
  }
  if (weight_total <= 0.0) return std::nullopt;
  return score / weight_total;
}

estimators::EstimatorKind Scoreboard::WeightedBestFor(
    const std::array<double, 3>& weights, double alpha,
    std::optional<estimators::EstimatorKind> exclude) const {
  estimators::EstimatorKind best = estimators::EstimatorKind::kRsh;
  double best_score = -1.0;
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    if (exclude.has_value() && kind == *exclude) continue;
    const auto score = WeightedScore(kind, weights, alpha);
    if (score.has_value() && *score > best_score) {
      best_score = *score;
      best = kind;
    }
  }
  if (best_score < 0.0 && exclude.has_value() && best == *exclude) {
    best = estimators::EstimatorKind::kH4096;
  }
  return best;
}

double Scoreboard::AccuracyOf(stream::QueryType type,
                              estimators::EstimatorKind kind) const {
  return CellOf(type, kind).accuracy.Value();
}

double Scoreboard::LatencyOf(stream::QueryType type,
                             estimators::EstimatorKind kind) const {
  return CellOf(type, kind).latency_ms.Value();
}

void Scoreboard::Reset() {
  for (auto& row : cells_) {
    for (auto& cell : row) cell = Cell(ewma_alpha_);
  }
  latency_scaler_.Reset();
}


void Scoreboard::Serialize(util::BinaryWriter* writer,
                           bool include_latency) const {
  writer->WriteU32(kNumTypes);
  writer->WriteU32(estimators::kNumEstimatorKinds);
  for (const auto& row : cells_) {
    for (const Cell& cell : row) {
      writer->WriteBool(!cell.accuracy.empty());
      writer->WriteDouble(cell.accuracy.Value());
      if (include_latency) {
        writer->WriteBool(!cell.latency_ms.empty());
        writer->WriteDouble(cell.latency_ms.Value());
      }
      writer->WriteU64(cell.count);
    }
  }
  if (include_latency) {
    writer->WriteU64(latency_scaler_.count());
    writer->WriteDouble(latency_scaler_.min());
    writer->WriteDouble(latency_scaler_.max());
  }
}

util::Status Scoreboard::Restore(util::BinaryReader* reader) {
  auto fail = [this](const char* what) {
    Reset();
    return util::Status::InvalidArgument(
        std::string("corrupt scoreboard snapshot: ") + what);
  };
  uint32_t types;
  uint32_t kinds;
  if (!reader->ReadU32(&types) || types != kNumTypes ||
      !reader->ReadU32(&kinds) || kinds != estimators::kNumEstimatorKinds) {
    return fail("shape mismatch");
  }
  for (auto& row : cells_) {
    for (Cell& cell : row) {
      bool acc_seeded;
      double acc;
      bool lat_seeded;
      double lat;
      uint64_t count;
      if (!reader->ReadBool(&acc_seeded) || !reader->ReadDouble(&acc) ||
          !reader->ReadBool(&lat_seeded) || !reader->ReadDouble(&lat) ||
          !reader->ReadU64(&count)) {
        return fail("truncated cell");
      }
      cell.accuracy.Restore(acc, acc_seeded);
      cell.latency_ms.Restore(lat, lat_seeded);
      cell.count = count;
    }
  }
  uint64_t scaler_count;
  double scaler_min;
  double scaler_max;
  if (!reader->ReadU64(&scaler_count) || !reader->ReadDouble(&scaler_min) ||
      !reader->ReadDouble(&scaler_max)) {
    return fail("truncated scaler");
  }
  latency_scaler_.Restore(scaler_min, scaler_max, scaler_count);
  return util::Status::Ok();
}

}  // namespace latest::core
