// EstimationService: a string-keyword facade over LatestModule.
//
// LatestModule works with interned keyword ids, which is the right
// interface inside a system. Applications, however, hold raw posts and
// query strings. The service owns a keyword dictionary and a tokenizer
// and exposes:
//
//   service.IngestPost(oid, lon, lat, "House fire near #downtown", t);
//   auto est = service.EstimateCount(area, {"fire", "#downtown"}, t);
//
// Unknown query keywords (never seen on the stream) are dropped before
// estimation; a query reduced to no predicates is rejected.

#ifndef LATEST_CORE_ESTIMATION_SERVICE_H_
#define LATEST_CORE_ESTIMATION_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/latest_module.h"
#include "stream/keyword_dictionary.h"
#include "stream/tokenizer.h"

namespace latest::core {

/// High-level geo-textual estimation API with string keywords.
class EstimationService {
 public:
  /// Fails with InvalidArgument on a bad module configuration.
  static util::Result<std::unique_ptr<EstimationService>> Create(
      const LatestConfig& config,
      const stream::TokenizerOptions& tokenizer_options =
          stream::TokenizerOptions());

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Ingests one raw post: the text is tokenized and interned.
  /// Timestamps must be non-decreasing.
  void IngestPost(stream::ObjectId oid, const geo::Point& location,
                  std::string_view text, stream::Timestamp timestamp);

  /// Ingests a post with pre-split keyword strings (no tokenization).
  void IngestKeywords(stream::ObjectId oid, const geo::Point& location,
                      const std::vector<std::string>& keywords,
                      stream::Timestamp timestamp);

  /// Estimates the number of window posts inside `range` (optional)
  /// carrying at least one of `keywords` (optional, strings). Returns
  /// InvalidArgument when both predicates are absent or every keyword is
  /// unknown and no range is given.
  util::Result<QueryOutcome> EstimateCount(
      const std::optional<geo::Rect>& range,
      const std::vector<std::string>& keywords, stream::Timestamp timestamp);

  /// Number of distinct keywords interned so far.
  size_t vocabulary_size() const { return dictionary_.size(); }

  /// How often a keyword string has appeared on the stream (0 if never).
  uint64_t KeywordOccurrences(std::string_view keyword) const;

  const LatestModule& module() const { return *module_; }
  LatestModule& module() { return *module_; }
  const stream::KeywordDictionary& dictionary() const { return dictionary_; }

 private:
  EstimationService(std::unique_ptr<LatestModule> module,
                    const stream::TokenizerOptions& tokenizer_options);

  std::unique_ptr<LatestModule> module_;
  stream::KeywordDictionary dictionary_;
  stream::Tokenizer tokenizer_;

  // Service-layer telemetry (owned by the module's registry).
  obs::Counter* posts_counter_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* dropped_keywords_counter_ = nullptr;
  obs::Gauge* vocabulary_gauge_ = nullptr;
};

}  // namespace latest::core

#endif  // LATEST_CORE_ESTIMATION_SERVICE_H_
