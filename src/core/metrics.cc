#include "core/metrics.h"

#include <algorithm>
#include <cmath>

namespace latest::core {

double RelativeError(double estimate, uint64_t actual) {
  // Selectivities are counts: a raw estimate below zero (possible from
  // scaled or learned estimators) carries no more information than zero
  // and must not be penalized past the all-miss error.
  const double clamped = std::max(0.0, estimate);
  const double denom = std::max<double>(1.0, static_cast<double>(actual));
  return std::abs(clamped - static_cast<double>(actual)) / denom;
}

double EstimationAccuracy(double estimate, uint64_t actual) {
  return std::max(0.0, 1.0 - RelativeError(estimate, actual));
}

double BlendedScore(double accuracy, double latency_norm, double alpha) {
  return (1.0 - alpha) * accuracy + alpha * (1.0 - latency_norm);
}

}  // namespace latest::core
