#include "core/metrics.h"

#include <algorithm>
#include <cmath>

namespace latest::core {

double RelativeError(double estimate, uint64_t actual) {
  const double denom = std::max<double>(1.0, static_cast<double>(actual));
  return std::abs(estimate - static_cast<double>(actual)) / denom;
}

double EstimationAccuracy(double estimate, uint64_t actual) {
  return std::max(0.0, 1.0 - RelativeError(estimate, actual));
}

double BlendedScore(double accuracy, double latency_norm, double alpha) {
  return (1.0 - alpha) * accuracy + alpha * (1.0 - latency_norm);
}

}  // namespace latest::core
