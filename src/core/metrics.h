// Estimation quality metrics used across LATEST.

#ifndef LATEST_CORE_METRICS_H_
#define LATEST_CORE_METRICS_H_

#include <cstdint>

namespace latest::core {

/// Estimation accuracy in [0, 1]: 1 - relative error, floored at 0.
/// accuracy = max(0, 1 - |max(estimate, 0) - actual| / max(actual, 1)).
double EstimationAccuracy(double estimate, uint64_t actual);

/// Relative error (unclamped above, estimate floored at 0):
/// |max(estimate, 0) - actual| / max(actual, 1).
double RelativeError(double estimate, uint64_t actual);

/// The alpha-blended reward of Section V-C. `latency_norm` is min-max
/// normalized latency in [0, 1] (0 = fastest observed). alpha = 0 weighs
/// accuracy only; alpha = 1 weighs latency only.
double BlendedScore(double accuracy, double latency_norm, double alpha);

}  // namespace latest::core

#endif  // LATEST_CORE_METRICS_H_
