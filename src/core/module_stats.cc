#include "core/module_stats.h"

#include <cstdio>

namespace latest::core {

ModuleStats LatestModule::GetStats() const {
  ModuleStats stats;
  stats.phase = phase_;
  stats.active = active_kind_;
  stats.has_candidate = candidate_kind_.has_value();
  if (stats.has_candidate) stats.candidate = *candidate_kind_;
  // Lifetime counters live in the telemetry registry; the snapshot is a
  // view over it.
  stats.objects_ingested = objects_counter_->value();
  stats.queries_answered = queries_counter_->value();
  stats.window_population = window_population_.total();
  stats.monitor_accuracy = accuracy_monitor_.Mean();
  stats.switches = switches_counter_->value();
  stats.prefills_started = prefills_started_counter_->value();
  stats.prefills_aborted = prefills_aborted_counter_->value();
  stats.model_retrains = retrains_counter_->value();
  stats.model_records = model_->num_trained();
  stats.model_leaves = model_->num_leaves();
  stats.model_depth = model_->depth();
  stats.events_logged = telemetry_->events().total_appended();
  stats.traces_recorded = telemetry_->traces().recorded();
  for (uint32_t t = 0; t < 3; ++t) {
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      const auto type = static_cast<stream::QueryType>(t);
      const auto kind = static_cast<estimators::EstimatorKind>(k);
      stats.scoreboard[t][k].accuracy = scoreboard_.AccuracyOf(type, kind);
      stats.scoreboard[t][k].latency_ms = scoreboard_.LatencyOf(type, kind);
      stats.enabled[k] = IsEnabled(kind);
    }
  }
  return stats;
}

std::string FormatStats(const ModuleStats& stats) {
  std::string out;
  char line[256];

  std::snprintf(line, sizeof(line),
                "phase=%s active=%s%s%s monitor_accuracy=%.3f\n",
                PhaseName(stats.phase),
                estimators::EstimatorKindName(stats.active),
                stats.has_candidate ? " prefilling=" : "",
                stats.has_candidate
                    ? estimators::EstimatorKindName(stats.candidate)
                    : "",
                stats.monitor_accuracy);
  out += line;

  std::snprintf(line, sizeof(line),
                "objects=%llu queries=%llu window=%llu switches=%llu "
                "retrains=%llu\n",
                static_cast<unsigned long long>(stats.objects_ingested),
                static_cast<unsigned long long>(stats.queries_answered),
                static_cast<unsigned long long>(stats.window_population),
                static_cast<unsigned long long>(stats.switches),
                static_cast<unsigned long long>(stats.model_retrains));
  out += line;

  std::snprintf(line, sizeof(line),
                "model: %llu records, %llu leaves, depth %u\n",
                static_cast<unsigned long long>(stats.model_records),
                static_cast<unsigned long long>(stats.model_leaves),
                stats.model_depth);
  out += line;

  std::snprintf(line, sizeof(line),
                "telemetry: %llu events, %llu traces, prefills %llu "
                "started / %llu aborted\n",
                static_cast<unsigned long long>(stats.events_logged),
                static_cast<unsigned long long>(stats.traces_recorded),
                static_cast<unsigned long long>(stats.prefills_started),
                static_cast<unsigned long long>(stats.prefills_aborted));
  out += line;

  out += "scoreboard (EWMA accuracy / latency ms):\n";
  std::snprintf(line, sizeof(line), "  %-9s", "type");
  out += line;
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    if (!stats.enabled[k]) continue;
    std::snprintf(line, sizeof(line), " %14s",
                  estimators::EstimatorKindName(
                      static_cast<estimators::EstimatorKind>(k)));
    out += line;
  }
  out += "\n";
  for (uint32_t t = 0; t < 3; ++t) {
    std::snprintf(line, sizeof(line), "  %-9s",
                  stream::QueryTypeName(static_cast<stream::QueryType>(t)));
    out += line;
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      if (!stats.enabled[k]) continue;
      const CellStats& cell = stats.scoreboard[t][k];
      std::snprintf(line, sizeof(line), " %6.3f/%7.4f", cell.accuracy,
                    cell.latency_ms);
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace latest::core
