// Continuous estimation subscriptions over a LATEST module.
//
// The paper targets snapshot estimation queries; real deployments
// (dashboards, alerting, the disaster-monitoring scenario of Section I)
// re-ask the same question continuously. The subscription manager holds
// standing RC-DVQ queries and re-evaluates each one on its own event-time
// period as the stream advances, invoking a callback with the fresh
// QueryOutcome. Periodic re-evaluation over the sliding window is the
// standard way to turn a snapshot estimator into a continuous one.
//
// Usage:
//   SubscriptionManager subs(module.get());
//   auto id = subs.Subscribe(query, /*period_ms=*/60'000,
//                            [](const SubscriptionEvent& e) { ... });
//   // In the ingest loop, after module->OnObject(obj):
//   subs.OnAdvance(obj.timestamp);

#ifndef LATEST_CORE_SUBSCRIPTION_MANAGER_H_
#define LATEST_CORE_SUBSCRIPTION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/latest_module.h"

namespace latest::core {

/// Identifier of a standing subscription.
using SubscriptionId = uint64_t;

/// One delivery of a subscription's fresh estimate.
struct SubscriptionEvent {
  SubscriptionId id = 0;
  stream::Timestamp fired_at = 0;
  QueryOutcome outcome;
};

/// Manages standing estimation queries over one module.
class SubscriptionManager {
 public:
  using Callback = std::function<void(const SubscriptionEvent&)>;

  /// The module must outlive the manager.
  explicit SubscriptionManager(LatestModule* module);

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  /// Registers a standing query re-evaluated every `period_ms` of event
  /// time, starting one period after `start_ms` (default: the first
  /// OnAdvance). Returns InvalidArgument for an empty query or a
  /// non-positive period.
  util::Result<SubscriptionId> Subscribe(const stream::Query& query,
                                         stream::Timestamp period_ms,
                                         Callback callback,
                                         stream::Timestamp start_ms = -1);

  /// Cancels a subscription; false when the id is unknown.
  bool Unsubscribe(SubscriptionId id);

  /// Advances event time (call after every ingested object or external
  /// clock tick; `now_ms` non-decreasing). Fires every subscription whose
  /// deadline passed — multiple missed periods coalesce into a single
  /// fresh evaluation. Returns the number of evaluations fired.
  uint32_t OnAdvance(stream::Timestamp now_ms);

  size_t active_subscriptions() const { return subscriptions_.size(); }

  /// Total evaluations delivered across all subscriptions.
  uint64_t events_delivered() const { return events_delivered_; }

 private:
  struct Subscription {
    SubscriptionId id;
    stream::Query query;
    stream::Timestamp period_ms;
    stream::Timestamp next_fire_ms;  // -1: armed on first OnAdvance.
    Callback callback;
  };

  LatestModule* module_;
  std::vector<Subscription> subscriptions_;
  SubscriptionId next_id_ = 1;
  uint64_t events_delivered_ = 0;
};

}  // namespace latest::core

#endif  // LATEST_CORE_SUBSCRIPTION_MANAGER_H_
