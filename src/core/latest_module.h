// LatestModule: the learning-assisted selectivity estimation module
// (Section V).
//
// The module consumes the interleaved stream of geo-textual objects and
// RC-DVQ estimation queries and drives the paper's three-phase lifecycle:
//
//   1. Warm-up (t < T): all estimation structures are pre-filled from
//      arriving objects; no query training happens.
//   2. Pre-training (`pretrain_queries` queries): every query runs on all
//      six estimators; measured accuracy and latency (min-max normalized,
//      alpha-blended) label training records for the Hoeffding tree.
//   3. Incremental learning: a single active estimator answers queries.
//      Ground-truth selectivities from the exact evaluator (the "system
//      log") keep training the tree and feed a moving-average accuracy
//      monitor. When the average drops below beta*tau the tree-recommended
//      replacement starts pre-filling; below tau the module switches to
//      it. If accuracy recovers above beta*tau first, the pre-filled
//      candidate is discarded.
//
// Evaluation support: with `maintain_shadow_estimators` every estimator
// stays alive and is measured on every query — exactly how the paper
// produces its per-estimator timelines while LATEST's selection is
// highlighted. Production deployments leave it off: only the active (and
// a pre-filling candidate) structure is maintained.

#ifndef LATEST_CORE_LATEST_MODULE_H_
#define LATEST_CORE_LATEST_MODULE_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/scoreboard.h"
#include "estimators/estimator.h"
#include "estimators/space_saving.h"
#include "exact/exact_evaluator.h"
#include "ml/hoeffding_tree.h"
#include "obs/audit_trail.h"
#include "obs/drift_detector.h"
#include "obs/error_accounting.h"
#include "obs/flight_recorder.h"
#include "obs/pool_metrics.h"
#include "obs/slo_monitor.h"
#include "obs/statusz.h"
#include "obs/telemetry.h"
#include "stream/object.h"
#include "stream/query.h"
#include "stream/sliding_window.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace latest::core {

struct ModuleStats;  // core/module_stats.h

/// Stream lifecycle phases (Figure 2).
enum class Phase {
  kWarmup = 0,
  kPretraining = 1,
  kIncremental = 2,
};

/// Returns "warmup", "pretraining", or "incremental".
const char* PhaseName(Phase phase);

/// Configuration of the LATEST module.
struct LatestConfig {
  /// Spatial domain of the stream.
  geo::Rect bounds;

  /// Shared time window (T and its slicing).
  stream::WindowConfig window;

  /// Estimator portfolio parameters. `bounds`, `window`, and `seed` are
  /// overwritten from the fields above.
  estimators::EstimatorConfig estimator;

  /// Incremental learner parameters. The defaults here are looser than
  /// the WEKA defaults (grace 100, delta 1e-3, tie 0.15) so the tree
  /// develops structure within laptop-scale query volumes; the paper's
  /// 100K-query streams reach stability with the stock WEKA bounds.
  ml::HoeffdingTreeConfig tree{
      .grace_period = 100,
      .split_confidence = 1e-3,
      .tie_threshold = 0.15,
  };

  /// Relative importance of latency vs accuracy in the learning reward
  /// (Section V-C): 0 = accuracy only, 1 = latency only.
  double alpha = 0.5;

  /// Accuracy switch threshold tau (Section V-D).
  double tau = 0.62;

  /// Pre-fill threshold factor beta in (0, 1): pre-filling starts when the
  /// moving accuracy falls below beta... i.e. accuracy < tau / beta ...
  /// precisely: pre-fill when accuracy < beta_prefill_threshold() and
  /// switch when accuracy < tau, with prefill threshold = tau / beta > tau
  /// conceptually. The paper defines pre-fill at beta * tau with
  /// 0 < beta < 1 and switch at tau; since beta * tau < tau, we follow the
  /// paper's *intent* (anticipate the switch) by pre-filling at the HIGHER
  /// threshold tau / beta and switching at tau.
  double beta = 0.875;

  /// Blended-score regret trigger: a switch is also considered when the
  /// scoreboard knows an alternative whose alpha-blended score for the
  /// current query type beats the active estimator's by this margin —
  /// how the paper's Fig. 5 switch happens (RSH accuracy is fine in
  /// absolute terms but H4096 clearly dominates on both measures).
  /// 0 disables the trigger.
  double regret_margin = 0.08;

  /// Queries evaluated on all estimators during pre-training.
  uint32_t pretrain_queries = 400;

  /// Moving window (queries) of the accuracy monitor.
  uint32_t monitor_window = 128;

  /// Minimum queries between consecutive switches (hysteresis).
  uint32_t min_queries_between_switches = 256;

  /// Estimator employed when the incremental phase starts (RSH in the
  /// paper).
  estimators::EstimatorKind default_estimator =
      estimators::EstimatorKind::kRsh;

  /// Which portfolio members this deployment uses ("system administrators
  /// can select a different set of estimators", Section IV). At least two
  /// must be enabled, including the default estimator; disabled kinds are
  /// never built, measured, or recommended.
  std::array<bool, estimators::kNumEstimatorKinds> enabled_estimators = {
      true, true, true, true, true, true, /*CMS=*/false};

  /// Automatic model retraining (Section V-D): when the mean relative
  /// error of answered queries since the last (re)training exceeds this
  /// threshold, the Hoeffding tree is dropped and re-grows from
  /// subsequent records. 0 disables the trigger.
  double auto_retrain_error_threshold = 0.0;

  /// Minimum queries between automatic retrainings.
  uint32_t min_queries_between_retrains = 512;

  /// Keep all estimators alive and measured per query (evaluation mode).
  bool maintain_shadow_estimators = false;

  /// Telemetry sizing: lifecycle event-log capacity and query-trace
  /// sampling (see obs/telemetry.h). Always on; costs a few relaxed
  /// atomics per query.
  obs::TelemetryConfig telemetry;

  /// Worker threads of the module's estimation pool: pre-training (and
  /// shadow-mode) portfolio measurement fans each query out across the
  /// enabled estimators, and spatial ground truth shards grid-row bands.
  /// 0 (the default) runs everything inline on the caller's thread. The
  /// lifecycle is deterministic in this knob: measurements land in
  /// pre-sized slots and every order-sensitive side effect (scoreboard
  /// EWMAs, estimator feedback, tree training) happens serially after
  /// the join, so — latency measurements aside — any thread count
  /// produces the same selections, labels, and estimates. Object
  /// ingestion (estimator Insert) intentionally stays single-threaded:
  /// inserts mutate every estimator's window state and are ordered by
  /// the stream.
  uint32_t num_threads = 0;

  /// Live introspection plane (obs/statusz.h). When enabled, Create()
  /// starts an embedded HTTP server on 127.0.0.1:`introspection_port`
  /// serving /metrics, /vars, /healthz, /statusz, and /tracez; a port of
  /// 0 binds an ephemeral one (read it back via introspection()->port()).
  /// All introspection fields are deliberately EXCLUDED from the
  /// SaveState configuration fingerprint — the exposition plane never
  /// affects lifecycle state, so snapshots stay interchangeable between
  /// instrumented and dark deployments.
  bool enable_introspection = false;
  uint16_t introspection_port = 0;

  /// Cadence (ms) of the introspection server's SLO ticker thread; 0
  /// leaves SLO evaluation purely query-driven.
  uint32_t slo_tick_ms = 1000;

  /// Declarative SLO rules (obs/slo_monitor.h) evaluated against the
  /// module's metrics registry. Empty with introspection enabled
  /// installs obs::DefaultLatestSloRules(tau).
  std::vector<obs::SloRule> slo_rules;

  /// Additionally evaluate the SLO rules every N answered queries on the
  /// stream thread (0 = ticker only). Query-driven evaluation stamps
  /// breach events with stream event time instead of 0.
  uint32_t slo_eval_every_queries = 0;

  /// Estimation-quality observability (obs/error_accounting.h,
  /// obs/drift_detector.h, obs/audit_trail.h, obs/flight_recorder.h).
  /// Strictly observational — none of it feeds lifecycle decisions or
  /// snapshots — so, like the introspection fields above, every member
  /// is EXCLUDED from the SaveState configuration fingerprint.
  struct QualityObs {
    /// Master switch for the whole quality plane (error accounting,
    /// drift detectors, audit trail, flight recorder).
    bool enabled = true;
    /// Switch-audit ring capacity and counterfactual window (queries).
    uint32_t audit_capacity = 256;
    uint32_t audit_resolution_window = 32;
    /// Detector parameters for every monitored drift series (Page-Hinkley
    /// slack/threshold, AdwinLite confidence/window, cooldown). The
    /// scenario replay harness pins per-scenario detection-delay bounds
    /// against these knobs; like everything else in the quality plane
    /// they are observational and fingerprint-excluded.
    obs::DriftMonitor::Options drift;
    /// Flight-recorder frames retained, and the frame cadence in
    /// answered queries (0 disables frame capture).
    uint32_t flight_frames = 120;
    uint32_t flight_tick_every_queries = 64;
    /// When non-empty, an SLO-degradation edge automatically dumps a
    /// postmortem bundle into this directory.
    std::string postmortem_dir;
  } quality;

  /// Seed for all randomized components.
  uint64_t seed = 42;

  /// The pre-fill (anticipation) accuracy threshold.
  double PrefillThreshold() const { return tau / beta; }

  util::Status Validate() const;
};

/// One switch of the active estimator.
struct SwitchEvent {
  uint64_t query_index = 0;  // Incremental-phase query ordinal.
  stream::Timestamp timestamp = 0;
  estimators::EstimatorKind from = estimators::EstimatorKind::kRsh;
  estimators::EstimatorKind to = estimators::EstimatorKind::kRsh;
};

/// Per-query wall-time attribution of the module's internal stages,
/// filled by OnQueryBatch for the serving plane's request waterfalls.
/// Strictly observational: three double stores per query, no influence
/// on estimates or phase bookkeeping.
struct QueryStageBreakdown {
  double ground_truth_ms = 0.0;
  double estimate_ms = 0.0;
  /// Learning-model time: tree inference plus training for this query.
  double model_ms = 0.0;
};

/// Result of one estimation query.
struct QueryOutcome {
  double estimate = 0.0;
  uint64_t actual = 0;
  double accuracy = 0.0;
  double latency_ms = 0.0;
  estimators::EstimatorKind active = estimators::EstimatorKind::kRsh;
  Phase phase = Phase::kWarmup;
  bool switched = false;
  /// Moving-average accuracy of the active estimator after this query.
  double monitor_accuracy = 0.0;
  /// Per-estimator measurements; filled during pre-training and in shadow
  /// mode (empty otherwise).
  std::vector<EstimatorMeasurement> measurements;
};

/// The LATEST module.
class LatestModule {
 public:
  /// Fails with InvalidArgument on a bad configuration.
  static util::Result<std::unique_ptr<LatestModule>> Create(
      const LatestConfig& config);

  LatestModule(const LatestModule&) = delete;
  LatestModule& operator=(const LatestModule&) = delete;

  /// Ingests one stream object (timestamps non-decreasing across objects
  /// and queries).
  void OnObject(const stream::GeoTextObject& obj);

  /// Answers one estimation query and performs all phase bookkeeping.
  /// `tokenize_ms` lets the service layer attribute string tokenization /
  /// interning time to the query's trace (0 for pre-interned queries).
  QueryOutcome OnQuery(const stream::Query& q, double tokenize_ms = 0.0);

  /// Answers `k` queries admitted as one batch (the serving plane's tick).
  /// Ground truth for the whole batch is computed first through
  /// ExactEvaluator::TrueSelectivityBatch — so the batch kernels see real
  /// batches — then per-query clock advance, estimation, training, and
  /// switch bookkeeping run serially in arrival order. Outcomes are
  /// bit-identical to calling OnQuery on each query in sequence: counts
  /// filter by each query's own window cutoff, and the module-wide
  /// non-decreasing-timestamp contract means interleaved eviction can
  /// only remove objects already outside every later cutoff.
  /// `tokenize_ms`, when non-null, carries one entry per query.
  /// `stages`, when non-null, receives one QueryStageBreakdown per query
  /// (ground-truth time amortized over the batch pass).
  void OnQueryBatch(const stream::Query* queries, size_t k,
                    QueryOutcome* outcomes,
                    const double* tokenize_ms = nullptr,
                    QueryStageBreakdown* stages = nullptr);

  /// Currently employed estimator kind.
  estimators::EstimatorKind active_kind() const { return active_kind_; }

  /// Pre-filling candidate, if a switch is being anticipated.
  std::optional<estimators::EstimatorKind> candidate_kind() const {
    return candidate_kind_;
  }

  Phase phase() const { return phase_; }

  /// All switches performed so far.
  const std::vector<SwitchEvent>& switch_log() const { return switch_log_; }

  /// Learning-model recommendation for a query (introspection; also used
  /// by the Table II experiment).
  estimators::EstimatorKind Recommend(const stream::Query& q) const;

  const Scoreboard& scoreboard() const { return scoreboard_; }
  const ml::HoeffdingTree& model() const { return *model_; }

  /// Objects currently inside the window.
  uint64_t window_population() const { return window_population_.total(); }

  /// Objects ingested over the stream lifetime (telemetry-backed).
  uint64_t objects_ingested() const;

  /// Queries answered over the stream lifetime (telemetry-backed).
  uint64_t queries_answered() const;

  const LatestConfig& config() const { return config_; }

  /// Drops the learned model (the paper's manual retraining trigger); it
  /// re-grows from subsequent training records.
  void ResetModel();

  /// Automatic model retrainings performed so far (telemetry-backed).
  uint64_t model_retrains() const;

  /// Metrics registry, lifecycle event log, and sampled query traces.
  obs::Telemetry& telemetry() { return *telemetry_; }
  const obs::Telemetry& telemetry() const { return *telemetry_; }

  /// Declarative SLO monitor over the module's registry (always present;
  /// rules come from LatestConfig::slo_rules or the defaults).
  obs::SloMonitor& slo_monitor() { return *slo_monitor_; }
  const obs::SloMonitor& slo_monitor() const { return *slo_monitor_; }

  /// The embedded introspection server, or null when
  /// LatestConfig::enable_introspection is false.
  obs::IntrospectionServer* introspection() { return introspection_.get(); }
  const obs::IntrospectionServer* introspection() const {
    return introspection_.get();
  }

  /// Estimation-quality observability components; null when
  /// LatestConfig::quality.enabled is false.
  obs::ErrorAccountant* error_accountant() { return error_accountant_.get(); }
  const obs::ErrorAccountant* error_accountant() const {
    return error_accountant_.get();
  }
  obs::DriftMonitor* drift_monitor() { return drift_monitor_.get(); }
  const obs::DriftMonitor* drift_monitor() const {
    return drift_monitor_.get();
  }
  obs::SwitchAuditTrail* audit_trail() { return audit_trail_.get(); }
  const obs::SwitchAuditTrail* audit_trail() const {
    return audit_trail_.get();
  }
  obs::FlightRecorder* flight_recorder() { return flight_recorder_.get(); }
  const obs::FlightRecorder* flight_recorder() const {
    return flight_recorder_.get();
  }

  /// Dumps a flight-recorder postmortem bundle into `dir` (defaults to
  /// config().quality.postmortem_dir). Returns the bundle path. Fails
  /// when the quality plane is disabled or the directory is unusable.
  util::Result<std::string> DumpPostmortem(const std::string& reason,
                                           std::string dir = "");

  /// Point-in-time introspection snapshot (see core/module_stats.h).
  ModuleStats GetStats() const;

  /// Persists the COMPLETE lifecycle — phase machine, clock, window
  /// contents, every live estimator, model, scoreboard, monitors, and
  /// lifetime counters — so a crashed process resumes bit-identically
  /// after WAL replay (src/persist/). The buffer carries a configuration
  /// fingerprint; LoadState refuses snapshots from an incompatible
  /// configuration.
  void SaveState(util::BinaryWriter* writer) const;

  /// Restores a snapshot written by SaveState into a freshly created
  /// module with the same configuration. On failure the module is in an
  /// unspecified (but not unsafe) state and must be discarded.
  util::Status LoadState(util::BinaryReader* reader);

  /// Same layout as SaveState minus the wall-clock statistics (the
  /// scoreboard's latency side) — the only lifecycle state two runs over
  /// the same event stream legitimately differ on. Two alpha = 0 runs
  /// fed identical streams produce bitwise-identical digests, which is
  /// what the recovery tests and the crash smoke compare. NOT loadable
  /// by LoadState.
  void SaveDeterministicState(util::BinaryWriter* writer) const;

  /// Persists the learned state — the Hoeffding tree and the scoreboard —
  /// so a restarted deployment resumes its recommendations without a new
  /// pre-training phase. (Window contents are NOT persisted: stream data
  /// expires within one window anyway; the restarted module re-fills
  /// structures during its warm-up.)
  std::string SerializeLearnedState() const;

  /// Restores learned state written by SerializeLearnedState. The module
  /// configuration (alpha, portfolio, tree schema) must be compatible.
  /// On failure the model/scoreboard are reset and an error is returned.
  util::Status RestoreLearnedState(std::string_view snapshot);

  /// True iff the kind is part of this deployment's portfolio.
  bool IsEnabled(estimators::EstimatorKind kind) const {
    return config_.enabled_estimators[static_cast<uint32_t>(kind)];
  }

 private:
  explicit LatestModule(const LatestConfig& config);

  /// Lazily constructs the estimator instance for a kind.
  estimators::Estimator* EnsureInstance(estimators::EstimatorKind kind);
  void DestroyInstance(estimators::EstimatorKind kind);
  estimators::Estimator* instance(estimators::EstimatorKind kind) {
    return instances_[static_cast<uint32_t>(kind)].get();
  }

  /// Advances event time; fans slice rotations out to all live structures.
  void AdvanceClock(stream::Timestamp t);

  /// Estimate scaled for partial pre-fill, plus measured latency/accuracy.
  EstimatorMeasurement Measure(estimators::Estimator* est,
                               const stream::Query& q, uint64_t actual) const;

  /// Measures every kind in `kinds` (instances must exist), writing each
  /// result into its pre-sized slot. Fans out across pool_ when it has
  /// workers; otherwise runs inline in `kinds` order. No shared mutable
  /// state is touched: Record/OnFeedback stay with the caller, after the
  /// join.
  void MeasurePortfolio(
      const std::vector<uint32_t>& kinds, const stream::Query& q,
      uint64_t actual,
      std::array<EstimatorMeasurement, estimators::kNumEstimatorKinds>*
          slots) const;

  /// Builds the learning-model feature vector for a query.
  ml::FeatureVector BuildFeatures(const stream::Query& q) const;

  /// Moves from pre-training to the incremental phase.
  void ConcludePretraining();

  /// Pre-fill / discard / switch logic after an incremental query.
  bool MaybeSwitch(const stream::Query& q, uint64_t query_index);

  /// Registers the module's metric handles against telemetry_.
  void RegisterMetrics();

  /// Shared body of SaveState/SaveDeterministicState.
  void SaveStateImpl(util::BinaryWriter* writer,
                     bool include_wall_clock) const;

  /// Base lifecycle event stamped with clock, query count, phase, and
  /// monitor accuracy.
  obs::Event MakeEvent(obs::EventType type) const;

  /// Emits kPhaseChanged and updates the phase gauge.
  void EnterPhase(Phase next);

  /// Shared body of OnQuery / OnQueryBatch. A non-null
  /// `precomputed_actual` skips the per-query ground-truth pass and
  /// charges `precomputed_truth_ms` to the trace instead.
  QueryOutcome OnQueryImpl(const stream::Query& q, double tokenize_ms,
                           const uint64_t* precomputed_actual,
                           double precomputed_truth_ms);

  /// Per-query telemetry tail: counters, gauges, histograms, and the
  /// sampled stage trace.
  void FinishQuery(const stream::Query& q, const QueryOutcome& outcome,
                   bool traced, uint64_t ordinal, double tokenize_ms,
                   double ground_truth_ms, double estimate_ms,
                   double model_ms, const util::Stopwatch& total_watch);

  /// Stage attribution of the most recent query (written by FinishQuery,
  /// read back by OnQueryBatch for its `stages` out-array). Plain member:
  /// the module is single-threaded by contract.
  QueryStageBreakdown last_stage_breakdown_;

  LatestConfig config_;
  Phase phase_ = Phase::kWarmup;

  /// Estimation pool (inline when config_.num_threads == 0): portfolio
  /// fan-out and grid-sharded ground truth. Declared before system_log_,
  /// which borrows it, so the pool outlives its borrowers.
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<obs::ThreadPoolMetrics> pool_metrics_;

  stream::SliceClock clock_;
  stream::WindowPopulation window_population_;
  exact::ExactEvaluator system_log_;
  std::vector<uint64_t> batch_truths_;  // OnQueryBatch scratch.

  std::array<std::unique_ptr<estimators::Estimator>,
             estimators::kNumEstimatorKinds>
      instances_;
  estimators::EstimatorKind active_kind_;
  std::optional<estimators::EstimatorKind> candidate_kind_;

  std::unique_ptr<ml::HoeffdingTree> model_;
  Scoreboard scoreboard_;
  util::MovingAverage accuracy_monitor_;
  util::MovingAverage recent_spatial_ratio_;
  util::MovingAverage recent_keyword_ratio_;
  util::MovingAverage recent_hybrid_ratio_;

  /// Recent workload mix as (spatial, keyword, hybrid) fractions.
  std::array<double, 3> RecentTypeWeights() const;

  /// Stream keyword statistics for the keyword-selectivity feature.
  estimators::SpaceSavingCounter keyword_stats_;
  double keyword_objects_ = 0.0;
  double keyword_decay_;

  /// Picks an enabled replacement when a recommendation lands on a
  /// disabled kind (or the active one).
  estimators::EstimatorKind ClampToEnabled(estimators::EstimatorKind kind,
                                           bool exclude_active) const;

  /// Tracks error since the last (re)training and fires the automatic
  /// retraining trigger of Section V-D.
  void TrackModelError(double relative_error);

  uint64_t pretrain_seen_ = 0;
  uint64_t incremental_queries_ = 0;
  uint64_t last_switch_query_ = 0;
  std::vector<SwitchEvent> switch_log_;

  double error_since_retrain_ = 0.0;
  uint64_t queries_since_retrain_ = 0;

  /// Telemetry: the registry is the source of truth for lifetime
  /// counters; ModuleStats is a view over it (core/module_stats.h).
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<obs::SloMonitor> slo_monitor_;
  std::unique_ptr<obs::IntrospectionServer> introspection_;

  /// Estimation-quality plane (null when config_.quality.enabled is
  /// false). Strictly observational: fed from the query/ingest paths,
  /// never read back by lifecycle decisions, never persisted.
  std::unique_ptr<obs::ErrorAccountant> error_accountant_;
  std::unique_ptr<obs::DriftMonitor> drift_monitor_;
  std::unique_ptr<obs::SwitchAuditTrail> audit_trail_;
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;

  /// Records the decision context of a switch into the audit trail.
  void RecordSwitchAudit(const stream::Query& q,
                         const std::array<double, 3>& weights,
                         estimators::EstimatorKind to,
                         estimators::EstimatorKind recommended,
                         bool had_prefilled_candidate);

  /// Ingest-feature drift state: per-slice keyword vocabulary and
  /// spatial centroid accumulators, folded into the drift monitor at
  /// slice rotation. Not part of any persisted or fingerprinted state.
  std::unordered_map<stream::KeywordId, uint64_t> vocab_last_slice_;
  uint64_t ingest_slice_index_ = 0;
  uint64_t slice_distinct_keywords_ = 0;
  uint64_t slice_new_keywords_ = 0;
  double slice_sum_x_ = 0.0;
  double slice_sum_y_ = 0.0;
  uint64_t slice_objects_ = 0;
  bool centroid_initialized_ = false;
  double centroid_x_ = 0.0;
  double centroid_y_ = 0.0;

  /// SLO-degradation edge for automatic postmortem dumps.
  bool was_degraded_ = false;
  obs::Counter* objects_counter_ = nullptr;
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* switches_counter_ = nullptr;
  obs::Counter* prefills_started_counter_ = nullptr;
  obs::Counter* prefills_aborted_counter_ = nullptr;
  obs::Counter* retrains_counter_ = nullptr;
  obs::Gauge* phase_gauge_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* candidate_gauge_ = nullptr;
  obs::Gauge* monitor_accuracy_gauge_ = nullptr;
  obs::Gauge* window_population_gauge_ = nullptr;
  obs::Gauge* store_live_rows_gauge_ = nullptr;
  obs::Gauge* store_arena_bytes_gauge_ = nullptr;
  obs::Gauge* store_slices_gauge_ = nullptr;
  obs::Gauge* model_records_gauge_ = nullptr;
  obs::Gauge* model_leaves_gauge_ = nullptr;
  obs::Gauge* model_depth_gauge_ = nullptr;
  obs::Gauge* kernel_tier_gauge_ = nullptr;
  obs::Histogram* accuracy_histogram_ = nullptr;
  obs::Histogram* batch_size_histogram_ = nullptr;
  std::array<obs::Histogram*, estimators::kNumEstimatorKinds>
      estimator_latency_histograms_{};

  /// Threshold-crossing edge detection for the event log.
  bool monitor_below_prefill_ = false;
  bool monitor_below_tau_ = false;
};

}  // namespace latest::core

#endif  // LATEST_CORE_LATEST_MODULE_H_
