// Introspection snapshot of a running LATEST module.
//
// Operators watching a deployment need one call that answers: which
// estimator is live, how is it doing, what does the scoreboard believe
// about the alternatives, and how large has the learning model grown.
// `LatestModule::GetStats()` fills this snapshot; `FormatStats` renders
// it as a compact human-readable report (used by the examples).

#ifndef LATEST_CORE_MODULE_STATS_H_
#define LATEST_CORE_MODULE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "core/latest_module.h"

namespace latest::core {

/// Scoreboard snapshot for one (query type, estimator) cell.
struct CellStats {
  double accuracy = 0.0;    // EWMA accuracy; 0 when never measured.
  double latency_ms = 0.0;  // EWMA latency.
};

/// Point-in-time snapshot of a LatestModule.
struct ModuleStats {
  Phase phase = Phase::kWarmup;
  estimators::EstimatorKind active = estimators::EstimatorKind::kRsh;
  bool has_candidate = false;
  estimators::EstimatorKind candidate = estimators::EstimatorKind::kRsh;

  uint64_t objects_ingested = 0;
  uint64_t queries_answered = 0;
  uint64_t window_population = 0;
  double monitor_accuracy = 0.0;  // Moving accuracy of the active member.

  uint64_t switches = 0;
  uint64_t prefills_started = 0;
  uint64_t prefills_aborted = 0;
  uint64_t model_retrains = 0;
  uint64_t model_records = 0;
  uint64_t model_leaves = 0;
  uint32_t model_depth = 0;

  /// Telemetry volumes: lifecycle events appended and query traces
  /// recorded (both over the module lifetime, before ring eviction).
  uint64_t events_logged = 0;
  uint64_t traces_recorded = 0;

  /// Per query type x estimator kind scoreboard cells.
  std::array<std::array<CellStats, estimators::kNumEstimatorKinds>, 3>
      scoreboard;
  /// Whether the kind is part of the deployment's portfolio.
  std::array<bool, estimators::kNumEstimatorKinds> enabled = {};
};

/// Renders the snapshot as a multi-line report.
std::string FormatStats(const ModuleStats& stats);

}  // namespace latest::core

#endif  // LATEST_CORE_MODULE_STATS_H_
