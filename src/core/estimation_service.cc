#include "core/estimation_service.h"

#include "util/stopwatch.h"

namespace latest::core {

util::Result<std::unique_ptr<EstimationService>> EstimationService::Create(
    const LatestConfig& config,
    const stream::TokenizerOptions& tokenizer_options) {
  auto module = LatestModule::Create(config);
  if (!module.ok()) return module.status();
  return std::unique_ptr<EstimationService>(new EstimationService(
      std::move(module).value(), tokenizer_options));
}

EstimationService::EstimationService(
    std::unique_ptr<LatestModule> module,
    const stream::TokenizerOptions& tokenizer_options)
    : module_(std::move(module)), tokenizer_(tokenizer_options) {
  obs::MetricsRegistry& registry = module_->telemetry().registry();
  posts_counter_ = registry.GetCounter(
      "latest_service_posts_total", "Raw posts ingested through the service");
  requests_counter_ = registry.GetCounter(
      "latest_service_requests_total",
      "EstimateCount requests received by the service");
  rejected_counter_ = registry.GetCounter(
      "latest_service_requests_rejected_total",
      "EstimateCount requests rejected before reaching the module");
  dropped_keywords_counter_ = registry.GetCounter(
      "latest_service_unknown_keywords_total",
      "Query keywords dropped because they never appeared on the stream");
  vocabulary_gauge_ = registry.GetGauge(
      "latest_service_vocabulary_size", "Distinct keywords interned");
}

void EstimationService::IngestPost(stream::ObjectId oid,
                                   const geo::Point& location,
                                   std::string_view text,
                                   stream::Timestamp timestamp) {
  IngestKeywords(oid, location, tokenizer_.Tokenize(text), timestamp);
}

void EstimationService::IngestKeywords(
    stream::ObjectId oid, const geo::Point& location,
    const std::vector<std::string>& keywords, stream::Timestamp timestamp) {
  stream::GeoTextObject obj;
  obj.oid = oid;
  obj.loc = location;
  obj.timestamp = timestamp;
  obj.keywords.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    obj.keywords.push_back(dictionary_.Intern(keyword));
  }
  stream::CanonicalizeKeywords(&obj.keywords);
  dictionary_.CountOccurrences(obj.keywords);
  posts_counter_->Increment();
  vocabulary_gauge_->Set(static_cast<double>(dictionary_.size()));
  module_->OnObject(obj);
}

util::Result<QueryOutcome> EstimationService::EstimateCount(
    const std::optional<geo::Rect>& range,
    const std::vector<std::string>& keywords, stream::Timestamp timestamp) {
  requests_counter_->Increment();
  const util::Stopwatch tokenize_watch;
  stream::Query q;
  q.range = range;
  q.timestamp = timestamp;
  for (const std::string& keyword : keywords) {
    stream::KeywordId id;
    // Unknown keywords have never appeared in the window: they cannot
    // match anything and are dropped from the predicate.
    if (dictionary_.Lookup(keyword, &id)) {
      q.keywords.push_back(id);
    } else {
      dropped_keywords_counter_->Increment();
    }
  }
  stream::CanonicalizeKeywords(&q.keywords);
  const double tokenize_ms = tokenize_watch.ElapsedMillis();

  if (!q.HasRange() && !q.HasKeywords()) {
    if (!keywords.empty()) {
      // Every requested keyword is unknown: the true count is zero.
      QueryOutcome outcome;
      outcome.phase = module_->phase();
      outcome.active = module_->active_kind();
      outcome.accuracy = 1.0;
      return outcome;
    }
    rejected_counter_->Increment();
    return util::Status::InvalidArgument(
        "query needs a spatial range or at least one keyword");
  }
  if (range.has_value() && !range->IsValid()) {
    rejected_counter_->Increment();
    return util::Status::InvalidArgument("spatial range has no area");
  }
  return module_->OnQuery(q, tokenize_ms);
}

uint64_t EstimationService::KeywordOccurrences(
    std::string_view keyword) const {
  stream::KeywordId id;
  if (!dictionary_.Lookup(keyword, &id)) return 0;
  return dictionary_.OccurrenceCount(id);
}

}  // namespace latest::core
