// Shared POSIX socket plumbing for the network planes.
//
// Both socket surfaces of the system — the introspection HTTP server
// (obs/http_server) and the query-serving RPC plane (net/serve_server) —
// need the same handful of primitives: an RAII file descriptor, a
// loopback listener with the bound port read back, non-blocking mode,
// a self-pipe to wake a poll loop, and a retrying full-buffer send.
// They live here, dependency-free below both layers, so the two servers
// share one audited implementation instead of two copies.

#ifndef LATEST_NET_SOCKET_H_
#define LATEST_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/status.h"

namespace latest::net {

/// Owning file descriptor: closes on destruction, moves, never copies.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.Release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the held descriptor (if any) and optionally adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds 127.0.0.1:`port` (0 picks an ephemeral port), listens with
/// `backlog`, and resolves the actually-bound port into `*bound_port`.
util::Result<Fd> ListenLoopback(uint16_t port, int backlog,
                                uint16_t* bound_port);

/// Connects to 127.0.0.1:`port` (blocking).
util::Result<Fd> ConnectLoopback(uint16_t port);

/// Switches the descriptor to non-blocking mode.
util::Status SetNonBlocking(int fd);

/// Sets SO_RCVTIMEO and SO_SNDTIMEO (blocking sockets only).
void SetIoTimeouts(int fd, int timeout_ms);

/// Disables Nagle's algorithm (small RPC frames must not wait 40 ms).
void SetNoDelay(int fd);

/// Sends the whole buffer on a blocking socket, retrying on EINTR;
/// false on any other error or timeout.
bool SendAll(int fd, const char* data, size_t size);

/// A pipe whose read end wakes a poll loop: any thread calls Notify(),
/// the poll loop includes read_fd() in its fd set and calls Drain() when
/// it becomes readable. Both ends are close-on-destruction.
class SelfPipe {
 public:
  SelfPipe() = default;
  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  /// Creates the pipe (non-blocking read end). Idempotent failure: an
  /// unopened pipe has read_fd() == -1.
  util::Status Open();
  void Close();

  int read_fd() const { return read_end_.get(); }
  bool valid() const { return read_end_.valid(); }

  /// Wakes the poll loop. Safe from any thread; a full pipe is fine
  /// (the loop is already scheduled to wake).
  void Notify();

  /// Consumes all pending wake bytes.
  void Drain();

 private:
  Fd read_end_;
  Fd write_end_;
};

}  // namespace latest::net

#endif  // LATEST_NET_SOCKET_H_
