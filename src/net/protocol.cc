#include "net/protocol.h"

#include <cstring>

#include "util/serialization.h"

namespace latest::net {

namespace {

/// Replaces the placeholder length at `header_at` once the payload size
/// is known, then copies the finished frame into `out`.
void FinishFrame(FrameType type, const util::BinaryWriter& payload,
                 std::string* out) {
  const uint32_t len = static_cast<uint32_t>(payload.buffer().size());
  char header[kFrameHeaderBytes];
  std::memcpy(header, &len, sizeof(len));
  header[4] = static_cast<char>(type);
  out->append(header, kFrameHeaderBytes);
  out->append(payload.buffer());
}

void WriteKeywords(const std::vector<stream::KeywordId>& keywords,
                   util::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(keywords.size()));
  w->WriteBytes(keywords.data(),
                keywords.size() * sizeof(stream::KeywordId));
}

bool ReadKeywords(util::BinaryReader* r,
                  std::vector<stream::KeywordId>* keywords) {
  uint32_t count = 0;
  if (!r->ReadU32(&count) || count > kMaxKeywordsPerFrame) return false;
  if (r->remaining() < count * sizeof(stream::KeywordId)) return false;
  keywords->resize(count);
  return r->ReadBytes(keywords->data(),
                      count * sizeof(stream::KeywordId));
}

void WriteTraceContext(const WireTraceContext& trace,
                       util::BinaryWriter* w) {
  if (!trace.present) return;
  w->WriteU64(trace.trace_id);
  const uint8_t flags = trace.sampled ? kTraceFlagSampled : 0;
  w->WriteBytes(&flags, 1);
}

/// Consumes the optional trailer. After the keywords the reader is
/// either exhausted (no trailer) or holds exactly kTraceContextBytes;
/// anything else — including unknown flag bits — is a reject.
bool ReadTraceContext(util::BinaryReader* r, WireTraceContext* trace) {
  if (r->exhausted()) {
    *trace = WireTraceContext{};
    return true;
  }
  if (r->remaining() != kTraceContextBytes) return false;
  uint8_t flags = 0;
  if (!r->ReadU64(&trace->trace_id) || !r->ReadBytes(&flags, 1)) {
    return false;
  }
  if ((flags & ~kTraceFlagSampled) != 0) return false;
  trace->present = true;
  trace->sampled = (flags & kTraceFlagSampled) != 0;
  return true;
}

}  // namespace

bool IsRequestType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kIngest:
    case FrameType::kQuery:
    case FrameType::kStatus:
    case FrameType::kHello:
      return true;
    default:
      return false;
  }
}

void EncodeIngest(const IngestRequest& req, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(req.request_id);
  w.WriteU64(req.object.oid);
  w.WriteDouble(req.object.loc.x);
  w.WriteDouble(req.object.loc.y);
  w.WriteI64(req.object.timestamp);
  WriteKeywords(req.object.keywords, &w);
  WriteTraceContext(req.trace, &w);
  FinishFrame(FrameType::kIngest, w, out);
}

void EncodeQuery(const QueryRequest& req, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(req.request_id);
  w.WriteI64(req.query.timestamp);
  w.WriteU32(req.query.HasRange() ? 1 : 0);
  if (req.query.HasRange()) {
    w.WriteDouble(req.query.range->min_x);
    w.WriteDouble(req.query.range->min_y);
    w.WriteDouble(req.query.range->max_x);
    w.WriteDouble(req.query.range->max_y);
  }
  WriteKeywords(req.query.keywords, &w);
  WriteTraceContext(req.trace, &w);
  FinishFrame(FrameType::kQuery, w, out);
}

void EncodeStatus(const StatusRequest& req, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(req.request_id);
  FinishFrame(FrameType::kStatus, w, out);
}

void EncodeHello(const HelloRequest& req, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(req.request_id);
  w.WriteU32(req.protocol_version);
  w.WriteU32(req.feature_flags);
  FinishFrame(FrameType::kHello, w, out);
}

void EncodeIngestAck(const IngestAck& ack, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(ack.request_id);
  FinishFrame(FrameType::kIngestAck, w, out);
}

void EncodeQueryResponse(const QueryResponse& resp, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(resp.request_id);
  w.WriteDouble(resp.estimate);
  w.WriteU64(resp.actual);
  w.WriteU32(resp.phase);
  w.WriteU32(resp.active_kind);
  FinishFrame(FrameType::kQueryResponse, w, out);
}

void EncodeStatusResponse(const StatusResponse& resp, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(resp.request_id);
  w.WriteU32(resp.phase);
  w.WriteU32(resp.active_kind);
  w.WriteU64(resp.objects_ingested);
  w.WriteU64(resp.queries_answered);
  w.WriteU64(resp.shed);
  FinishFrame(FrameType::kStatusResponse, w, out);
}

void EncodeRetryLater(const RetryLater& retry, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(retry.request_id);
  w.WriteU32(retry.rejected_type);
  w.WriteU32(retry.backoff_hint_ms);
  FinishFrame(FrameType::kRetryLater, w, out);
}

void EncodeError(const ErrorFrame& error, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(error.request_id);
  w.WriteString(error.message);
  FinishFrame(FrameType::kError, w, out);
}

void EncodeHelloAck(const HelloAck& ack, std::string* out) {
  util::BinaryWriter w;
  w.WriteU64(ack.request_id);
  w.WriteU32(ack.protocol_version);
  w.WriteU32(ack.feature_flags);
  FinishFrame(FrameType::kHelloAck, w, out);
}

bool DecodeIngest(std::string_view payload, IngestRequest* out) {
  util::BinaryReader r(payload);
  if (!r.ReadU64(&out->request_id)) return false;
  if (!r.ReadU64(&out->object.oid)) return false;
  if (!r.ReadDouble(&out->object.loc.x)) return false;
  if (!r.ReadDouble(&out->object.loc.y)) return false;
  if (!r.ReadI64(&out->object.timestamp)) return false;
  if (!ReadKeywords(&r, &out->object.keywords)) return false;
  if (!ReadTraceContext(&r, &out->trace)) return false;
  return r.exhausted();
}

bool DecodeQuery(std::string_view payload, QueryRequest* out) {
  util::BinaryReader r(payload);
  if (!r.ReadU64(&out->request_id)) return false;
  if (!r.ReadI64(&out->query.timestamp)) return false;
  uint32_t has_range = 0;
  if (!r.ReadU32(&has_range) || has_range > 1) return false;
  if (has_range == 1) {
    geo::Rect range;
    if (!r.ReadDouble(&range.min_x)) return false;
    if (!r.ReadDouble(&range.min_y)) return false;
    if (!r.ReadDouble(&range.max_x)) return false;
    if (!r.ReadDouble(&range.max_y)) return false;
    out->query.range = range;
  } else {
    out->query.range.reset();
  }
  if (!ReadKeywords(&r, &out->query.keywords)) return false;
  if (!ReadTraceContext(&r, &out->trace)) return false;
  // An RC-DVQ query carries at least one predicate.
  if (!out->query.HasRange() && !out->query.HasKeywords()) return false;
  return r.exhausted();
}

bool DecodeStatus(std::string_view payload, StatusRequest* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) && r.exhausted();
}

bool DecodeHello(std::string_view payload, HelloRequest* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) &&
         r.ReadU32(&out->protocol_version) &&
         r.ReadU32(&out->feature_flags) && r.exhausted();
}

bool DecodeIngestAck(std::string_view payload, IngestAck* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) && r.exhausted();
}

bool DecodeQueryResponse(std::string_view payload, QueryResponse* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) && r.ReadDouble(&out->estimate) &&
         r.ReadU64(&out->actual) && r.ReadU32(&out->phase) &&
         r.ReadU32(&out->active_kind) && r.exhausted();
}

bool DecodeStatusResponse(std::string_view payload, StatusResponse* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) && r.ReadU32(&out->phase) &&
         r.ReadU32(&out->active_kind) &&
         r.ReadU64(&out->objects_ingested) &&
         r.ReadU64(&out->queries_answered) && r.ReadU64(&out->shed) &&
         r.exhausted();
}

bool DecodeRetryLater(std::string_view payload, RetryLater* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) && r.ReadU32(&out->rejected_type) &&
         r.ReadU32(&out->backoff_hint_ms) && r.exhausted();
}

bool DecodeError(std::string_view payload, ErrorFrame* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) && r.ReadString(&out->message) &&
         r.exhausted();
}

bool DecodeHelloAck(std::string_view payload, HelloAck* out) {
  util::BinaryReader r(payload);
  return r.ReadU64(&out->request_id) &&
         r.ReadU32(&out->protocol_version) &&
         r.ReadU32(&out->feature_flags) && r.exhausted();
}

void FrameReader::Append(const char* data, size_t size) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // don't grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameReader::Outcome FrameReader::Next(Frame* out) {
  if (poisoned_) return Outcome::kProtocolError;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Outcome::kNeedMore;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, buffer_.data() + consumed_,
              sizeof(payload_len));
  const uint8_t type =
      static_cast<uint8_t>(buffer_[consumed_ + 4]);
  // Any known frame type passes here (the reader serves both client and
  // server ends); direction policy is the dispatcher's concern.
  if (payload_len > kMaxPayloadBytes || type < 1 || type > 10) {
    poisoned_ = true;
    return Outcome::kProtocolError;
  }
  if (available < kFrameHeaderBytes + payload_len) {
    return Outcome::kNeedMore;
  }
  out->type = type;
  out->payload = std::string_view(
      buffer_.data() + consumed_ + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return Outcome::kFrame;
}

}  // namespace latest::net
