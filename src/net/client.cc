#include "net/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace latest::net {

util::Result<std::unique_ptr<ServeClient>> ServeClient::Connect(
    uint16_t port, int io_timeout_ms) {
  auto fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  if (io_timeout_ms > 0) SetIoTimeouts(fd->get(), io_timeout_ms);
  SetNoDelay(fd->get());
  return std::unique_ptr<ServeClient>(
      new ServeClient(std::move(fd).value()));
}

util::Result<std::unique_ptr<ServeClient>> ServeClient::ConnectNegotiated(
    uint16_t port, int io_timeout_ms) {
  auto client = Connect(port, io_timeout_ms);
  if (!client.ok()) return client;
  HelloRequest hello;
  hello.request_id = 1;
  std::string bytes;
  EncodeHello(hello, &bytes);
  if (client.value()->SendRaw(bytes).ok()) {
    auto resp = client.value()->ReadResponse();
    if (resp.ok() && resp->type == FrameType::kHelloAck &&
        (resp->hello.feature_flags & kFeatureTraceContext) != 0) {
      client.value()->trace_enabled_ = true;
      return client;
    }
  }
  // Anything else — ERROR frame, closed connection, timeout — means a
  // server that does not speak HELLO. It poisoned (or is closing) the
  // connection, so start over untraced.
  return Connect(port, io_timeout_ms);
}

util::Status ServeClient::SendRaw(const std::string& bytes) {
  if (!SendAll(fd_.get(), bytes.data(), bytes.size())) {
    return util::Status::Internal("send failed: " +
                                  std::string(std::strerror(errno)));
  }
  return util::Status::Ok();
}

util::Status ServeClient::SendIngest(const IngestRequest& req) {
  std::string bytes;
  EncodeIngest(req, &bytes);
  return SendRaw(bytes);
}

util::Status ServeClient::SendQuery(const QueryRequest& req) {
  std::string bytes;
  EncodeQuery(req, &bytes);
  return SendRaw(bytes);
}

util::Status ServeClient::SendStatus(const StatusRequest& req) {
  std::string bytes;
  EncodeStatus(req, &bytes);
  return SendRaw(bytes);
}

util::Result<ServeResponse> ServeClient::ReadResponse() {
  char buffer[16 * 1024];
  for (;;) {
    FrameReader::Frame frame;
    const FrameReader::Outcome outcome = reader_.Next(&frame);
    if (outcome == FrameReader::Outcome::kProtocolError) {
      return util::Status::DataLoss("malformed frame from server");
    }
    if (outcome == FrameReader::Outcome::kFrame) {
      ServeResponse resp;
      resp.type = static_cast<FrameType>(frame.type);
      bool ok = false;
      switch (resp.type) {
        case FrameType::kIngestAck:
          ok = DecodeIngestAck(frame.payload, &resp.ack);
          break;
        case FrameType::kQueryResponse:
          ok = DecodeQueryResponse(frame.payload, &resp.query);
          break;
        case FrameType::kStatusResponse:
          ok = DecodeStatusResponse(frame.payload, &resp.status);
          break;
        case FrameType::kRetryLater:
          ok = DecodeRetryLater(frame.payload, &resp.retry);
          break;
        case FrameType::kError:
          ok = DecodeError(frame.payload, &resp.error);
          break;
        case FrameType::kHelloAck:
          ok = DecodeHelloAck(frame.payload, &resp.hello);
          break;
        default:
          ok = false;  // Request-typed frame from the server.
          break;
      }
      if (!ok) return util::Status::DataLoss("bad response payload");
      return resp;
    }
    // kNeedMore: block for more bytes.
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      reader_.Append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return util::Status::Internal("connection closed");
    return util::Status::Internal("recv failed: " +
                                  std::string(std::strerror(errno)));
  }
}

}  // namespace latest::net
