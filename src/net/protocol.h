// Wire protocol of the query-serving data plane.
//
// Frames are length-prefixed binary, little-endian, dependency-free:
//
//   u32 payload_len   (bytes after the 5-byte header; capped at 1 MiB)
//   u8  frame_type    (FrameType)
//   ...payload        (per-type layout below, util::BinaryWriter format)
//
// Request payloads:
//   INGEST  : u64 request_id, u64 oid, f64 x, f64 y, i64 timestamp,
//             u32 num_keywords, u32 keyword[num_keywords]
//             [, trace-context trailer]
//   QUERY   : u64 request_id, i64 timestamp, u32 has_range,
//             [f64 min_x, f64 min_y, f64 max_x, f64 max_y when has_range],
//             u32 num_keywords, u32 keyword[num_keywords]
//             [, trace-context trailer]
//   STATUS  : u64 request_id
//   HELLO   : u64 request_id, u32 protocol_version, u32 feature_flags
//
// Response payloads:
//   INGEST_ACK : u64 request_id
//   QUERY_RESP : u64 request_id, f64 estimate, u64 actual, u32 phase,
//                u32 active_kind
//   STATUS_RESP: u64 request_id, u32 phase, u32 active_kind,
//                u64 objects_ingested, u64 queries_answered, u64 shed
//   RETRY_LATER: u64 request_id, u32 rejected_type, u32 backoff_hint_ms
//   ERROR      : u64 request_id (0 when unparseable), string message;
//                the server closes the connection after sending it.
//   HELLO_ACK  : u64 request_id, u32 protocol_version, u32 feature_flags
//
// Trace-context trailer (optional, exactly 9 bytes when present):
//   u64 trace_id, u8 flags (bit 0 = sampled, others must be zero)
// The keyword count makes the base payload length deterministic, so a
// decoder distinguishes "no trailer" (reader exhausted after keywords)
// from "trailer" (exactly 9 bytes remain) without any version field in
// the frame itself. Old decoders reject trailered frames as trailing
// garbage, which is why a new client only attaches trace context after
// a HELLO/HELLO_ACK exchange advertises kFeatureTraceContext; an old
// server instead answers HELLO (an unknown frame type to it) with an
// ERROR and closes, and the client reconnects untraced.
//
// Keyword ids are the server's interned dictionary ids; loadgen and the
// scenario streams speak interned ids natively, so no string tokenization
// crosses the wire. Decoding is strict: trailing payload bytes, oversized
// keyword counts, or truncation reject the frame without UB.

#ifndef LATEST_NET_PROTOCOL_H_
#define LATEST_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "stream/object.h"
#include "stream/query.h"

namespace latest::net {

/// Frame header: u32 payload length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Largest accepted payload. A QUERY/INGEST frame is tens to hundreds of
/// bytes; anything near this cap is a corrupt or hostile peer.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

/// Largest accepted keyword count per frame (also bounds decode cost).
inline constexpr uint32_t kMaxKeywordsPerFrame = 1u << 16;

enum class FrameType : uint8_t {
  kIngest = 1,
  kQuery = 2,
  kStatus = 3,
  kIngestAck = 4,
  kQueryResponse = 5,
  kStatusResponse = 6,
  kRetryLater = 7,
  kError = 8,
  kHello = 9,
  kHelloAck = 10,
};

/// Version advertised in HELLO/HELLO_ACK. Version 1 servers (PR 9) do
/// not speak HELLO at all; version 2 adds the handshake and the
/// trace-context trailer.
inline constexpr uint32_t kProtocolVersion = 2;

/// HELLO/HELLO_ACK feature bits.
inline constexpr uint32_t kFeatureTraceContext = 1u << 0;

/// Trace-context trailer flag bits (u8 on the wire).
inline constexpr uint8_t kTraceFlagSampled = 1u << 0;

/// Wire size of the optional trace-context trailer.
inline constexpr size_t kTraceContextBytes = 9;

/// True for types a client may send.
bool IsRequestType(uint8_t type);

/// Optional request-scoped trace context carried by INGEST/QUERY.
struct WireTraceContext {
  bool present = false;
  uint64_t trace_id = 0;
  bool sampled = false;
};

/// Decoded request frames.
struct IngestRequest {
  uint64_t request_id = 0;
  stream::GeoTextObject object;
  WireTraceContext trace;
};

struct QueryRequest {
  uint64_t request_id = 0;
  stream::Query query;
  WireTraceContext trace;
};

struct StatusRequest {
  uint64_t request_id = 0;
};

struct HelloRequest {
  uint64_t request_id = 0;
  uint32_t protocol_version = kProtocolVersion;
  uint32_t feature_flags = kFeatureTraceContext;
};

/// Decoded response frames.
struct IngestAck {
  uint64_t request_id = 0;
};

struct QueryResponse {
  uint64_t request_id = 0;
  double estimate = 0.0;
  uint64_t actual = 0;
  uint32_t phase = 0;
  uint32_t active_kind = 0;
};

struct StatusResponse {
  uint64_t request_id = 0;
  uint32_t phase = 0;
  uint32_t active_kind = 0;
  uint64_t objects_ingested = 0;
  uint64_t queries_answered = 0;
  uint64_t shed = 0;
};

struct RetryLater {
  uint64_t request_id = 0;
  uint32_t rejected_type = 0;  // FrameType of the shed request.
  uint32_t backoff_hint_ms = 0;
};

struct ErrorFrame {
  uint64_t request_id = 0;
  std::string message;
};

struct HelloAck {
  uint64_t request_id = 0;
  uint32_t protocol_version = kProtocolVersion;
  uint32_t feature_flags = kFeatureTraceContext;
};

/// Encoders: append one complete frame (header + payload) to `out`.
void EncodeIngest(const IngestRequest& req, std::string* out);
void EncodeQuery(const QueryRequest& req, std::string* out);
void EncodeStatus(const StatusRequest& req, std::string* out);
void EncodeHello(const HelloRequest& req, std::string* out);
void EncodeIngestAck(const IngestAck& ack, std::string* out);
void EncodeQueryResponse(const QueryResponse& resp, std::string* out);
void EncodeStatusResponse(const StatusResponse& resp, std::string* out);
void EncodeRetryLater(const RetryLater& retry, std::string* out);
void EncodeError(const ErrorFrame& error, std::string* out);
void EncodeHelloAck(const HelloAck& ack, std::string* out);

/// Payload decoders: strict (reject truncated, oversized, and
/// trailing-byte payloads); false leaves `*out` unspecified.
bool DecodeIngest(std::string_view payload, IngestRequest* out);
bool DecodeQuery(std::string_view payload, QueryRequest* out);
bool DecodeStatus(std::string_view payload, StatusRequest* out);
bool DecodeHello(std::string_view payload, HelloRequest* out);
bool DecodeIngestAck(std::string_view payload, IngestAck* out);
bool DecodeQueryResponse(std::string_view payload, QueryResponse* out);
bool DecodeStatusResponse(std::string_view payload, StatusResponse* out);
bool DecodeRetryLater(std::string_view payload, RetryLater* out);
bool DecodeError(std::string_view payload, ErrorFrame* out);
bool DecodeHelloAck(std::string_view payload, HelloAck* out);

/// Incremental frame scanner over a connection's receive buffer.
///
/// Feed bytes with Append; Next yields complete frames (type + payload
/// view into the internal buffer, valid until the next Append/Next call)
/// until it returns kNeedMore. A frame violating the header rules
/// (unknown type, payload over the cap) poisons the stream: Next returns
/// kProtocolError and the connection must be dropped, since resync inside
/// a length-prefixed stream is impossible.
class FrameReader {
 public:
  enum class Outcome { kFrame, kNeedMore, kProtocolError };

  struct Frame {
    uint8_t type = 0;
    std::string_view payload;
  };

  void Append(const char* data, size_t size);
  Outcome Next(Frame* out);

  /// Bytes buffered but not yet consumed (backpressure accounting).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix already handed out as frames.
  bool poisoned_ = false;
};

}  // namespace latest::net

#endif  // LATEST_NET_PROTOCOL_H_
