#include "net/batcher.h"

#include <algorithm>
#include <chrono>

namespace latest::net {

namespace {

/// Backoff hint grows with queue pressure: an almost-empty queue asks for
/// a few ms, a saturated one for ~100 ms plus headroom.
uint32_t BackoffHint(size_t depth, size_t capacity) {
  if (capacity == 0) return 100;
  const double pressure =
      static_cast<double>(depth) / static_cast<double>(capacity);
  return 5 + static_cast<uint32_t>(pressure * 100.0);
}

}  // namespace

Batcher::Batcher(const BatcherConfig& config) : config_(config) {}

AdmitResult Batcher::Admit(AdmittedEvent event, bool degraded,
                           uint32_t* backoff_hint_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (event.kind == AdmittedEvent::Kind::kQuery) {
    size_t capacity = config_.max_query_queue;
    if (degraded && config_.degraded_divisor > 1) {
      capacity = std::max<size_t>(1, capacity / config_.degraded_divisor);
    }
    if (stopped_ || pending_query_ >= capacity) {
      *backoff_hint_ms = BackoffHint(pending_query_, capacity);
      return AdmitResult::kShedQuery;
    }
    ++pending_query_;
  } else {
    if (stopped_ || pending_ingest_ >= config_.max_ingest_queue) {
      *backoff_hint_ms =
          BackoffHint(pending_ingest_, config_.max_ingest_queue);
      return AdmitResult::kShedIngest;
    }
    ++pending_ingest_;
  }
  event.admit_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  if (event.arrival_micros == 0) event.arrival_micros = event.admit_micros;
  fifo_.push_back(std::move(event));
  const bool fire_now =
      pending_query_ >= config_.max_batch || config_.tick_us == 0;
  const bool first_event = pending_ingest_ + pending_query_ == 1;
  lock.unlock();
  // The consumer only sleeps on an empty queue (first event) or inside
  // the tick window (batch-ready); waking it for every admission would
  // thrash the tick.
  if (fire_now || first_event) cv_.notify_one();
  return AdmitResult::kAdmitted;
}

bool Batcher::WaitForBatch(std::vector<AdmittedEvent>* out) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  // Wait for any work (or shutdown) first, then give the tick window a
  // chance to coalesce more queries before draining.
  cv_.wait(lock, [this] { return stopped_ || !fifo_.empty(); });
  if (fifo_.empty()) return false;  // Stopped and drained.
  if (config_.tick_us > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(config_.tick_us);
    cv_.wait_until(lock, deadline, [this] {
      return stopped_ || pending_query_ >= config_.max_batch;
    });
  }
  const size_t query_cap = std::max<uint32_t>(1, config_.max_batch);
  const int64_t dequeue_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  size_t queries_taken = 0;
  while (!fifo_.empty()) {
    if (fifo_.front().kind == AdmittedEvent::Kind::kQuery) {
      if (queries_taken >= query_cap) break;
      ++queries_taken;
      --pending_query_;
    } else {
      --pending_ingest_;
    }
    fifo_.front().dequeue_micros = dequeue_micros;
    out->push_back(std::move(fifo_.front()));
    fifo_.pop_front();
  }
  return true;
}

void Batcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

size_t Batcher::ingest_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_ingest_;
}

size_t Batcher::query_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_query_;
}

}  // namespace latest::net
