#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace latest::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + " failed: " + std::strerror(errno);
}

}  // namespace

void Fd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

util::Result<Fd> ListenLoopback(uint16_t port, int backlog,
                                uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return util::Status::Internal(Errno("socket()"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return util::Status::Internal(Errno("bind()"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return util::Status::Internal(Errno("listen()"));
  }
  socklen_t addr_len = sizeof(addr);
  if (bound_port != nullptr &&
      ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

util::Result<Fd> ConnectLoopback(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return util::Status::Internal(Errno("socket()"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return util::Status::Internal(Errno("connect()"));
  return fd;
}

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return util::Status::Ok();
}

void SetIoTimeouts(int fd, int timeout_ms) {
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

util::Status SelfPipe::Open() {
  int fds[2];
  if (::pipe(fds) != 0) return util::Status::Internal(Errno("pipe()"));
  read_end_.Reset(fds[0]);
  write_end_.Reset(fds[1]);
  // Non-blocking on both ends: Drain() consumes everything without a
  // final blocking read, and Notify() on a full pipe returns EAGAIN
  // instead of blocking the notifier (the loop is already scheduled to
  // wake in that case).
  (void)SetNonBlocking(read_end_.get());
  (void)SetNonBlocking(write_end_.get());
  return util::Status::Ok();
}

void SelfPipe::Close() {
  read_end_.Reset();
  write_end_.Reset();
}

void SelfPipe::Notify() {
  if (!write_end_.valid()) return;
  const char byte = 1;
  // EAGAIN (pipe full) is success: a wake is already pending. Write is
  // atomic for one byte, so no partial-write handling is needed.
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void SelfPipe::Drain() {
  if (!read_end_.valid()) return;
  char buffer[256];
  while (::read(read_end_.get(), buffer, sizeof(buffer)) > 0) {
  }
}

}  // namespace latest::net
