// Multi-connection load generator for the serve plane.
//
// Replays a scenario-catalog stream (PR 7) against a running ServeServer
// over N concurrent connections. Events are pre-generated once (scenario
// streams are pure functions of their spec) and dealt round-robin across
// connections; each connection thread paces its slice open-loop against
// the scenario's event-time axis (`speedup` event-ms per wall-ms; 0
// floods as fast as the outstanding window allows) and measures
// send-to-response latency per query.

#ifndef LATEST_NET_LOADGEN_H_
#define LATEST_NET_LOADGEN_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace latest::net {

struct LoadgenConfig {
  uint16_t port = 0;
  uint32_t connections = 16;

  /// Scenario-catalog stream to replay (workload::ScenarioNames()).
  std::string scenario = "baseline";
  uint64_t objects = 16000;
  int64_t duration_ms = 8000;
  uint64_t seed = 5;

  /// Event-time ms replayed per wall-clock ms; 0 = flood (no pacing).
  double speedup = 0.0;

  /// Per-connection pipelining window: past this many unanswered
  /// requests the sender blocks on responses (bounds buffer growth on
  /// both ends; large enough to keep server batches full).
  uint32_t max_outstanding = 128;

  int io_timeout_ms = 5000;

  /// Negotiate trace contexts (HELLO) and stamp every request with a
  /// client-generated 64-bit trace id. Falls back to untraced frames
  /// against a server that predates the feature.
  bool trace = true;
  /// Mark every Nth traced request per connection as sampled (its span
  /// tree is recorded server-side). 0 never samples, 1 samples all.
  uint32_t trace_sample_every = 16;
};

struct LoadgenReport {
  uint64_t queries_sent = 0;
  uint64_t queries_answered = 0;
  uint64_t ingests_sent = 0;
  uint64_t ingests_acked = 0;
  uint64_t shed = 0;    // RETRY_LATER responses (either class).
  uint64_t errors = 0;  // Transport failures + unanswered requests.
  uint64_t protocol_errors = 0;  // ERROR frames / undecodable responses.
  double wall_seconds = 0.0;
  double qps = 0.0;  // Answered queries per wall second.
  /// Query send-to-response latency (the headline numbers).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Ingest send-to-ack latency, reported separately: ingests ride the
  /// same admission queue but skip the estimation stage, so their tail
  /// isolates queueing from compute.
  double ingest_p50_ms = 0.0;
  double ingest_p95_ms = 0.0;
  double ingest_p99_ms = 0.0;
  /// Connections whose HELLO negotiation enabled trace contexts.
  uint64_t traced_connections = 0;
};

/// Runs the configured load and blocks until every connection drains.
util::Result<LoadgenReport> RunLoadgen(const LoadgenConfig& config);

}  // namespace latest::net

#endif  // LATEST_NET_LOADGEN_H_
