#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "workload/scenario.h"

namespace latest::net {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Interpolation-free percentile over a sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

/// SplitMix64 finalizer: spreads request ids into well-mixed,
/// never-zero trace ids.
uint64_t TraceIdFor(uint64_t request_id) {
  uint64_t x = request_id + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x | 1;
}

/// One connection's share of the run.
struct WorkerResult {
  uint64_t queries_sent = 0;
  uint64_t queries_answered = 0;
  uint64_t ingests_sent = 0;
  uint64_t ingests_acked = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t protocol_errors = 0;
  bool traced = false;
  std::vector<double> latencies_ms;
  std::vector<double> ingest_latencies_ms;
};

void RunWorker(const LoadgenConfig& config,
               const std::vector<workload::ScenarioEvent>& events,
               uint32_t worker_index, WorkerResult* result) {
  auto client =
      config.trace
          ? ServeClient::ConnectNegotiated(config.port, config.io_timeout_ms)
          : ServeClient::Connect(config.port, config.io_timeout_ms);
  if (!client.ok()) {
    result->errors = 1;
    return;
  }
  result->traced = client.value()->trace_enabled();

  // request_id -> send time (micros) for in-flight requests, per class.
  std::unordered_map<uint64_t, int64_t> inflight_query_sent;
  std::unordered_map<uint64_t, int64_t> inflight_ingest_sent;
  uint64_t outstanding = 0;
  uint64_t next_seq = 1;
  const uint64_t id_base = static_cast<uint64_t>(worker_index + 1) << 48;

  auto handle_response = [&]() -> bool {
    auto resp = client.value()->ReadResponse();
    if (!resp.ok()) {
      ++result->errors;
      return false;
    }
    if (outstanding > 0) --outstanding;
    switch (resp->type) {
      case FrameType::kQueryResponse: {
        ++result->queries_answered;
        const auto it = inflight_query_sent.find(resp->query.request_id);
        if (it != inflight_query_sent.end()) {
          result->latencies_ms.push_back(
              static_cast<double>(NowMicros() - it->second) / 1000.0);
          inflight_query_sent.erase(it);
        }
        break;
      }
      case FrameType::kIngestAck: {
        ++result->ingests_acked;
        const auto it = inflight_ingest_sent.find(resp->ack.request_id);
        if (it != inflight_ingest_sent.end()) {
          result->ingest_latencies_ms.push_back(
              static_cast<double>(NowMicros() - it->second) / 1000.0);
          inflight_ingest_sent.erase(it);
        }
        break;
      }
      case FrameType::kRetryLater:
        ++result->shed;
        inflight_query_sent.erase(resp->retry.request_id);
        inflight_ingest_sent.erase(resp->retry.request_id);
        break;
      case FrameType::kError:
        ++result->protocol_errors;
        return false;
      default:
        ++result->protocol_errors;
        return false;
    }
    return true;
  };

  const int64_t start_micros = NowMicros();
  bool transport_ok = true;
  for (size_t i = worker_index; transport_ok && i < events.size();
       i += config.connections) {
    const workload::ScenarioEvent& event = events[i];

    // Open-loop pacing against the scenario's event-time axis.
    if (config.speedup > 0.0) {
      const int64_t event_ts =
          event.is_query ? event.query.timestamp : event.object.timestamp;
      const int64_t due_micros =
          start_micros +
          static_cast<int64_t>(static_cast<double>(event_ts) * 1000.0 /
                               config.speedup);
      const int64_t now = NowMicros();
      if (due_micros > now) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(due_micros - now));
      }
    }

    while (outstanding >= config.max_outstanding) {
      if (!handle_response()) {
        transport_ok = false;
        break;
      }
    }
    if (!transport_ok) break;

    const uint64_t seq = next_seq++;
    const uint64_t request_id = id_base | seq;
    WireTraceContext trace;
    if (client.value()->trace_enabled()) {
      trace.present = true;
      trace.trace_id = TraceIdFor(request_id);
      trace.sampled = config.trace_sample_every != 0 &&
                      seq % config.trace_sample_every == 0;
    }
    util::Status sent;
    if (event.is_query) {
      inflight_query_sent.emplace(request_id, NowMicros());
      sent = client.value()->SendQuery({request_id, event.query, trace});
      if (sent.ok()) {
        ++result->queries_sent;
        ++outstanding;
      } else {
        inflight_query_sent.erase(request_id);
      }
    } else {
      inflight_ingest_sent.emplace(request_id, NowMicros());
      sent = client.value()->SendIngest({request_id, event.object, trace});
      if (sent.ok()) {
        ++result->ingests_sent;
        ++outstanding;
      } else {
        inflight_ingest_sent.erase(request_id);
      }
    }
    if (!sent.ok()) {
      ++result->errors;
      transport_ok = false;
    }
  }

  // Drain every outstanding response (bounded by the socket timeout).
  while (transport_ok && outstanding > 0) {
    if (!handle_response()) break;
  }
  result->errors += outstanding;
}

}  // namespace

util::Result<LoadgenReport> RunLoadgen(const LoadgenConfig& config) {
  if (config.connections == 0) {
    return util::Status::InvalidArgument("connections must be > 0");
  }
  auto entry = workload::MakeScenario(config.scenario, config.objects,
                                      config.duration_ms, config.seed);
  if (!entry.ok()) return entry.status();

  // Scenario streams are pure: generate the event list once and deal it
  // round-robin across connections.
  std::vector<workload::ScenarioEvent> events;
  workload::ScenarioStream stream(entry->spec);
  while (stream.HasNext()) events.push_back(stream.Next());
  if (events.empty()) {
    return util::Status::InvalidArgument("scenario produced no events");
  }

  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  const int64_t start_micros = NowMicros();
  for (uint32_t c = 0; c < config.connections; ++c) {
    workers.emplace_back(RunWorker, std::cref(config), std::cref(events),
                         c, &results[c]);
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      static_cast<double>(NowMicros() - start_micros) / 1e6;

  LoadgenReport report;
  std::vector<double> latencies;
  std::vector<double> ingest_latencies;
  for (const WorkerResult& r : results) {
    report.queries_sent += r.queries_sent;
    report.queries_answered += r.queries_answered;
    report.ingests_sent += r.ingests_sent;
    report.ingests_acked += r.ingests_acked;
    report.shed += r.shed;
    report.errors += r.errors;
    report.protocol_errors += r.protocol_errors;
    if (r.traced) ++report.traced_connections;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ingest_latencies.insert(ingest_latencies.end(),
                            r.ingest_latencies_ms.begin(),
                            r.ingest_latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(ingest_latencies.begin(), ingest_latencies.end());
  report.wall_seconds = wall_seconds;
  report.qps = wall_seconds > 0.0
                   ? static_cast<double>(report.queries_answered) /
                         wall_seconds
                   : 0.0;
  report.p50_ms = Percentile(latencies, 0.50);
  report.p95_ms = Percentile(latencies, 0.95);
  report.p99_ms = Percentile(latencies, 0.99);
  report.ingest_p50_ms = Percentile(ingest_latencies, 0.50);
  report.ingest_p95_ms = Percentile(ingest_latencies, 0.95);
  report.ingest_p99_ms = Percentile(ingest_latencies, 0.99);
  return report;
}

}  // namespace latest::net
