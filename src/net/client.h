// Blocking client for the serve plane: one connection, framed send /
// receive. Used by the loadgen, the e2e tests, and the latency bench;
// production clients would speak the same five-byte-header frames.

#ifndef LATEST_NET_CLIENT_H_
#define LATEST_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "util/status.h"

namespace latest::net {

/// One decoded server-to-client frame.
struct ServeResponse {
  FrameType type = FrameType::kError;
  IngestAck ack;           // kIngestAck.
  QueryResponse query;     // kQueryResponse.
  StatusResponse status;   // kStatusResponse.
  RetryLater retry;        // kRetryLater.
  ErrorFrame error;        // kError.
  HelloAck hello;          // kHelloAck.
};

/// Blocking framed connection to a ServeServer.
class ServeClient {
 public:
  /// Connects to 127.0.0.1:`port`; `io_timeout_ms` bounds every blocking
  /// read and write (0 keeps the socket unbounded).
  static util::Result<std::unique_ptr<ServeClient>> Connect(
      uint16_t port, int io_timeout_ms = 5000);

  /// Connects and negotiates the trace-context feature with a HELLO
  /// exchange. A server that predates HELLO answers with ERROR and
  /// closes; this helper then transparently reconnects untraced, so the
  /// returned client always works — check trace_enabled() to see what
  /// was negotiated.
  static util::Result<std::unique_ptr<ServeClient>> ConnectNegotiated(
      uint16_t port, int io_timeout_ms = 5000);

  /// Whether the server acknowledged the trace-context feature. When
  /// false, callers must not attach WireTraceContext to requests (an
  /// old server would reject the unexpected trailer bytes).
  bool trace_enabled() const { return trace_enabled_; }

  /// Send one request frame. Writes block until fully sent.
  util::Status SendIngest(const IngestRequest& req);
  util::Status SendQuery(const QueryRequest& req);
  util::Status SendStatus(const StatusRequest& req);

  /// Sends pre-encoded frame bytes as-is (batched pipelining).
  util::Status SendRaw(const std::string& bytes);

  /// Blocks for the next complete response frame. Fails on timeout,
  /// connection loss, or a malformed frame from the server.
  util::Result<ServeResponse> ReadResponse();

  int fd() const { return fd_.get(); }

 private:
  explicit ServeClient(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  FrameReader reader_;
  bool trace_enabled_ = false;
};

}  // namespace latest::net

#endif  // LATEST_NET_CLIENT_H_
