// Tick-based admission for the serving data plane.
//
// The IO thread admits decoded INGEST/QUERY frames into one ordered FIFO
// (arrival order is preserved end-to-end, so a single connection's
// request sequence replays deterministically through the module). The
// batch thread blocks in WaitForBatch until a tick elapses or enough
// queries are pending, then drains a prefix of the FIFO as one batch.
//
// Admission is where load shedding happens: both classes are bounded,
// QUERY sheds before INGEST (dropping ingest corrupts the ground-truth
// window; dropping a query only costs that client a retry), and an
// SLO-degraded module shrinks the effective query capacity so the plane
// starts refusing work before the estimation path saturates. Shed
// responses carry a backoff hint proportional to queue pressure.

#ifndef LATEST_NET_BATCHER_H_
#define LATEST_NET_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "net/protocol.h"

namespace latest::net {

/// One admitted request, tagged with its source connection.
struct AdmittedEvent {
  enum class Kind : uint8_t { kIngest, kQuery };
  Kind kind = Kind::kIngest;
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  stream::GeoTextObject object;  // kIngest.
  stream::Query query;           // kQuery.
  /// Wire trace context (zero/unsampled when the client sent none).
  uint64_t trace_id = 0;
  bool trace_sampled = false;
  /// Tick stamps, microseconds on the steady clock (same domain as
  /// obs::SpanCollector::NanosFromSteadyMicros): socket readability,
  /// FIFO admission, batch-drain dequeue. arrival==admit when decode
  /// and admission happen inline on the IO thread (they do today);
  /// keeping both lets a future async decode stage show up as a gap.
  int64_t arrival_micros = 0;
  int64_t admit_micros = 0;
  int64_t dequeue_micros = 0;
};

struct BatcherConfig {
  /// Tick period: queries admitted within one tick coalesce into one
  /// OnQueryBatch call. 0 fires as soon as the batch thread is free
  /// (with max_batch 1 that degenerates to unbatched serving).
  uint32_t tick_us = 2000;

  /// Queries per batch cap; reaching it fires the tick early.
  uint32_t max_batch = 64;

  /// Bounded queue capacities (events, per class).
  uint32_t max_ingest_queue = 65536;
  uint32_t max_query_queue = 4096;

  /// Effective query capacity while the SLO monitor reports degraded,
  /// as a divisor: capacity becomes max_query_queue / degraded_divisor.
  uint32_t degraded_divisor = 8;
};

enum class AdmitResult : uint8_t {
  kAdmitted = 0,
  kShedQuery,   // Query queue full (or degraded-shrunk): RETRY_LATER.
  kShedIngest,  // Ingest queue full: RETRY_LATER.
};

/// Thread-safe bounded admission queue with tick-batched draining.
/// One producer side (any thread), one consumer (the batch thread).
class Batcher {
 public:
  explicit Batcher(const BatcherConfig& config);

  /// Admits or sheds one event. `degraded` shrinks the query capacity.
  /// On shed, `*backoff_hint_ms` is set from current queue pressure.
  AdmitResult Admit(AdmittedEvent event, bool degraded,
                    uint32_t* backoff_hint_ms);

  /// Blocks until a batch is ready (tick deadline reached with pending
  /// events, query occupancy hit max_batch, or Stop with a non-empty
  /// queue), then moves an in-order prefix containing at most max_batch
  /// queries into `*out`. Returns false only when stopped and fully
  /// drained — the clean-shutdown contract: every admitted event is
  /// either batched or the caller sees false.
  bool WaitForBatch(std::vector<AdmittedEvent>* out);

  /// Wakes WaitForBatch; subsequent Admit calls shed everything.
  void Stop();

  /// Instantaneous depths (metrics).
  size_t ingest_depth() const;
  size_t query_depth() const;

 private:
  const BatcherConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AdmittedEvent> fifo_;
  size_t pending_ingest_ = 0;
  size_t pending_query_ = 0;
  bool stopped_ = false;
};

}  // namespace latest::net

#endif  // LATEST_NET_BATCHER_H_
