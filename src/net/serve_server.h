// The query-serving RPC server (the data plane of ROADMAP item 1).
//
// Two threads per server:
//
//   IO thread     poll() over the listen socket, a self-pipe, and every
//                 client connection (non-blocking, per-connection read /
//                 write buffers). Decodes frames, answers STATUS frames
//                 inline from mirrored atomics, admits INGEST/QUERY into
//                 the Batcher (writing RETRY_LATER itself on shed), and
//                 flushes response bytes produced by the batch thread.
//
//   batch thread  Blocks in Batcher::WaitForBatch; the only thread that
//                 touches the LatestModule. Applies ingests in order,
//                 coalesces admitted query runs through OnQueryBatch (so
//                 the PR 8 batch kernels see real batches), encodes the
//                 responses, hands them to the IO thread through a
//                 per-connection outbox, and mirrors phase/active/counter
//                 state into atomics for the STATUS path.
//
// Shutdown drains: Stop() refuses new admissions, the batch thread
// finishes every already-admitted event (WaitForBatch returns false only
// when the FIFO is empty), responses are flushed, then sockets close.

#ifndef LATEST_NET_SERVE_SERVER_H_
#define LATEST_NET_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/latest_module.h"
#include "net/batcher.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/request_trace.h"
#include "util/status.h"

namespace latest::net {

struct ServeServerConfig {
  /// 0 picks an ephemeral port (read back via port()).
  uint16_t port = 0;
  BatcherConfig batcher;
  /// Upper bound on simultaneously open client connections; accepts
  /// beyond it are closed immediately.
  uint32_t max_connections = 256;
  /// Answer HELLO with HELLO_ACK (trace-context negotiation). False
  /// simulates a pre-tracing server: HELLO takes the unknown-frame
  /// path (ERROR + close) and clients fall back to untraced frames.
  bool accept_hello = true;
  /// Request-trace store sizing (recent ring / slowest-K board).
  size_t trace_recent_capacity = 256;
  size_t trace_top_k = 32;
};

/// Counters mirrored for STATUS frames and metrics (single writer each;
/// relaxed loads elsewhere).
struct ServeStats {
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> queries_answered{0};
  std::atomic<uint64_t> objects_ingested{0};
  std::atomic<uint64_t> shed_queries{0};
  std::atomic<uint64_t> shed_ingests{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> batches{0};
};

class ServeServer {
 public:
  /// The module must outlive the server. `ingest_hook`, when set,
  /// replaces the direct module->OnObject call on the batch thread — the
  /// serve tool routes ingest through the checkpoint manager this way
  /// without src/net depending on latest_persist.
  ServeServer(const ServeServerConfig& config, core::LatestModule* module,
              std::function<void(const stream::GeoTextObject&)> ingest_hook =
                  nullptr);
  ~ServeServer();
  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  util::Status Start();

  /// Drains admitted work, flushes responses, closes sockets. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServeStats& stats() const { return stats_; }

  /// Current open connections (IO-thread-owned, relaxed mirror).
  uint64_t connections() const {
    return connections_gauge_val_.load(std::memory_order_relaxed);
  }

  /// Per-request stage waterfalls (also published process-globally via
  /// obs::SetRequestTraceStore while the server runs, for /requestz).
  const obs::RequestTraceStore& request_trace() const {
    return request_trace_;
  }

 private:
  struct Connection {
    Fd fd;
    FrameReader reader;
    std::string write_buffer;
    size_t write_offset = 0;
    bool closing = false;  // Flush pending bytes, then close.
  };

  void IoLoop();
  void BatchLoop();

  /// Decodes and dispatches every complete frame in `conn`'s reader.
  /// False poisons the connection (protocol error).
  bool DrainFrames(uint64_t conn_id, Connection* conn);

  /// Runs one drained batch through the module in arrival order,
  /// encoding responses into `outbox` (conn_id -> bytes) and appending
  /// one flush-incomplete trace record per request to `records`.
  void ProcessBatch(const std::vector<AdmittedEvent>& batch,
                    uint64_t batch_seq,
                    std::map<uint64_t, std::string>* outbox,
                    std::vector<obs::RequestTraceStore::Record>* records);

  /// Moves batch-thread outbox bytes into connection write buffers,
  /// finalises the flushed batches' trace records, and emits their
  /// stage spans (IO thread).
  void FlushOutbox();

  /// Emits the synthetic serve_request span tree for one flushed
  /// record onto the installed span collector.
  void EmitRequestSpans(const obs::RequestTraceStore::Record& record,
                        int64_t flush_micros);

  void RegisterMetrics();

  const ServeServerConfig config_;
  core::LatestModule* const module_;
  std::function<void(const stream::GeoTextObject&)> ingest_hook_;
  Batcher batcher_;

  uint16_t port_ = 0;
  Fd listen_fd_;
  SelfPipe wake_;
  std::thread io_thread_;
  std::thread batch_thread_;
  std::atomic<bool> running_{false};

  // IO-thread-owned connection table.
  std::map<uint64_t, Connection> connections_;
  uint64_t next_conn_id_ = 1;
  std::atomic<uint64_t> connections_gauge_val_{0};

  // Batch thread -> IO thread response handoff. `pending_flush_seqs_`
  // rides along: batch sequence numbers whose responses entered the
  // outbox but whose flush completion has not been observed yet.
  std::mutex outbox_mu_;
  std::map<uint64_t, std::string> outbox_;
  std::vector<uint64_t> pending_flush_seqs_;

  // Per-request stage waterfalls (batch thread appends, IO thread
  // patches flush completion; internally locked).
  obs::RequestTraceStore request_trace_;
  uint64_t batch_seq_ = 0;  // Batch-thread-owned.

  ServeStats stats_;

  // Mirrored module state for IO-thread STATUS responses.
  std::atomic<uint32_t> phase_mirror_{0};
  std::atomic<uint32_t> active_kind_mirror_{0};

  // Monotonized stream clock (serving timestamps must not regress).
  int64_t last_timestamp_ = 0;

  // Metrics (owned by the module's registry; may be null when the
  // registry is unavailable).
  obs::Counter* frames_in_counter_ = nullptr;
  obs::Counter* frames_out_counter_ = nullptr;
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* ingests_counter_ = nullptr;
  obs::Counter* shed_query_counter_ = nullptr;
  obs::Counter* shed_ingest_counter_ = nullptr;
  obs::Counter* protocol_error_counter_ = nullptr;
  obs::Gauge* connections_gauge_ = nullptr;
  obs::Gauge* ingest_queue_gauge_ = nullptr;
  obs::Gauge* query_queue_gauge_ = nullptr;
  obs::Histogram* batch_size_histogram_ = nullptr;
  obs::Histogram* query_latency_histogram_ = nullptr;
  obs::Histogram* query_queue_wait_histogram_ = nullptr;
  obs::Histogram* ingest_queue_wait_histogram_ = nullptr;
};

}  // namespace latest::net

#endif  // LATEST_NET_SERVE_SERVER_H_
