#include "net/serve_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

namespace latest::net {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeServer::ServeServer(
    const ServeServerConfig& config, core::LatestModule* module,
    std::function<void(const stream::GeoTextObject&)> ingest_hook)
    : config_(config),
      module_(module),
      ingest_hook_(std::move(ingest_hook)),
      batcher_(config.batcher) {}

ServeServer::~ServeServer() { Stop(); }

void ServeServer::RegisterMetrics() {
  obs::MetricsRegistry& registry = module_->telemetry().registry();
  frames_in_counter_ = registry.GetCounter(
      "latest_serve_frames_in_total", "RPC frames received");
  frames_out_counter_ = registry.GetCounter(
      "latest_serve_frames_out_total", "RPC frames sent");
  queries_counter_ = registry.GetCounter(
      "latest_serve_queries_total", "Queries answered by the serve plane");
  ingests_counter_ = registry.GetCounter(
      "latest_serve_ingests_total", "Objects ingested by the serve plane");
  shed_query_counter_ = registry.GetCounter(
      "latest_serve_shed_total", "Requests shed with RETRY_LATER",
      {{"class", "query"}});
  shed_ingest_counter_ = registry.GetCounter(
      "latest_serve_shed_total", "Requests shed with RETRY_LATER",
      {{"class", "ingest"}});
  protocol_error_counter_ = registry.GetCounter(
      "latest_serve_protocol_errors_total",
      "Connections dropped for malformed frames");
  connections_gauge_ = registry.GetGauge(
      "latest_serve_connections", "Open client connections");
  ingest_queue_gauge_ = registry.GetGauge(
      "latest_serve_queue_depth", "Admission queue depth",
      {{"class", "ingest"}});
  query_queue_gauge_ = registry.GetGauge(
      "latest_serve_queue_depth", "Admission queue depth",
      {{"class", "query"}});
  batch_size_histogram_ = registry.GetHistogram(
      "latest_serve_batch_size", "Queries per admitted batch",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  query_latency_histogram_ = registry.GetHistogram(
      "latest_serve_query_latency_ms",
      "Admission-to-response latency per query",
      obs::Histogram::LatencyBucketsMs());
}

util::Status ServeServer::Start() {
  if (running()) {
    return util::Status::FailedPrecondition("server already running");
  }
  auto listen_fd = ListenLoopback(config_.port, /*backlog=*/128, &port_);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = std::move(listen_fd).value();
  LATEST_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
  if (const auto pipe_status = wake_.Open(); !pipe_status.ok()) {
    listen_fd_.Reset();
    return pipe_status;
  }
  RegisterMetrics();
  phase_mirror_.store(static_cast<uint32_t>(module_->phase()),
                      std::memory_order_relaxed);
  active_kind_mirror_.store(static_cast<uint32_t>(module_->active_kind()),
                            std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  batch_thread_ = std::thread([this] { BatchLoop(); });
  io_thread_ = std::thread([this] { IoLoop(); });
  return util::Status::Ok();
}

void ServeServer::Stop() {
  if (!running()) return;
  // Drain order: refuse new admissions, let the batch thread finish every
  // already-admitted event, then let the IO thread flush the responses.
  batcher_.Stop();
  if (batch_thread_.joinable()) batch_thread_.join();
  running_.store(false, std::memory_order_release);
  wake_.Notify();
  if (io_thread_.joinable()) io_thread_.join();
  listen_fd_.Reset();
  wake_.Close();
}

// ---------------------------------------------------------------------
// IO thread.
// ---------------------------------------------------------------------

namespace {

/// Sends as much buffered data as the socket accepts right now.
/// False on a fatal socket error.
bool TryFlush(int fd, std::string* buffer, size_t* offset) {
  while (*offset < buffer->size()) {
    const ssize_t n = ::send(fd, buffer->data() + *offset,
                             buffer->size() - *offset, MSG_NOSIGNAL);
    if (n > 0) {
      *offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  buffer->clear();
  *offset = 0;
  return true;
}

}  // namespace

void ServeServer::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn_ids;
  char read_buffer[64 * 1024];

  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    for (auto& [conn_id, conn] : connections_) {
      short events = POLLIN;
      if (conn.write_offset < conn.write_buffer.size()) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
      fd_conn_ids.push_back(conn_id);
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) continue;  // EINTR.

    if (fds[1].revents != 0) {
      wake_.Drain();
      FlushOutbox();
    }

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (client < 0) break;
        if (connections_.size() >= config_.max_connections) {
          ::close(client);
          continue;
        }
        if (!SetNonBlocking(client).ok()) {
          ::close(client);
          continue;
        }
        SetNoDelay(client);
        Connection conn;
        conn.fd = Fd(client);
        connections_.emplace(next_conn_id_++, std::move(conn));
      }
    }

    std::vector<uint64_t> to_close;
    for (size_t i = 2; i < fds.size(); ++i) {
      const uint64_t conn_id = fd_conn_ids[i - 2];
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      const short revents = fds[i].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        to_close.push_back(conn_id);
        continue;
      }
      bool dead = false;
      if ((revents & (POLLIN | POLLHUP)) != 0 && !conn.closing) {
        for (;;) {
          const ssize_t n =
              ::recv(conn.fd.get(), read_buffer, sizeof(read_buffer), 0);
          if (n > 0) {
            conn.reader.Append(read_buffer, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          dead = true;  // Peer closed (n == 0) or hard error.
          break;
        }
        if (!DrainFrames(conn_id, &conn)) {
          // Poisoned stream: flush what we owe (the ERROR frame), then
          // close. Further input is ignored.
          conn.closing = true;
        }
      } else if ((revents & POLLHUP) != 0) {
        dead = true;
      }
      if (!TryFlush(conn.fd.get(), &conn.write_buffer,
                    &conn.write_offset)) {
        dead = true;
      }
      const bool flushed = conn.write_offset >= conn.write_buffer.size();
      if (dead || (conn.closing && flushed)) to_close.push_back(conn_id);
    }
    for (const uint64_t conn_id : to_close) connections_.erase(conn_id);
    connections_gauge_val_.store(connections_.size(),
                                 std::memory_order_relaxed);
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Set(static_cast<double>(connections_.size()));
    }
  }

  // Shutdown: the batch thread has already drained, so everything owed
  // is in the outbox or connection buffers. Flush with a bounded effort,
  // then close.
  FlushOutbox();
  const int64_t deadline = NowMicros() + 500 * 1000;
  for (bool pending = true; pending && NowMicros() < deadline;) {
    pending = false;
    for (auto& [conn_id, conn] : connections_) {
      if (conn.write_offset >= conn.write_buffer.size()) continue;
      if (!TryFlush(conn.fd.get(), &conn.write_buffer,
                    &conn.write_offset)) {
        conn.write_buffer.clear();
        conn.write_offset = 0;
        continue;
      }
      if (conn.write_offset < conn.write_buffer.size()) pending = true;
    }
    if (pending) {
      // Brief poll for writability instead of spinning.
      std::vector<pollfd> wfds;
      for (auto& [conn_id, conn] : connections_) {
        if (conn.write_offset < conn.write_buffer.size()) {
          wfds.push_back({conn.fd.get(), POLLOUT, 0});
        }
      }
      if (!wfds.empty()) ::poll(wfds.data(), wfds.size(), 50);
    }
  }
  connections_.clear();
  connections_gauge_val_.store(0, std::memory_order_relaxed);
}

bool ServeServer::DrainFrames(uint64_t conn_id, Connection* conn) {
  FrameReader::Frame frame;
  for (;;) {
    const FrameReader::Outcome outcome = conn->reader.Next(&frame);
    if (outcome == FrameReader::Outcome::kNeedMore) return true;
    if (outcome == FrameReader::Outcome::kProtocolError) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (protocol_error_counter_ != nullptr) {
        protocol_error_counter_->Increment();
      }
      EncodeError({0, "malformed frame"}, &conn->write_buffer);
      return false;
    }
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    if (frames_in_counter_ != nullptr) frames_in_counter_->Increment();

    const bool degraded = module_->slo_monitor().degraded();
    bool ok = true;
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::kStatus: {
        StatusRequest req;
        ok = DecodeStatus(frame.payload, &req);
        if (!ok) break;
        StatusResponse resp;
        resp.request_id = req.request_id;
        resp.phase = phase_mirror_.load(std::memory_order_relaxed);
        resp.active_kind =
            active_kind_mirror_.load(std::memory_order_relaxed);
        resp.objects_ingested =
            stats_.objects_ingested.load(std::memory_order_relaxed);
        resp.queries_answered =
            stats_.queries_answered.load(std::memory_order_relaxed);
        resp.shed = stats_.shed_queries.load(std::memory_order_relaxed) +
                    stats_.shed_ingests.load(std::memory_order_relaxed);
        EncodeStatusResponse(resp, &conn->write_buffer);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        if (frames_out_counter_ != nullptr) {
          frames_out_counter_->Increment();
        }
        break;
      }
      case FrameType::kIngest: {
        IngestRequest req;
        ok = DecodeIngest(frame.payload, &req);
        if (!ok) break;
        AdmittedEvent event;
        event.kind = AdmittedEvent::Kind::kIngest;
        event.conn_id = conn_id;
        event.request_id = req.request_id;
        event.object = std::move(req.object);
        uint32_t backoff_ms = 0;
        if (batcher_.Admit(std::move(event), degraded, &backoff_ms) !=
            AdmitResult::kAdmitted) {
          stats_.shed_ingests.fetch_add(1, std::memory_order_relaxed);
          if (shed_ingest_counter_ != nullptr) {
            shed_ingest_counter_->Increment();
          }
          EncodeRetryLater(
              {req.request_id, static_cast<uint32_t>(FrameType::kIngest),
               backoff_ms},
              &conn->write_buffer);
          stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
          if (frames_out_counter_ != nullptr) {
            frames_out_counter_->Increment();
          }
        }
        break;
      }
      case FrameType::kQuery: {
        QueryRequest req;
        ok = DecodeQuery(frame.payload, &req);
        if (!ok) break;
        AdmittedEvent event;
        event.kind = AdmittedEvent::Kind::kQuery;
        event.conn_id = conn_id;
        event.request_id = req.request_id;
        event.query = std::move(req.query);
        uint32_t backoff_ms = 0;
        if (batcher_.Admit(std::move(event), degraded, &backoff_ms) !=
            AdmitResult::kAdmitted) {
          stats_.shed_queries.fetch_add(1, std::memory_order_relaxed);
          if (shed_query_counter_ != nullptr) {
            shed_query_counter_->Increment();
          }
          EncodeRetryLater(
              {req.request_id, static_cast<uint32_t>(FrameType::kQuery),
               backoff_ms},
              &conn->write_buffer);
          stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
          if (frames_out_counter_ != nullptr) {
            frames_out_counter_->Increment();
          }
        }
        break;
      }
      default:
        // A client sending response-typed frames is a protocol error.
        ok = false;
        break;
    }
    if (!ok) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (protocol_error_counter_ != nullptr) {
        protocol_error_counter_->Increment();
      }
      EncodeError({0, "bad payload"}, &conn->write_buffer);
      return false;
    }
  }
}

void ServeServer::FlushOutbox() {
  std::map<uint64_t, std::string> pending;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    pending.swap(outbox_);
  }
  for (auto& [conn_id, bytes] : pending) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // Client already gone.
    it->second.write_buffer += bytes;
    TryFlush(it->second.fd.get(), &it->second.write_buffer,
             &it->second.write_offset);
  }
  if (ingest_queue_gauge_ != nullptr) {
    ingest_queue_gauge_->Set(static_cast<double>(batcher_.ingest_depth()));
  }
  if (query_queue_gauge_ != nullptr) {
    query_queue_gauge_->Set(static_cast<double>(batcher_.query_depth()));
  }
}

// ---------------------------------------------------------------------
// Batch thread.
// ---------------------------------------------------------------------

void ServeServer::BatchLoop() {
  std::vector<AdmittedEvent> batch;
  std::map<uint64_t, std::string> outbox;
  while (batcher_.WaitForBatch(&batch)) {
    outbox.clear();
    ProcessBatch(batch, &outbox);
    {
      std::lock_guard<std::mutex> lock(outbox_mu_);
      for (auto& [conn_id, bytes] : outbox) {
        outbox_[conn_id] += bytes;
      }
    }
    wake_.Notify();
  }
}

void ServeServer::ProcessBatch(const std::vector<AdmittedEvent>& batch,
                               std::map<uint64_t, std::string>* outbox) {
  // Scratch for the current contiguous query run.
  std::vector<stream::Query> queries;
  std::vector<const AdmittedEvent*> query_events;
  std::vector<core::QueryOutcome> outcomes;
  size_t batch_queries = 0;

  auto flush_queries = [&] {
    if (queries.empty()) return;
    outcomes.resize(queries.size());
    module_->OnQueryBatch(queries.data(), queries.size(), outcomes.data());
    const int64_t now_micros = NowMicros();
    for (size_t i = 0; i < queries.size(); ++i) {
      const AdmittedEvent& event = *query_events[i];
      QueryResponse resp;
      resp.request_id = event.request_id;
      resp.estimate = outcomes[i].estimate;
      resp.actual = outcomes[i].actual;
      resp.phase = static_cast<uint32_t>(outcomes[i].phase);
      resp.active_kind = static_cast<uint32_t>(outcomes[i].active);
      EncodeQueryResponse(resp, &(*outbox)[event.conn_id]);
      stats_.queries_answered.fetch_add(1, std::memory_order_relaxed);
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      if (queries_counter_ != nullptr) queries_counter_->Increment();
      if (frames_out_counter_ != nullptr) frames_out_counter_->Increment();
      if (query_latency_histogram_ != nullptr) {
        query_latency_histogram_->Observe(
            static_cast<double>(now_micros - event.admit_micros) / 1000.0);
      }
    }
    batch_queries += queries.size();
    queries.clear();
    query_events.clear();
  };

  for (const AdmittedEvent& event : batch) {
    if (event.kind == AdmittedEvent::Kind::kQuery) {
      stream::Query q = event.query;
      // The module requires non-decreasing timestamps across objects and
      // queries; many independent clients cannot coordinate theirs, so
      // the serving plane monotonizes.
      last_timestamp_ = std::max(last_timestamp_, q.timestamp);
      q.timestamp = last_timestamp_;
      queries.push_back(std::move(q));
      query_events.push_back(&event);
      continue;
    }
    // An ingest ends the current query run (order preservation).
    flush_queries();
    stream::GeoTextObject obj = event.object;
    last_timestamp_ = std::max(last_timestamp_, obj.timestamp);
    obj.timestamp = last_timestamp_;
    if (ingest_hook_) {
      ingest_hook_(obj);
    } else {
      module_->OnObject(obj);
    }
    stats_.objects_ingested.fetch_add(1, std::memory_order_relaxed);
    if (ingests_counter_ != nullptr) ingests_counter_->Increment();
    EncodeIngestAck({event.request_id}, &(*outbox)[event.conn_id]);
    stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    if (frames_out_counter_ != nullptr) frames_out_counter_->Increment();
  }
  flush_queries();

  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  if (batch_size_histogram_ != nullptr && batch_queries > 0) {
    batch_size_histogram_->Observe(static_cast<double>(batch_queries));
  }
  phase_mirror_.store(static_cast<uint32_t>(module_->phase()),
                      std::memory_order_relaxed);
  active_kind_mirror_.store(static_cast<uint32_t>(module_->active_kind()),
                            std::memory_order_relaxed);
}

}  // namespace latest::net
