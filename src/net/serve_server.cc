#include "net/serve_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/span.h"

namespace latest::net {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t MicrosToNanos(int64_t end_micros, int64_t start_micros) {
  return std::max<int64_t>(0, end_micros - start_micros) * 1000;
}

}  // namespace

ServeServer::ServeServer(
    const ServeServerConfig& config, core::LatestModule* module,
    std::function<void(const stream::GeoTextObject&)> ingest_hook)
    : config_(config),
      module_(module),
      ingest_hook_(std::move(ingest_hook)),
      batcher_(config.batcher),
      request_trace_(config.trace_recent_capacity, config.trace_top_k) {}

ServeServer::~ServeServer() { Stop(); }

void ServeServer::RegisterMetrics() {
  obs::MetricsRegistry& registry = module_->telemetry().registry();
  frames_in_counter_ = registry.GetCounter(
      "latest_serve_frames_in_total", "RPC frames received");
  frames_out_counter_ = registry.GetCounter(
      "latest_serve_frames_out_total", "RPC frames sent");
  queries_counter_ = registry.GetCounter(
      "latest_serve_queries_total", "Queries answered by the serve plane");
  ingests_counter_ = registry.GetCounter(
      "latest_serve_ingests_total", "Objects ingested by the serve plane");
  shed_query_counter_ = registry.GetCounter(
      "latest_serve_shed_total", "Requests shed with RETRY_LATER",
      {{"class", "query"}});
  shed_ingest_counter_ = registry.GetCounter(
      "latest_serve_shed_total", "Requests shed with RETRY_LATER",
      {{"class", "ingest"}});
  protocol_error_counter_ = registry.GetCounter(
      "latest_serve_protocol_errors_total",
      "Connections dropped for malformed frames");
  connections_gauge_ = registry.GetGauge(
      "latest_serve_connections", "Open client connections");
  ingest_queue_gauge_ = registry.GetGauge(
      "latest_serve_queue_depth", "Admission queue depth",
      {{"class", "ingest"}});
  query_queue_gauge_ = registry.GetGauge(
      "latest_serve_queue_depth", "Admission queue depth",
      {{"class", "query"}});
  batch_size_histogram_ = registry.GetHistogram(
      "latest_serve_batch_size", "Queries per admitted batch",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  query_latency_histogram_ = registry.GetHistogram(
      "latest_serve_query_latency_ms",
      "Admission-to-response latency per query",
      obs::Histogram::LatencyBucketsMs());
  query_queue_wait_histogram_ = registry.GetHistogram(
      "latest_serve_queue_wait_ms",
      "Admission-to-dequeue wait before batch processing",
      obs::Histogram::LatencyBucketsMs(), {{"class", "query"}});
  ingest_queue_wait_histogram_ = registry.GetHistogram(
      "latest_serve_queue_wait_ms",
      "Admission-to-dequeue wait before batch processing",
      obs::Histogram::LatencyBucketsMs(), {{"class", "ingest"}});
  // Tail exemplars: retain {value, trace_id, request_id} for slow
  // observations so /vars can link a latency spike to its trace.
  if (query_latency_histogram_ != nullptr) {
    query_latency_histogram_->EnableExemplars(/*capacity=*/8);
  }
  if (query_queue_wait_histogram_ != nullptr) {
    query_queue_wait_histogram_->EnableExemplars(/*capacity=*/8);
  }
  if (ingest_queue_wait_histogram_ != nullptr) {
    ingest_queue_wait_histogram_->EnableExemplars(/*capacity=*/8);
  }
}

util::Status ServeServer::Start() {
  if (running()) {
    return util::Status::FailedPrecondition("server already running");
  }
  auto listen_fd = ListenLoopback(config_.port, /*backlog=*/128, &port_);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = std::move(listen_fd).value();
  LATEST_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
  if (const auto pipe_status = wake_.Open(); !pipe_status.ok()) {
    listen_fd_.Reset();
    return pipe_status;
  }
  RegisterMetrics();
  obs::SetRequestTraceStore(&request_trace_);
  phase_mirror_.store(static_cast<uint32_t>(module_->phase()),
                      std::memory_order_relaxed);
  active_kind_mirror_.store(static_cast<uint32_t>(module_->active_kind()),
                            std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  batch_thread_ = std::thread([this] { BatchLoop(); });
  io_thread_ = std::thread([this] { IoLoop(); });
  return util::Status::Ok();
}

void ServeServer::Stop() {
  if (!running()) return;
  // Drain order: refuse new admissions, let the batch thread finish every
  // already-admitted event, then let the IO thread flush the responses.
  batcher_.Stop();
  if (batch_thread_.joinable()) batch_thread_.join();
  running_.store(false, std::memory_order_release);
  wake_.Notify();
  if (io_thread_.joinable()) io_thread_.join();
  listen_fd_.Reset();
  wake_.Close();
  if (obs::GetRequestTraceStore() == &request_trace_) {
    obs::SetRequestTraceStore(nullptr);
  }
}

// ---------------------------------------------------------------------
// IO thread.
// ---------------------------------------------------------------------

namespace {

/// Sends as much buffered data as the socket accepts right now.
/// False on a fatal socket error.
bool TryFlush(int fd, std::string* buffer, size_t* offset) {
  while (*offset < buffer->size()) {
    const ssize_t n = ::send(fd, buffer->data() + *offset,
                             buffer->size() - *offset, MSG_NOSIGNAL);
    if (n > 0) {
      *offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  buffer->clear();
  *offset = 0;
  return true;
}

}  // namespace

void ServeServer::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn_ids;
  char read_buffer[64 * 1024];

  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    for (auto& [conn_id, conn] : connections_) {
      short events = POLLIN;
      if (conn.write_offset < conn.write_buffer.size()) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
      fd_conn_ids.push_back(conn_id);
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) continue;  // EINTR.

    if (fds[1].revents != 0) {
      wake_.Drain();
      FlushOutbox();
    }

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (client < 0) break;
        if (connections_.size() >= config_.max_connections) {
          ::close(client);
          continue;
        }
        if (!SetNonBlocking(client).ok()) {
          ::close(client);
          continue;
        }
        SetNoDelay(client);
        Connection conn;
        conn.fd = Fd(client);
        connections_.emplace(next_conn_id_++, std::move(conn));
      }
    }

    std::vector<uint64_t> to_close;
    for (size_t i = 2; i < fds.size(); ++i) {
      const uint64_t conn_id = fd_conn_ids[i - 2];
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      const short revents = fds[i].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        to_close.push_back(conn_id);
        continue;
      }
      bool dead = false;
      if ((revents & (POLLIN | POLLHUP)) != 0 && !conn.closing) {
        for (;;) {
          const ssize_t n =
              ::recv(conn.fd.get(), read_buffer, sizeof(read_buffer), 0);
          if (n > 0) {
            conn.reader.Append(read_buffer, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          dead = true;  // Peer closed (n == 0) or hard error.
          break;
        }
        if (!DrainFrames(conn_id, &conn)) {
          // Poisoned stream: flush what we owe (the ERROR frame), then
          // close. Further input is ignored.
          conn.closing = true;
        }
      } else if ((revents & POLLHUP) != 0) {
        dead = true;
      }
      if (!TryFlush(conn.fd.get(), &conn.write_buffer,
                    &conn.write_offset)) {
        dead = true;
      }
      const bool flushed = conn.write_offset >= conn.write_buffer.size();
      if (dead || (conn.closing && flushed)) to_close.push_back(conn_id);
    }
    for (const uint64_t conn_id : to_close) connections_.erase(conn_id);
    connections_gauge_val_.store(connections_.size(),
                                 std::memory_order_relaxed);
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Set(static_cast<double>(connections_.size()));
    }
  }

  // Shutdown: the batch thread has already drained, so everything owed
  // is in the outbox or connection buffers. Flush with a bounded effort,
  // then close.
  FlushOutbox();
  const int64_t deadline = NowMicros() + 500 * 1000;
  for (bool pending = true; pending && NowMicros() < deadline;) {
    pending = false;
    for (auto& [conn_id, conn] : connections_) {
      if (conn.write_offset >= conn.write_buffer.size()) continue;
      if (!TryFlush(conn.fd.get(), &conn.write_buffer,
                    &conn.write_offset)) {
        conn.write_buffer.clear();
        conn.write_offset = 0;
        continue;
      }
      if (conn.write_offset < conn.write_buffer.size()) pending = true;
    }
    if (pending) {
      // Brief poll for writability instead of spinning.
      std::vector<pollfd> wfds;
      for (auto& [conn_id, conn] : connections_) {
        if (conn.write_offset < conn.write_buffer.size()) {
          wfds.push_back({conn.fd.get(), POLLOUT, 0});
        }
      }
      if (!wfds.empty()) ::poll(wfds.data(), wfds.size(), 50);
    }
  }
  connections_.clear();
  connections_gauge_val_.store(0, std::memory_order_relaxed);
}

bool ServeServer::DrainFrames(uint64_t conn_id, Connection* conn) {
  FrameReader::Frame frame;
  // One stamp per drain pass: the moment this connection's bytes became
  // readable. Starts the io_read stage of every frame in the pass.
  const int64_t arrival_micros = NowMicros();
  for (;;) {
    const FrameReader::Outcome outcome = conn->reader.Next(&frame);
    if (outcome == FrameReader::Outcome::kNeedMore) return true;
    if (outcome == FrameReader::Outcome::kProtocolError) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (protocol_error_counter_ != nullptr) {
        protocol_error_counter_->Increment();
      }
      EncodeError({0, "malformed frame"}, &conn->write_buffer);
      return false;
    }
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    if (frames_in_counter_ != nullptr) frames_in_counter_->Increment();

    const bool degraded = module_->slo_monitor().degraded();
    bool ok = true;
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::kStatus: {
        StatusRequest req;
        ok = DecodeStatus(frame.payload, &req);
        if (!ok) break;
        StatusResponse resp;
        resp.request_id = req.request_id;
        resp.phase = phase_mirror_.load(std::memory_order_relaxed);
        resp.active_kind =
            active_kind_mirror_.load(std::memory_order_relaxed);
        resp.objects_ingested =
            stats_.objects_ingested.load(std::memory_order_relaxed);
        resp.queries_answered =
            stats_.queries_answered.load(std::memory_order_relaxed);
        resp.shed = stats_.shed_queries.load(std::memory_order_relaxed) +
                    stats_.shed_ingests.load(std::memory_order_relaxed);
        EncodeStatusResponse(resp, &conn->write_buffer);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        if (frames_out_counter_ != nullptr) {
          frames_out_counter_->Increment();
        }
        break;
      }
      case FrameType::kHello: {
        HelloRequest req;
        ok = DecodeHello(frame.payload, &req);
        if (!ok) break;
        if (!config_.accept_hello) {
          // Pre-tracing servers treat HELLO as an unknown frame; keep
          // that path reachable so mixed-version tests can exercise
          // the client's untraced fallback.
          ok = false;
          break;
        }
        HelloAck ack;
        ack.request_id = req.request_id;
        ack.protocol_version = kProtocolVersion;
        ack.feature_flags = req.feature_flags & kFeatureTraceContext;
        EncodeHelloAck(ack, &conn->write_buffer);
        stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        if (frames_out_counter_ != nullptr) {
          frames_out_counter_->Increment();
        }
        break;
      }
      case FrameType::kIngest: {
        IngestRequest req;
        ok = DecodeIngest(frame.payload, &req);
        if (!ok) break;
        AdmittedEvent event;
        event.kind = AdmittedEvent::Kind::kIngest;
        event.conn_id = conn_id;
        event.request_id = req.request_id;
        event.object = std::move(req.object);
        event.trace_id = req.trace.trace_id;
        event.trace_sampled = req.trace.present && req.trace.sampled;
        event.arrival_micros = arrival_micros;
        uint32_t backoff_ms = 0;
        if (batcher_.Admit(std::move(event), degraded, &backoff_ms) !=
            AdmitResult::kAdmitted) {
          stats_.shed_ingests.fetch_add(1, std::memory_order_relaxed);
          if (shed_ingest_counter_ != nullptr) {
            shed_ingest_counter_->Increment();
          }
          EncodeRetryLater(
              {req.request_id, static_cast<uint32_t>(FrameType::kIngest),
               backoff_ms},
              &conn->write_buffer);
          stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
          if (frames_out_counter_ != nullptr) {
            frames_out_counter_->Increment();
          }
        }
        break;
      }
      case FrameType::kQuery: {
        QueryRequest req;
        ok = DecodeQuery(frame.payload, &req);
        if (!ok) break;
        AdmittedEvent event;
        event.kind = AdmittedEvent::Kind::kQuery;
        event.conn_id = conn_id;
        event.request_id = req.request_id;
        event.query = std::move(req.query);
        event.trace_id = req.trace.trace_id;
        event.trace_sampled = req.trace.present && req.trace.sampled;
        event.arrival_micros = arrival_micros;
        uint32_t backoff_ms = 0;
        if (batcher_.Admit(std::move(event), degraded, &backoff_ms) !=
            AdmitResult::kAdmitted) {
          stats_.shed_queries.fetch_add(1, std::memory_order_relaxed);
          if (shed_query_counter_ != nullptr) {
            shed_query_counter_->Increment();
          }
          EncodeRetryLater(
              {req.request_id, static_cast<uint32_t>(FrameType::kQuery),
               backoff_ms},
              &conn->write_buffer);
          stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
          if (frames_out_counter_ != nullptr) {
            frames_out_counter_->Increment();
          }
        }
        break;
      }
      default:
        // A client sending response-typed frames is a protocol error.
        ok = false;
        break;
    }
    if (!ok) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (protocol_error_counter_ != nullptr) {
        protocol_error_counter_->Increment();
      }
      EncodeError({0, "bad payload"}, &conn->write_buffer);
      return false;
    }
  }
}

void ServeServer::FlushOutbox() {
  std::map<uint64_t, std::string> pending;
  std::vector<uint64_t> flushed_seqs;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    pending.swap(outbox_);
    flushed_seqs.swap(pending_flush_seqs_);
  }
  for (auto& [conn_id, bytes] : pending) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // Client already gone.
    it->second.write_buffer += bytes;
    TryFlush(it->second.fd.get(), &it->second.write_buffer,
             &it->second.write_offset);
  }
  if (!flushed_seqs.empty()) {
    const int64_t flush_micros = NowMicros();
    std::vector<obs::RequestTraceStore::Record> completed;
    const bool want_spans = obs::GetSpanCollector() != nullptr;
    for (const uint64_t seq : flushed_seqs) {
      request_trace_.CompleteFlush(seq, flush_micros,
                                   want_spans ? &completed : nullptr);
    }
    for (const auto& record : completed) {
      EmitRequestSpans(record, flush_micros);
    }
  }
  if (ingest_queue_gauge_ != nullptr) {
    ingest_queue_gauge_->Set(static_cast<double>(batcher_.ingest_depth()));
  }
  if (query_queue_gauge_ != nullptr) {
    query_queue_gauge_->Set(static_cast<double>(batcher_.query_depth()));
  }
}

void ServeServer::EmitRequestSpans(
    const obs::RequestTraceStore::Record& record, int64_t flush_micros) {
  obs::SpanCollector* collector = obs::GetSpanCollector();
  if (collector == nullptr || !record.trace_sampled ||
      record.root_span_id == 0) {
    return;
  }
  // Synthesized retroactively from the record's stage stamps: the
  // serving stages are only known complete here (flush time), long
  // after each stage ran, so RAII spans cannot cover them. The module
  // stage itself additionally carries a real RAII `module_run` span
  // recorded live on the batch thread (see ProcessBatch), giving the
  // trace tree spans on both the IO and batch threads.
  const uint32_t tid = obs::CurrentThreadTid();
  auto emit = [&](const char* name, uint64_t id, uint64_t parent_id,
                  int64_t start_micros, int64_t end_micros) {
    obs::SpanRecord span;
    span.name = name;
    span.start_ns = collector->NanosFromSteadyMicros(start_micros);
    span.duration_ns = MicrosToNanos(end_micros, start_micros);
    span.tid = tid;
    span.id = id;
    span.parent_id = parent_id;
    span.trace_id = record.trace_id;
    collector->Record(span);
  };
  const uint64_t root = record.root_span_id;
  emit("serve_request", root, 0, record.arrival_micros, flush_micros);
  emit("io_read", collector->NextId(), root, record.arrival_micros,
       record.admit_micros);
  emit("queue_wait", collector->NextId(), root, record.admit_micros,
       record.dequeue_micros);
  emit("batch_form", collector->NextId(), root, record.dequeue_micros,
       record.run_start_micros);
  emit(record.request_class == obs::RequestTraceStore::RequestClass::kQuery
           ? "module_query"
           : "module_ingest",
       collector->NextId(), root, record.run_start_micros,
       record.run_end_micros);
  emit("serialize", collector->NextId(), root, record.run_end_micros,
       record.handoff_micros);
  emit("flush", collector->NextId(), root, record.handoff_micros,
       flush_micros);
}

// ---------------------------------------------------------------------
// Batch thread.
// ---------------------------------------------------------------------

void ServeServer::BatchLoop() {
  std::vector<AdmittedEvent> batch;
  std::map<uint64_t, std::string> outbox;
  std::vector<obs::RequestTraceStore::Record> records;
  while (batcher_.WaitForBatch(&batch)) {
    outbox.clear();
    records.clear();
    const uint64_t seq = ++batch_seq_;
    ProcessBatch(batch, seq, &outbox, &records);
    // Outbox handoff ends every record's serialize stage. Append before
    // publishing the sequence number: the IO thread only learns about
    // `seq` under outbox_mu_, so its CompleteFlush always finds the
    // records.
    const int64_t handoff_micros = NowMicros();
    for (auto& record : records) {
      record.handoff_micros = handoff_micros;
      record.serialize_ns =
          MicrosToNanos(handoff_micros, record.run_end_micros);
      request_trace_.Append(std::move(record));
    }
    {
      std::lock_guard<std::mutex> lock(outbox_mu_);
      for (auto& [conn_id, bytes] : outbox) {
        outbox_[conn_id] += bytes;
      }
      pending_flush_seqs_.push_back(seq);
    }
    wake_.Notify();
  }
}

void ServeServer::ProcessBatch(
    const std::vector<AdmittedEvent>& batch, uint64_t batch_seq,
    std::map<uint64_t, std::string>* outbox,
    std::vector<obs::RequestTraceStore::Record>* records) {
  obs::SpanCollector* collector = obs::GetSpanCollector();

  // Scratch for the current contiguous query run.
  std::vector<stream::Query> queries;
  std::vector<const AdmittedEvent*> query_events;
  std::vector<core::QueryOutcome> outcomes;
  std::vector<core::QueryStageBreakdown> stage_breakdowns;
  std::vector<uint64_t> root_span_ids;
  size_t batch_queries = 0;

  // Stage-boundary stamps shared across a contiguous run: every request
  // in the run gets the same module window, so per-request stage sums
  // still reconcile exactly with the end-to-end latency.
  auto start_record = [&](const AdmittedEvent& event,
                          obs::RequestTraceStore::RequestClass klass,
                          int64_t run_start_micros, uint64_t root_span_id) {
    obs::RequestTraceStore::Record record;
    record.request_id = event.request_id;
    record.trace_id = event.trace_id;
    record.conn_id = event.conn_id;
    record.batch_seq = batch_seq;
    record.request_class = klass;
    record.trace_sampled = event.trace_sampled;
    record.root_span_id = root_span_id;
    record.arrival_micros = event.arrival_micros;
    record.admit_micros = event.admit_micros;
    record.dequeue_micros = event.dequeue_micros;
    record.run_start_micros = run_start_micros;
    record.queue_wait_ns =
        MicrosToNanos(event.dequeue_micros, event.admit_micros);
    record.batch_form_ns =
        MicrosToNanos(run_start_micros, event.dequeue_micros);
    return record;
  };

  auto observe_queue_wait = [&](const AdmittedEvent& event,
                                obs::Histogram* histogram) {
    if (histogram == nullptr) return;
    const double wait_ms =
        static_cast<double>(std::max<int64_t>(
            0, event.dequeue_micros - event.admit_micros)) /
        1000.0;
    histogram->ObserveWithExemplar(wait_ms, event.trace_id,
                                   event.request_id);
  };

  auto flush_queries = [&] {
    if (queries.empty()) return;
    outcomes.resize(queries.size());
    stage_breakdowns.assign(queries.size(), core::QueryStageBreakdown{});
    // Pre-allocate the root span id of every sampled request in the
    // run, then run the module under a span linked to the first one:
    // the module's internal LATEST_SPANs (ground_truth / estimate /
    // model_update) land on the batch thread's track inside the same
    // trace, while the root itself is emitted later by the IO thread
    // at flush completion.
    root_span_ids.assign(queries.size(), 0);
    obs::TraceContext run_link;
    if (collector != nullptr) {
      for (size_t i = 0; i < query_events.size(); ++i) {
        if (!query_events[i]->trace_sampled) continue;
        root_span_ids[i] = collector->NextId();
        if (run_link.span_id == 0) {
          run_link = obs::TraceContext{query_events[i]->trace_id,
                                       root_span_ids[i], true};
        }
      }
    }
    const int64_t run_start_micros = NowMicros();
    {
      obs::Span module_run("module_run", run_link);
      module_->OnQueryBatch(queries.data(), queries.size(),
                            outcomes.data(), /*tokenize_ms=*/nullptr,
                            stage_breakdowns.data());
    }
    const int64_t run_end_micros = NowMicros();
    for (size_t i = 0; i < queries.size(); ++i) {
      const AdmittedEvent& event = *query_events[i];
      QueryResponse resp;
      resp.request_id = event.request_id;
      resp.estimate = outcomes[i].estimate;
      resp.actual = outcomes[i].actual;
      resp.phase = static_cast<uint32_t>(outcomes[i].phase);
      resp.active_kind = static_cast<uint32_t>(outcomes[i].active);
      EncodeQueryResponse(resp, &(*outbox)[event.conn_id]);
      stats_.queries_answered.fetch_add(1, std::memory_order_relaxed);
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      if (queries_counter_ != nullptr) queries_counter_->Increment();
      if (frames_out_counter_ != nullptr) frames_out_counter_->Increment();
      if (query_latency_histogram_ != nullptr) {
        query_latency_histogram_->ObserveWithExemplar(
            static_cast<double>(run_end_micros - event.admit_micros) /
                1000.0,
            event.trace_id, event.request_id);
      }
      observe_queue_wait(event, query_queue_wait_histogram_);
      obs::RequestTraceStore::Record record = start_record(
          event, obs::RequestTraceStore::RequestClass::kQuery,
          run_start_micros, root_span_ids[i]);
      record.run_end_micros = run_end_micros;
      record.module_ns = MicrosToNanos(run_end_micros, run_start_micros);
      record.ground_truth_ns = static_cast<int64_t>(
          stage_breakdowns[i].ground_truth_ms * 1e6);
      record.estimate_ns =
          static_cast<int64_t>(stage_breakdowns[i].estimate_ms * 1e6);
      record.model_ns =
          static_cast<int64_t>(stage_breakdowns[i].model_ms * 1e6);
      records->push_back(std::move(record));
    }
    batch_queries += queries.size();
    queries.clear();
    query_events.clear();
  };

  for (const AdmittedEvent& event : batch) {
    if (event.kind == AdmittedEvent::Kind::kQuery) {
      stream::Query q = event.query;
      // The module requires non-decreasing timestamps across objects and
      // queries; many independent clients cannot coordinate theirs, so
      // the serving plane monotonizes.
      last_timestamp_ = std::max(last_timestamp_, q.timestamp);
      q.timestamp = last_timestamp_;
      queries.push_back(std::move(q));
      query_events.push_back(&event);
      continue;
    }
    // An ingest ends the current query run (order preservation).
    flush_queries();
    stream::GeoTextObject obj = event.object;
    last_timestamp_ = std::max(last_timestamp_, obj.timestamp);
    obj.timestamp = last_timestamp_;
    uint64_t ingest_root_id = 0;
    obs::TraceContext ingest_link;
    if (collector != nullptr && event.trace_sampled) {
      ingest_root_id = collector->NextId();
      ingest_link = obs::TraceContext{event.trace_id, ingest_root_id, true};
    }
    const int64_t run_start_micros = NowMicros();
    {
      obs::Span module_run("module_run", ingest_link);
      if (ingest_hook_) {
        ingest_hook_(obj);
      } else {
        module_->OnObject(obj);
      }
    }
    const int64_t run_end_micros = NowMicros();
    stats_.objects_ingested.fetch_add(1, std::memory_order_relaxed);
    if (ingests_counter_ != nullptr) ingests_counter_->Increment();
    EncodeIngestAck({event.request_id}, &(*outbox)[event.conn_id]);
    stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    if (frames_out_counter_ != nullptr) frames_out_counter_->Increment();
    observe_queue_wait(event, ingest_queue_wait_histogram_);
    obs::RequestTraceStore::Record record = start_record(
        event, obs::RequestTraceStore::RequestClass::kIngest,
        run_start_micros, ingest_root_id);
    record.run_end_micros = run_end_micros;
    record.module_ns = MicrosToNanos(run_end_micros, run_start_micros);
    records->push_back(std::move(record));
  }
  flush_queries();

  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  if (batch_size_histogram_ != nullptr && batch_queries > 0) {
    batch_size_histogram_->Observe(static_cast<double>(batch_queries));
  }
  phase_mirror_.store(static_cast<uint32_t>(module_->phase()),
                      std::memory_order_relaxed);
  active_kind_mirror_.store(static_cast<uint32_t>(module_->active_kind()),
                            std::memory_order_relaxed);
}

}  // namespace latest::net
