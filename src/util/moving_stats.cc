#include "util/moving_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::util {

MovingAverage::MovingAverage(size_t capacity) : buffer_(capacity, 0.0) {
  assert(capacity > 0);
}

void MovingAverage::Add(double v) {
  if (size_ == buffer_.size()) {
    sum_ -= buffer_[head_];
  } else {
    ++size_;
  }
  buffer_[head_] = v;
  sum_ += v;
  head_ = (head_ + 1) % buffer_.size();
}

double MovingAverage::Mean() const {
  if (size_ == 0) return 0.0;
  return sum_ / static_cast<double>(size_);
}

void MovingAverage::Reset() {
  std::fill(buffer_.begin(), buffer_.end(), 0.0);
  head_ = 0;
  size_ = 0;
  sum_ = 0.0;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::Add(double v) {
  if (!seeded_) {
    value_ = v;
    seeded_ = true;
  } else {
    value_ = (1.0 - alpha_) * value_ + alpha_ * v;
  }
}

double Ewma::Value(double fallback) const { return seeded_ ? value_ : fallback; }

void Ewma::Reset() {
  value_ = 0.0;
  seeded_ = false;
}

void RunningMoments::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
}

double RunningMoments::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::StdDev() const { return std::sqrt(Variance()); }

void RunningMoments::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace latest::util
