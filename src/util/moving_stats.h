// Moving-window and exponentially-weighted statistics.
//
// LATEST's accuracy monitor averages estimation accuracy over the most
// recent queries (Section V-D); the per-estimator scoreboard keeps EWMA
// accuracy/latency per query type.

#ifndef LATEST_UTIL_MOVING_STATS_H_
#define LATEST_UTIL_MOVING_STATS_H_

#include <cstddef>
#include <vector>

#include "util/serialization.h"

namespace latest::util {

/// Mean over a fixed-capacity sliding window of the most recent samples.
class MovingAverage {
 public:
  /// capacity: number of most-recent samples averaged (> 0).
  explicit MovingAverage(size_t capacity);

  /// Adds a sample, evicting the oldest once at capacity.
  void Add(double v);

  /// Mean of the currently held samples; 0 when empty.
  double Mean() const;

  size_t size() const { return size_; }
  size_t capacity() const { return buffer_.size(); }
  bool full() const { return size_ == buffer_.size(); }

  /// Drops all samples.
  void Reset();

  /// Persists window contents and cursor position.
  void Save(BinaryWriter* writer) const {
    writer->WriteU64(buffer_.size());
    writer->WriteU64(head_);
    writer->WriteU64(size_);
    writer->WriteDouble(sum_);
    for (double v : buffer_) writer->WriteDouble(v);
  }

  /// Restores a state persisted by Save; the capacity must match the one
  /// this instance was constructed with. False on mismatch or truncation.
  bool Load(BinaryReader* reader) {
    uint64_t capacity, head, size;
    double sum;
    if (!reader->ReadU64(&capacity) || !reader->ReadU64(&head) ||
        !reader->ReadU64(&size) || !reader->ReadDouble(&sum)) {
      return false;
    }
    if (capacity != buffer_.size() || head > capacity || size > capacity) {
      return false;
    }
    std::vector<double> values(capacity);
    for (auto& v : values) {
      if (!reader->ReadDouble(&v)) return false;
    }
    buffer_ = std::move(values);
    head_ = head;
    size_ = size;
    sum_ = sum;
    return true;
  }

 private:
  std::vector<double> buffer_;
  size_t head_ = 0;  // Next write position.
  size_t size_ = 0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average: ewma <- (1-a)*ewma + a*v.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void Add(double v);

  /// Current estimate; `fallback` before any sample.
  double Value(double fallback = 0.0) const;

  /// Restores a persisted state (value meaningful only when seeded).
  void Restore(double value, bool seeded) {
    value_ = value;
    seeded_ = seeded;
  }

  bool empty() const { return !seeded_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Streaming mean/variance (Welford).
class RunningMoments {
 public:
  void Add(double v);
  size_t count() const { return count_; }
  double Mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two samples.
  double Variance() const;
  double StdDev() const;
  double Min() const { return count_ ? min_ : 0.0; }
  double Max() const { return count_ ? max_ : 0.0; }
  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_MOVING_STATS_H_
