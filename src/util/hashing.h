// 64-bit hashing helpers shared by synopses (KMV), grids, and dictionaries.

#ifndef LATEST_UTIL_HASHING_H_
#define LATEST_UTIL_HASHING_H_

#include <cstdint>
#include <string_view>

namespace latest::util {

/// Finalizing 64-bit mixer (Murmur3 fmix64). Bijective; good avalanche.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two 64-bit hashes into one.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

/// Hashes a value with a seeded family member (distinct seeds give
/// approximately independent hash functions, as required by KMV synopses).
inline uint64_t SeededHash(uint64_t value, uint64_t seed) {
  return Mix64(value ^ Mix64(seed));
}

/// Maps a 64-bit hash to the unit interval [0, 1).
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// FNV-1a over bytes, for interning keyword strings.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return Mix64(h);
}

}  // namespace latest::util

#endif  // LATEST_UTIL_HASHING_H_
