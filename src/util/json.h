// Minimal JSON document model and recursive-descent parser.
//
// The observability plane emits several JSON documents (metrics
// exposition, healthz verdicts, flight-recorder postmortem bundles) that
// in-repo consumers — the latest_postmortem inspector and the tests that
// assert bundle well-formedness — need to read back. This is a small,
// dependency-free DOM: numbers are doubles, objects preserve insertion
// order, and parse errors report byte offsets. It is not a streaming
// parser and not built for huge documents; postmortem bundles are a few
// hundred kilobytes at most.

#ifndef LATEST_UTIL_JSON_H_
#define LATEST_UTIL_JSON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace latest::util {

/// One JSON value. Objects keep their members in document order (the
/// exposition formats are deterministic, so round-trips stay diffable).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads with fallbacks (never throw; wrong-type reads return the
  /// fallback).
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  size_t size() const {
    return is_array() ? items_.size() : is_object() ? members_.size() : 0;
  }

  /// Object member lookup; null when absent or not an object. The
  /// returned pointer borrows from this value.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience: Find(key), or a shared null value (so chained lookups
  /// never dereference nullptr): `doc.Get("a").Get("b").AsInt()`.
  const JsonValue& Get(std::string_view key) const;

  /// Array element, or the shared null value when out of range.
  const JsonValue& At(size_t index) const;

  // Construction (used by the parser and by tests).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an InvalidArgument carrying the byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `value` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes).
std::string JsonEscape(std::string_view value);

}  // namespace latest::util

#endif  // LATEST_UTIL_JSON_H_
