// Zipf-distributed sampling over {0, ..., n-1}.
//
// Keyword frequencies in user-generated geo-textual streams are heavily
// skewed; the workload generators draw keyword ids from this sampler. Uses a
// precomputed inverse-CDF table (O(log n) per draw), which is exact and fast
// for the vocabulary sizes LATEST works with (up to a few million terms).

#ifndef LATEST_UTIL_ZIPF_H_
#define LATEST_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace latest::util {

/// Samples ranks from a Zipf(s) distribution: P(k) proportional to
/// 1 / (k+1)^s for k in [0, n).
class ZipfSampler {
 public:
  /// n: support size (> 0). s: skew exponent (>= 0; 0 is uniform).
  ZipfSampler(uint64_t n, double s, uint64_t seed);

  /// Draws one rank in [0, n). Rank 0 is the most frequent.
  uint64_t Next();

  /// Probability mass of rank k.
  double Probability(uint64_t k) const;

  uint64_t support_size() const { return cdf_.size(); }
  double skew() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
  Rng rng_;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_ZIPF_H_
