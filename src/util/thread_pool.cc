#include "util/thread_pool.h"

#include "util/stopwatch.h"

namespace latest::util {

ThreadPool::ThreadPool(uint32_t num_threads) : num_threads_(num_threads) {
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Inline mode never queues, and workers only exit once the queue is
  // empty, so nothing submitted is ever dropped.
}

void ThreadPool::NotifyTaskDone(double latency_ms) {
  if (observer_ != nullptr) {
    observer_->OnTaskDone(latency_ms, QueueDepth());
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The task itself notifies the observer (see Submit / ParallelFor):
    // the notification must land before the task's completion becomes
    // observable to waiters, or a waiter could tear the observer down
    // while this thread is still inside the callback.
    task();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  // The observer notification runs inside the packaged task, so it lands
  // before the future becomes ready: once a waiter's get() returns, no
  // worker is still inside the observer callback for that task.
  auto task = std::make_shared<std::packaged_task<void()>>(
      [this, fn = std::move(fn)] {
        const Stopwatch watch;
        try {
          fn();
        } catch (...) {
          NotifyTaskDone(watch.ElapsedMillis());
          throw;  // Captured by the packaged_task into the future.
        }
        NotifyTaskDone(watch.ElapsedMillis());
      });
  std::future<void> future = task->get_future();
  std::function<void()> wrapped = [task] { (*task)(); };
  if (num_threads_ == 0) {
    wrapped();
    return future;
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
    depth = queue_.size();
  }
  if (observer_ != nullptr) observer_->OnTaskQueued(depth);
  work_available_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 0 || n == 1) {
    // Inline fallback: identical visitation order and side effects as a
    // plain loop.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct JoinState {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<JoinState>();
  state->remaining = n;
  state->errors.resize(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      queue_.push_back([this, state, &fn, i] {
        const Stopwatch watch;
        try {
          fn(i);
        } catch (...) {
          state->errors[i] = std::current_exception();
        }
        // Notify before decrementing `remaining`: ParallelFor must not
        // return (and let the caller release the observer) while a worker
        // is still inside the callback.
        NotifyTaskDone(watch.ElapsedMillis());
        {
          std::lock_guard<std::mutex> inner(state->mu);
          --state->remaining;
        }
        state->done.notify_one();
      });
    }
  }
  if (observer_ != nullptr) observer_->OnTaskQueued(QueueDepth());
  work_available_.notify_all();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] { return state->remaining == 0; });
  }
  for (size_t i = 0; i < n; ++i) {
    if (state->errors[i]) std::rethrow_exception(state->errors[i]);
  }
}

}  // namespace latest::util
