#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::util {

ZipfSampler::ZipfSampler(uint64_t n, double s, uint64_t seed)
    : s_(s), rng_(seed) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  const double inv_total = 1.0 / total;
  for (auto& c : cdf_) c *= inv_total;
  cdf_.back() = 1.0;  // Guard against round-off at the tail.
}

uint64_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint64_t k) const {
  assert(k < cdf_.size());
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace latest::util
