// Running min-max normalization to [0, 1].
//
// Section V-C of the paper scales both learning-model performance features
// (query accuracy and query latency) through min-max normalization before
// weighting them with alpha. The scaler tracks the observed range
// incrementally so it works over an unbounded stream.

#ifndef LATEST_UTIL_MINMAX_SCALER_H_
#define LATEST_UTIL_MINMAX_SCALER_H_

#include <cstdint>

namespace latest::util {

/// Tracks observed min/max of a scalar stream and scales values to [0, 1].
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Widens the observed range to include v.
  void Observe(double v);

  /// Scales v into [0, 1] against the observed range, clamping outliers.
  /// Before any observation (or with a degenerate range) returns 0.5.
  double Scale(double v) const;

  /// Observe(v) followed by Scale(v).
  double ObserveAndScale(double v);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Forgets the observed range.
  void Reset();

  /// Restores a persisted state.
  void Restore(double min, double max, uint64_t count) {
    min_ = min;
    max_ = max;
    count_ = count;
  }

 private:
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_MINMAX_SCALER_H_
