#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace latest::util {

namespace {

const JsonValue& SharedNull() {
  static const JsonValue null_value;
  return null_value;
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::Get(std::string_view key) const {
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : SharedNull();
}

const JsonValue& JsonValue::At(size_t index) const {
  if (!is_array() || index >= items_.size()) return SharedNull();
  return items_[index];
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.members_ = std::move(members);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view; tracks a byte offset for
/// error messages and bounds recursion depth (hostile inputs reach us
/// through operator-supplied bundle files).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " at byte %zu", pos_);
    return Status::InvalidArgument("json: " + what + buffer);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = JsonValue::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        *out = JsonValue::MakeBool(true);
        return Status::Ok();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        *out = JsonValue::MakeBool(false);
        return Status::Ok();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        *out = JsonValue::MakeNull();
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::Ok();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs decode as
          // two replacement-free units; the exposition formats only emit
          // \u for control characters, so this stays simple).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign consumed; digits follow.
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      return Error("bad number");
    }
    *out = JsonValue::MakeNumber(value);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace latest::util
