// A fixed-size, work-stealing-free thread pool for deterministic
// fan-out/join parallelism.
//
// LATEST's parallel sections (portfolio measurement during pre-training,
// grid-sharded ground truth) all follow the same shape: N independent
// tasks write into pre-sized slots, the caller joins, and every
// order-sensitive side effect happens serially after the join. The pool
// therefore exposes exactly two operations — fire-and-collect `Submit`
// and blocking `ParallelFor` — and guarantees that a pool constructed
// with zero threads degenerates to inline execution on the caller's
// thread, so the serial and parallel code paths are one code path.
//
// Determinism contract: ParallelFor(n, fn) invokes fn exactly once for
// every index in [0, n); which thread runs which index is unspecified,
// so fn must only touch per-index state. Exceptions thrown by fn are
// captured per index and the lowest-index exception is rethrown on the
// caller — independent of scheduling, the same failure surfaces for the
// same input.

#ifndef LATEST_UTIL_THREAD_POOL_H_
#define LATEST_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace latest::util {

/// Fixed-size thread pool with a single shared FIFO queue.
class ThreadPool {
 public:
  /// Telemetry hook: implemented by the observability layer so the pool
  /// itself stays free of metric dependencies. Callbacks fire on worker
  /// threads (or the caller's thread in inline mode) and must be
  /// thread-safe; the registry-backed implementation uses relaxed
  /// atomics only.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// A task was enqueued; `queue_depth` includes it.
    virtual void OnTaskQueued(size_t queue_depth) = 0;
    /// A task finished running (normally or by throwing).
    virtual void OnTaskDone(double latency_ms, size_t queue_depth) = 0;
  };

  /// Spawns `num_threads` workers; 0 means no workers and every Submit /
  /// ParallelFor executes inline on the calling thread.
  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue — every task already submitted still runs — then
  /// joins all workers.
  ~ThreadPool();

  /// Enqueues one task. The future rethrows whatever the task threw.
  /// Inline mode runs the task before returning (the future is ready).
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(0) ... fn(n-1), blocking until all complete. Indices are
  /// dispatched as individual tasks (callers shard coarse work, e.g. one
  /// index per grid-row band, to keep task counts small). Rethrows the
  /// lowest-index exception after all indices finished.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Worker threads (0 = inline mode).
  uint32_t num_threads() const { return num_threads_; }

  /// Tasks currently waiting in the queue (excludes running tasks).
  size_t QueueDepth() const;

  /// Installs (or clears, with nullptr) the telemetry observer. Not
  /// synchronized against in-flight tasks: install before first use.
  void SetObserver(Observer* observer) { observer_ = observer; }

 private:
  void WorkerLoop();
  /// Fires Observer::OnTaskDone; called from inside each task so the
  /// notification completes before the task's completion is observable
  /// (future ready / ParallelFor returned).
  void NotifyTaskDone(double latency_ms);

  const uint32_t num_threads_;
  Observer* observer_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_THREAD_POOL_H_
