// Status and Result<T>: the library-wide error model.
//
// LATEST follows the convention of storage-engine libraries (RocksDB, Arrow):
// no exceptions on hot paths. Fallible operations return a Status, or a
// Result<T> that carries either a value or a Status. Statuses are cheap to
// copy for the OK case (empty message, code only).

#ifndef LATEST_UTIL_STATUS_H_
#define LATEST_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace latest::util {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kResourceExhausted,
  kInternal,
  kDataLoss,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Typical use:
///   Status s = window.Configure(cfg);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Named constructors, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or a Status. Access to the value requires ok().
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;` in a Result<int> function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result from Status requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the value out; must only be called when ok().
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ is engaged.
  std::optional<T> value_;
};

}  // namespace latest::util

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status.
#define LATEST_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::latest::util::Status _latest_status = (expr); \
    if (!_latest_status.ok()) return _latest_status; \
  } while (false)

#endif  // LATEST_UTIL_STATUS_H_
