#include "util/rng.h"

#include <cmath>

#include "util/serialization.h"

namespace latest::util {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire-style rejection: reject the biased tail of the 64-bit range.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

void Rng::Save(BinaryWriter* writer) const {
  for (uint64_t s : s_) writer->WriteU64(s);
  writer->WriteBool(has_cached_gaussian_);
  writer->WriteDouble(cached_gaussian_);
}

bool Rng::Load(BinaryReader* reader) {
  for (auto& s : s_) {
    if (!reader->ReadU64(&s)) return false;
  }
  return reader->ReadBool(&has_cached_gaussian_) &&
         reader->ReadDouble(&cached_gaussian_);
}

}  // namespace latest::util
