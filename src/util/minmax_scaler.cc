#include "util/minmax_scaler.h"

#include <algorithm>

namespace latest::util {

void MinMaxScaler::Observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

double MinMaxScaler::Scale(double v) const {
  if (count_ == 0 || max_ <= min_) return 0.5;
  const double t = (v - min_) / (max_ - min_);
  return std::clamp(t, 0.0, 1.0);
}

double MinMaxScaler::ObserveAndScale(double v) {
  Observe(v);
  return Scale(v);
}

void MinMaxScaler::Reset() {
  min_ = max_ = 0.0;
  count_ = 0;
}

}  // namespace latest::util
