// Minimal binary serialization used to persist learned state (the
// Hoeffding tree and the scoreboard) across process restarts.
//
// Format: little-endian fixed-width integers and IEEE doubles, written
// sequentially. The reader is bounds-checked: every Read* returns false
// on truncation instead of reading past the buffer, so corrupt snapshots
// fail cleanly.

#ifndef LATEST_UTIL_SERIALIZATION_H_
#define LATEST_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace latest::util {

/// Appends typed values to a byte buffer.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU32(v ? 1 : 0); }

  /// Length-unprefixed raw bytes; the reader must know the size.
  void WriteBytes(const void* data, size_t size) { WriteRaw(data, size); }

  /// Length-prefixed byte string (u64 size + payload).
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, size_t size) {
    // Zero-size appends are no-ops (and `data` may then legally be null,
    // e.g. an empty vector's data()).
    if (size != 0) buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Sequentially consumes typed values from a byte view.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadBool(bool* v) {
    uint32_t raw;
    if (!ReadU32(&raw)) return false;
    *v = raw != 0;
    return true;
  }

  /// Raw bytes of a known size (counterpart of WriteBytes).
  bool ReadBytes(void* out, size_t size) { return ReadRaw(out, size); }

  /// Length-prefixed byte string (counterpart of WriteString).
  bool ReadString(std::string* s) {
    uint64_t size;
    if (!ReadU64(&size) || remaining() < size) return false;
    s->assign(data_.data() + offset_, size);
    offset_ += size;
    return true;
  }

  /// Advances past `size` bytes without copying them.
  bool Skip(size_t size) {
    if (remaining() < size) return false;
    offset_ += size;
    return true;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  bool ReadRaw(void* out, size_t size) {
    if (remaining() < size) return false;
    // memcpy with a null destination is UB even for zero bytes, and an
    // empty vector's data() is legitimately null.
    if (size != 0) std::memcpy(out, data_.data() + offset_, size);
    offset_ += size;
    return true;
  }

  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_SERIALIZATION_H_
