// Wall-clock measurement of estimation query latency.

#ifndef LATEST_UTIL_STOPWATCH_H_
#define LATEST_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace latest::util {

/// Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds (fractional).
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_STOPWATCH_H_
