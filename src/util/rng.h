// Deterministic pseudo-random number generation for the whole library.
//
// All randomness in LATEST (stream synthesis, reservoir replacement, SPN
// clustering, ...) flows through seeded Rng instances so that every
// experiment is replayable bit-for-bit. The core generator is xoshiro256**,
// seeded via SplitMix64.

#ifndef LATEST_UTIL_RNG_H_
#define LATEST_UTIL_RNG_H_

#include <cstdint>

namespace latest::util {

class BinaryReader;
class BinaryWriter;

/// SplitMix64 step; also usable as a standalone 64-bit mixer.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic seeded PRNG (xoshiro256**). Copyable: a copy continues an
/// independent replayable sequence from the copied state.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

  /// Persists the generator state so a restored process continues the
  /// exact same sequence.
  void Save(BinaryWriter* writer) const;

  /// Restores a state persisted by Save; false on truncation.
  bool Load(BinaryReader* reader);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace latest::util

#endif  // LATEST_UTIL_RNG_H_
