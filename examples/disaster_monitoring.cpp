// Disaster monitoring: the paper's motivating scenario (Section I).
//
// First responders of a rescue team estimate, in real time, the number of
// stream posts carrying the keyword "fire" inside the affected downtown
// area, to gauge how many people are seeking help and size the response.
//
// This example builds its own geo-textual stream with the public API (no
// synthetic-workload helpers): steady city chatter, then a fire incident
// that bursts "fire"/"help"/"evacuation" posts inside an incident zone.
// A LATEST module answers the responders' estimation queries while the
// exact count is shown alongside for reference.
//
//   ./build/examples/disaster_monitoring

#include <cstdio>
#include <string>
#include <vector>

#include "core/latest_module.h"
#include "stream/keyword_dictionary.h"
#include "util/rng.h"

namespace {

using latest::core::LatestConfig;
using latest::core::LatestModule;
using latest::geo::Point;
using latest::geo::Rect;
using latest::stream::GeoTextObject;
using latest::stream::KeywordDictionary;
using latest::stream::KeywordId;
using latest::stream::Query;
using latest::stream::Timestamp;

// A simple city: downtown core plus suburbs, in local km coordinates.
constexpr Rect kCity{0.0, 0.0, 40.0, 40.0};
constexpr Rect kDowntown{16.0, 16.0, 24.0, 24.0};
constexpr Rect kIncidentZone{17.0, 20.0, 21.0, 24.0};

constexpr Timestamp kHourMs = 60LL * 60 * 1000;
constexpr Timestamp kStreamDuration = 8 * kHourMs;
constexpr Timestamp kIncidentStart = 4 * kHourMs;
constexpr Timestamp kIncidentEnd = 6 * kHourMs;

}  // namespace

int main() {
  KeywordDictionary dictionary;
  // Everyday chatter vocabulary plus the incident vocabulary.
  const std::vector<std::string> chatter = {
      "coffee", "traffic", "music",  "food",    "game",
      "work",   "school",  "party",  "weather", "news"};
  std::vector<KeywordId> chatter_ids;
  chatter_ids.reserve(chatter.size());
  for (const auto& word : chatter) {
    chatter_ids.push_back(dictionary.Intern(word));
  }
  const KeywordId kw_fire = dictionary.Intern("fire");
  const KeywordId kw_help = dictionary.Intern("help");
  const KeywordId kw_evacuation = dictionary.Intern("evacuation");

  // LATEST over a one-hour window.
  LatestConfig config;
  config.bounds = kCity;
  config.window.window_length_ms = kHourMs;
  config.pretrain_queries = 20;
  config.estimator.reservoir_capacity = 1024;
  auto module_result = LatestModule::Create(config);
  if (!module_result.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 module_result.status().ToString().c_str());
    return 1;
  }
  LatestModule& module = **module_result;

  latest::util::Rng rng(2026);
  const uint64_t posts_per_hour = 20000;
  const auto total_posts = static_cast<uint64_t>(
      posts_per_hour * kStreamDuration / kHourMs);

  std::printf("disaster monitoring over a %lld-hour stream "
              "(%llu posts, fire incident hours 4-6)\n\n",
              static_cast<long long>(kStreamDuration / kHourMs),
              static_cast<unsigned long long>(total_posts));
  std::printf("%-6s %-12s %10s %10s %9s %10s\n", "hour", "phase",
              "estimate", "actual", "accuracy", "estimator");

  uint64_t oid = 0;
  Timestamp next_query = kHourMs + kHourMs / 2;  // After the warm-up.
  for (uint64_t i = 0; i < total_posts; ++i) {
    GeoTextObject post;
    post.oid = oid++;
    post.timestamp =
        static_cast<Timestamp>(kStreamDuration * i / total_posts);

    const bool incident_active = post.timestamp >= kIncidentStart &&
                                 post.timestamp < kIncidentEnd;
    // During the incident, a growing share of posts come from the zone
    // and carry incident keywords.
    const bool incident_post = incident_active && rng.NextBool(0.25);
    if (incident_post) {
      post.loc = Point{rng.NextDouble(kIncidentZone.min_x, kIncidentZone.max_x),
                       rng.NextDouble(kIncidentZone.min_y, kIncidentZone.max_y)};
      post.keywords.push_back(kw_fire);
      if (rng.NextBool(0.5)) post.keywords.push_back(kw_help);
      if (rng.NextBool(0.2)) post.keywords.push_back(kw_evacuation);
    } else {
      // 60% downtown, 40% city-wide.
      const Rect& area = rng.NextBool(0.6) ? kDowntown : kCity;
      post.loc = Point{rng.NextDouble(area.min_x, area.max_x),
                       rng.NextDouble(area.min_y, area.max_y)};
      post.keywords.push_back(
          chatter_ids[rng.NextBounded(chatter_ids.size())]);
      if (rng.NextBool(0.3)) {
        post.keywords.push_back(
            chatter_ids[rng.NextBounded(chatter_ids.size())]);
      }
    }
    latest::stream::CanonicalizeKeywords(&post.keywords);
    dictionary.CountOccurrences(post.keywords);
    module.OnObject(post);

    // The responders poll every ~6 minutes: how many posts mention
    // "fire" or "help" inside the incident zone over the past hour?
    if (post.timestamp >= next_query) {
      Query q;
      q.range = kIncidentZone;
      q.keywords = {kw_fire, kw_help};
      latest::stream::CanonicalizeKeywords(&q.keywords);
      q.timestamp = post.timestamp;
      const auto outcome = module.OnQuery(q);
      if (next_query % (kHourMs / 2) == 0 ||
          (post.timestamp >= kIncidentStart - kHourMs / 4 &&
           post.timestamp < kIncidentEnd + kHourMs / 2)) {
        std::printf("%-6.2f %-12s %10.0f %10llu %8.0f%% %10s\n",
                    static_cast<double>(post.timestamp) / kHourMs,
                    latest::core::PhaseName(outcome.phase),
                    outcome.estimate,
                    static_cast<unsigned long long>(outcome.actual),
                    100.0 * outcome.accuracy,
                    latest::estimators::EstimatorKindName(outcome.active));
      }
      next_query += kHourMs / 10;
    }
  }

  std::printf("\nswitches performed: %zu; final estimator: %s\n",
              module.switch_log().size(),
              latest::estimators::EstimatorKindName(module.active_kind()));
  std::printf(
      "The incident burst (hours 4-6) is visible as the actual count "
      "surging, with the estimates tracking it in real time.\n");
  return 0;
}
