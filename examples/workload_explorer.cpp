// Workload explorer: a small CLI to run LATEST over any of the paper's
// dataset/workload combinations and inspect its behaviour.
//
//   ./build/examples/workload_explorer [dataset] [workload] [alpha] [queries]
//
//   dataset : twitter | ebird | checkin          (default twitter)
//   workload: TwQW1..TwQW6 | EbRQW1 | CiQW1      (default TwQW1)
//   alpha   : 0..1                               (default 0.5)
//   queries : query volume                       (default 3000)
//
// After the run it prints the module's introspection snapshot, the
// retained lifecycle event log, the sampled query traces, and the full
// Prometheus-text metrics exposition (pipe through `grep latest_` for a
// scrape-shaped view).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/latest_module.h"
#include "core/module_stats.h"
#include "obs/event_log.h"
#include "obs/query_trace.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"
#include "workload/stream_driver.h"

namespace {

using namespace latest;

workload::DatasetSpec DatasetByName(const std::string& name) {
  if (name == "ebird") return workload::EbirdLikeSpec(0.5);
  if (name == "checkin") return workload::CheckinLikeSpec(0.5);
  return workload::TwitterLikeSpec(0.5);
}

bool WorkloadByName(const std::string& name, workload::WorkloadId* id) {
  const struct {
    const char* name;
    workload::WorkloadId id;
  } table[] = {
      {"TwQW1", workload::WorkloadId::kTwQW1},
      {"TwQW2", workload::WorkloadId::kTwQW2},
      {"TwQW3", workload::WorkloadId::kTwQW3},
      {"TwQW4", workload::WorkloadId::kTwQW4},
      {"TwQW5", workload::WorkloadId::kTwQW5},
      {"TwQW6", workload::WorkloadId::kTwQW6},
      {"EbRQW1", workload::WorkloadId::kEbRQW1},
      {"CiQW1", workload::WorkloadId::kCiQW1},
  };
  for (const auto& entry : table) {
    if (name == entry.name) {
      *id = entry.id;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "twitter";
  const std::string workload_name = argc > 2 ? argv[2] : "TwQW1";
  const double alpha = argc > 3 ? std::atof(argv[3]) : 0.5;
  const uint32_t num_queries =
      argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 3000;

  workload::WorkloadId workload_id;
  if (!WorkloadByName(workload_name, &workload_id)) {
    std::fprintf(stderr,
                 "unknown workload '%s' (TwQW1..TwQW6, EbRQW1, CiQW1)\n",
                 workload_name.c_str());
    return 1;
  }
  if (alpha < 0.0 || alpha > 1.0 || num_queries == 0) {
    std::fprintf(stderr, "alpha must be in [0,1], queries > 0\n");
    return 1;
  }

  const auto dataset_spec = DatasetByName(dataset_name);
  workload::DatasetGenerator dataset(dataset_spec);
  const auto workload_spec =
      workload::MakeWorkloadSpec(workload_id, num_queries);
  workload::QueryGenerator queries(workload_spec, dataset_spec);

  core::LatestConfig config;
  config.bounds = dataset_spec.bounds;
  config.window.window_length_ms = 60LL * 60 * 1000;
  config.window.num_slices = 16;
  config.alpha = alpha;
  config.pretrain_queries = std::max(100u, num_queries / 10);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 module_result.status().ToString().c_str());
    return 1;
  }
  core::LatestModule& module = **module_result;

  std::printf("dataset=%s workload=%s alpha=%.2f queries=%u\n\n",
              dataset_spec.name.c_str(), workload_spec.name.c_str(), alpha,
              num_queries);

  workload::StreamDriver driver(&dataset, &queries,
                                config.window.window_length_ms,
                                dataset_spec.duration_ms);
  driver.AttachTelemetry(&module.telemetry().registry());
  double accuracy_sum = 0.0;
  double latency_sum = 0.0;
  uint64_t incremental = 0;
  uint64_t by_type[3] = {};
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t) {
        const auto outcome = module.OnQuery(q);
        ++by_type[static_cast<int>(q.Type())];
        if (outcome.phase != core::Phase::kIncremental) return;
        ++incremental;
        accuracy_sum += outcome.accuracy;
        latency_sum += outcome.latency_ms;
        if (outcome.switched) {
          const auto& sw = module.switch_log().back();
          std::printf("switch at incremental query %llu: %s -> %s\n",
                      static_cast<unsigned long long>(sw.query_index),
                      estimators::EstimatorKindName(sw.from),
                      estimators::EstimatorKindName(sw.to));
        }
      });

  std::printf("\nquery mix: %llu spatial, %llu keyword, %llu hybrid\n",
              static_cast<unsigned long long>(by_type[0]),
              static_cast<unsigned long long>(by_type[1]),
              static_cast<unsigned long long>(by_type[2]));
  if (incremental > 0) {
    std::printf("incremental phase: %llu queries, mean accuracy %.3f, "
                "mean latency %.4f ms\n",
                static_cast<unsigned long long>(incremental),
                accuracy_sum / static_cast<double>(incremental),
                latency_sum / static_cast<double>(incremental));
  }
  std::printf("final estimator: %s, switches: %zu, model: %llu records / "
              "%llu leaves / depth %u\n",
              estimators::EstimatorKindName(module.active_kind()),
              module.switch_log().size(),
              static_cast<unsigned long long>(module.model().num_trained()),
              static_cast<unsigned long long>(module.model().num_leaves()),
              module.model().depth());

  std::printf("\n--- module stats ---\n%s",
              core::FormatStats(module.GetStats()).c_str());

  std::printf("\n--- lifecycle event log (%zu retained) ---\n%s",
              module.telemetry().events().size(),
              obs::FormatEventLog(module.telemetry().events()).c_str());

  const auto traces = module.telemetry().traces().Snapshot();
  std::printf("\n--- sampled query traces (every %uth query, %zu retained) "
              "---\n",
              module.telemetry().traces().sample_every(), traces.size());
  for (const auto& trace : traces) {
    std::printf("%s\n", obs::FormatTrace(trace).c_str());
  }

  std::printf("\n--- prometheus exposition ---\n%s",
              module.telemetry().registry().PrometheusText().c_str());
  return 0;
}
