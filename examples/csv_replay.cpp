// CSV replay: feed LATEST from a CSV file of real (or exported)
// geo-textual records through the high-level EstimationService.
//
//   ./build/examples/csv_replay [stream.csv]
//
// CSV format, one object per line (see workload/csv_loader.h):
//
//   timestamp_ms,lon,lat,keyword1;keyword2;...
//
// Without an argument the example writes a small demo file first and
// replays it, issuing a keyword query every simulated 10 minutes.

#include <cstdio>
#include <fstream>
#include <string>

#include "core/estimation_service.h"
#include "util/rng.h"
#include "workload/csv_loader.h"

namespace {

using namespace latest;

// Writes a demo stream: 2 hours, "coffee"/"transit" chatter around two
// neighbourhoods plus a growing "festival" cluster in the second hour.
void WriteDemoCsv(const std::string& path) {
  std::ofstream out(path);
  out << "# demo stream: timestamp_ms,lon,lat,keywords\n";
  util::Rng rng(99);
  constexpr int64_t kTwoHours = 2LL * 60 * 60 * 1000;
  constexpr int kPosts = 40000;
  for (int i = 0; i < kPosts; ++i) {
    const int64_t t = kTwoHours * i / kPosts;
    double lon;
    double lat;
    std::string keywords;
    const bool second_hour = t > kTwoHours / 2;
    if (second_hour && rng.NextBool(0.3)) {
      lon = rng.NextGaussian(-79.38, 0.01);  // Festival grounds.
      lat = rng.NextGaussian(43.64, 0.01);
      keywords = rng.NextBool(0.6) ? "festival;music" : "festival";
    } else if (rng.NextBool(0.5)) {
      lon = rng.NextGaussian(-79.40, 0.03);
      lat = rng.NextGaussian(43.65, 0.03);
      keywords = rng.NextBool(0.5) ? "coffee" : "coffee;brunch";
    } else {
      lon = rng.NextGaussian(-79.35, 0.04);
      lat = rng.NextGaussian(43.68, 0.04);
      keywords = rng.NextBool(0.5) ? "transit" : "transit;delays";
    }
    out << t << ',' << lon << ',' << lat << ',' << keywords << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/latest_demo_stream.csv";
    WriteDemoCsv(path);
    std::printf("no input given; wrote demo stream to %s\n", path.c_str());
  }

  // Load the stream (keywords intern through the service's dictionary,
  // so load through a scratch dictionary only to learn the bounds).
  stream::KeywordDictionary scratch;
  auto loaded = workload::LoadCsvStream(path, &scratch);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  if (loaded->objects.empty()) {
    std::fprintf(stderr, "stream is empty\n");
    return 1;
  }
  geo::Rect bounds{1e30, 1e30, -1e30, -1e30};
  for (const auto& obj : loaded->objects) {
    bounds.min_x = std::min(bounds.min_x, obj.loc.x);
    bounds.min_y = std::min(bounds.min_y, obj.loc.y);
    bounds.max_x = std::max(bounds.max_x, obj.loc.x + 1e-9);
    bounds.max_y = std::max(bounds.max_y, obj.loc.y + 1e-9);
  }
  std::printf("loaded %zu objects (%llu comment/blank lines), bounds "
              "[%.3f, %.3f] x [%.3f, %.3f]\n\n",
              loaded->objects.size(),
              static_cast<unsigned long long>(loaded->lines_skipped),
              bounds.min_x, bounds.max_x, bounds.min_y, bounds.max_y);

  core::LatestConfig config;
  config.bounds = bounds;
  config.window.window_length_ms = 30LL * 60 * 1000;  // 30-minute window.
  config.pretrain_queries = 10;
  config.estimator.reservoir_capacity = 1024;
  auto service_result = core::EstimationService::Create(config);
  if (!service_result.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 service_result.status().ToString().c_str());
    return 1;
  }
  core::EstimationService& service = **service_result;

  const std::vector<std::string> watch = {"coffee", "transit", "festival"};
  std::printf("%-8s", "minute");
  for (const auto& keyword : watch) std::printf(" %16s", keyword.c_str());
  std::printf(" %10s\n", "estimator");

  int64_t next_report = config.window.window_length_ms;
  for (const auto& obj : loaded->objects) {
    // Re-ingest with keyword strings via the scratch dictionary's
    // spellings so the service builds its own vocabulary.
    std::vector<std::string> keywords;
    keywords.reserve(obj.keywords.size());
    for (const auto id : obj.keywords) {
      keywords.push_back(scratch.Spelling(id));
    }
    service.IngestKeywords(obj.oid, obj.loc, keywords, obj.timestamp);

    if (obj.timestamp >= next_report) {
      next_report += 10LL * 60 * 1000;
      std::printf("%-8lld", static_cast<long long>(obj.timestamp / 60000));
      for (const auto& keyword : watch) {
        auto outcome =
            service.EstimateCount(std::nullopt, {keyword}, obj.timestamp);
        if (outcome.ok()) {
          std::printf("  %6.0f (~%6llu)", outcome->estimate,
                      static_cast<unsigned long long>(outcome->actual));
        } else {
          std::printf(" %16s", "-");
        }
      }
      std::printf(" %10s\n",
                  estimators::EstimatorKindName(
                      service.module().active_kind()));
    }
  }

  std::printf("\nvocabulary: %zu keywords; switches: %zu\n",
              service.vocabulary_size(),
              service.module().switch_log().size());
  return 0;
}
