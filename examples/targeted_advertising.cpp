// Targeted advertising: the paper's second motivating application.
//
// An advertiser gauges, in real time, the popularity of product-related
// keywords in different metropolitan areas to decide where to place ads.
// Every half hour it ranks candidate areas by the estimated number of
// recent posts mentioning the campaign keywords, using LATEST instead of
// expensive exact index queries.
//
//   ./build/examples/targeted_advertising

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/latest_module.h"
#include "workload/dataset.h"

namespace {

using latest::core::LatestModule;
using latest::geo::Rect;
using latest::stream::KeywordId;
using latest::stream::Query;
using latest::stream::Timestamp;

struct Area {
  const char* name;
  Rect box;
};

}  // namespace

int main() {
  // Twitter-like national stream. Keyword ids are Zipf ranks; the
  // campaign tracks three mid-popularity "product" keywords.
  const auto dataset_spec = latest::workload::TwitterLikeSpec(/*scale=*/0.6);
  latest::workload::DatasetGenerator dataset(dataset_spec);
  const std::vector<KeywordId> campaign_keywords = {25, 60, 140};

  const std::vector<Area> areas = {
      {"New York", Rect::FromCenter({-74.0, 40.7}, 3.0, 3.0)},
      {"Los Angeles", Rect::FromCenter({-118.2, 34.1}, 3.0, 3.0)},
      {"Chicago", Rect::FromCenter({-87.6, 41.9}, 3.0, 3.0)},
      {"Houston", Rect::FromCenter({-95.4, 29.8}, 3.0, 3.0)},
      {"Miami", Rect::FromCenter({-80.2, 25.8}, 3.0, 3.0)},
  };

  latest::core::LatestConfig config;
  config.bounds = dataset_spec.bounds;
  config.window.window_length_ms = 60LL * 60 * 1000;
  config.pretrain_queries = 200;
  auto module_result = LatestModule::Create(config);
  if (!module_result.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 module_result.status().ToString().c_str());
    return 1;
  }
  LatestModule& module = **module_result;

  std::printf("campaign keyword popularity by area, over a sliding "
              "one-hour window\n");
  std::printf("(ranking re-estimated every 30 stream-minutes after "
              "warm-up + pre-training)\n\n");

  Timestamp next_ranking = 2 * config.window.window_length_ms;
  while (dataset.HasNext()) {
    const auto obj = dataset.Next();
    module.OnObject(obj);

    if (obj.timestamp < next_ranking) continue;
    next_ranking += 30LL * 60 * 1000;

    struct Ranked {
      const Area* area;
      double estimate;
      uint64_t actual;
    };
    std::vector<Ranked> ranking;
    for (const Area& area : areas) {
      Query q;
      q.range = area.box;
      q.keywords = campaign_keywords;
      q.timestamp = obj.timestamp;
      const auto outcome = module.OnQuery(q);
      ranking.push_back(Ranked{&area, outcome.estimate, outcome.actual});
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const Ranked& a, const Ranked& b) {
                return a.estimate > b.estimate;
              });

    std::printf("t=%.1fh (estimator %s):",
                static_cast<double>(obj.timestamp) / (60.0 * 60 * 1000),
                latest::estimators::EstimatorKindName(module.active_kind()));
    bool order_correct = true;
    for (size_t i = 0; i + 1 < ranking.size(); ++i) {
      if (ranking[i].actual < ranking[i + 1].actual) order_correct = false;
    }
    for (const auto& r : ranking) {
      std::printf("  %s est %.0f (true %llu)", r.area->name, r.estimate,
                  static_cast<unsigned long long>(r.actual));
    }
    std::printf("  [ranking %s]\n", order_correct ? "correct" : "off");
  }

  std::printf("\n%llu posts processed, %llu estimation queries, "
              "%zu estimator switches\n",
              static_cast<unsigned long long>(module.objects_ingested()),
              static_cast<unsigned long long>(module.queries_answered()),
              module.switch_log().size());
  return 0;
}
