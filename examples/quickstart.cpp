// Quickstart: run LATEST end-to-end on a synthetic Twitter-like stream
// with a phase-changing query workload and watch it switch estimators.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/latest_module.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"
#include "workload/stream_driver.h"

namespace {

using latest::core::LatestConfig;
using latest::core::LatestModule;
using latest::core::QueryOutcome;

}  // namespace

int main() {
  // 1. Describe the stream: a scaled-down Twitter-like dataset.
  const auto dataset_spec = latest::workload::TwitterLikeSpec(/*scale=*/1.0);
  latest::workload::DatasetGenerator dataset(dataset_spec);

  // 2. Describe the query workload: TwQW1 (one-third pure spatial, pure
  //    keyword, and hybrid queries, with the dominant type rotating).
  const auto workload_spec = latest::workload::MakeWorkloadSpec(
      latest::workload::WorkloadId::kTwQW1, /*num_queries=*/4000);
  latest::workload::QueryGenerator queries(workload_spec, dataset_spec);

  // 3. Configure LATEST. The window T is one hour of event time; queries
  //    start after the warm-up window has filled.
  LatestConfig config;
  config.bounds = dataset_spec.bounds;
  config.window.window_length_ms = 60LL * 60 * 1000;
  config.window.num_slices = 16;
  config.pretrain_queries = 400;
  config.maintain_shadow_estimators = true;  // Evaluation mode: measure all.
  auto module_result = LatestModule::Create(config);
  if (!module_result.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 module_result.status().ToString().c_str());
    return 1;
  }
  LatestModule& module = **module_result;

  // 4. Drive the interleaved stream.
  latest::workload::StreamDriver driver(
      &dataset, &queries,
      /*query_start_ms=*/config.window.window_length_ms,
      /*query_end_ms=*/dataset_spec.duration_ms);

  uint64_t queries_run = 0;
  double accuracy_sum = 0.0;
  double latency_sum = 0.0;
  // Per (query type, estimator) accuracy/latency sums from the shadow
  // measurements, for the closing report.
  double type_acc[3][latest::estimators::kNumPaperEstimatorKinds] = {};
  double type_lat[3][latest::estimators::kNumPaperEstimatorKinds] = {};
  uint64_t type_count[3] = {};
  driver.Run(
      [&](const latest::stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const latest::stream::Query& q, uint32_t /*index*/) {
        const QueryOutcome outcome = module.OnQuery(q);
        ++queries_run;
        accuracy_sum += outcome.accuracy;
        latency_sum += outcome.latency_ms;
        const auto type = static_cast<uint32_t>(q.Type());
        if (!outcome.measurements.empty()) {
          ++type_count[type];
          for (const auto& m : outcome.measurements) {
            type_acc[type][static_cast<uint32_t>(m.kind)] += m.accuracy;
            type_lat[type][static_cast<uint32_t>(m.kind)] += m.latency_ms;
          }
        }
        if (outcome.switched) {
          const auto& sw = module.switch_log().back();
          std::printf(
              "switch #%zu at query %llu: %s -> %s (monitor accuracy %.3f)\n",
              module.switch_log().size(),
              static_cast<unsigned long long>(sw.query_index),
              latest::estimators::EstimatorKindName(sw.from),
              latest::estimators::EstimatorKindName(sw.to),
              outcome.monitor_accuracy);
        }
      });

  std::printf("\nstream done: %llu objects, %llu queries\n",
              static_cast<unsigned long long>(module.objects_ingested()),
              static_cast<unsigned long long>(module.queries_answered()));
  std::printf("mean accuracy %.3f, mean estimate latency %.4f ms\n",
              accuracy_sum / static_cast<double>(queries_run),
              latency_sum / static_cast<double>(queries_run));
  std::printf("final active estimator: %s, switches: %zu\n",
              latest::estimators::EstimatorKindName(module.active_kind()),
              module.switch_log().size());
  std::printf("learning model: %llu records, %llu leaves, depth %u\n",
              static_cast<unsigned long long>(module.model().num_trained()),
              static_cast<unsigned long long>(module.model().num_leaves()),
              module.model().depth());

  std::printf("\nper-estimator mean accuracy / latency(ms) by query type:\n");
  std::printf("%-9s", "type");
  for (uint32_t k = 0; k < latest::estimators::kNumPaperEstimatorKinds; ++k) {
    std::printf(" %14s",
                latest::estimators::EstimatorKindName(
                    static_cast<latest::estimators::EstimatorKind>(k)));
  }
  std::printf("\n");
  for (uint32_t t = 0; t < 3; ++t) {
    if (type_count[t] == 0) continue;
    std::printf("%-9s",
                latest::stream::QueryTypeName(
                    static_cast<latest::stream::QueryType>(t)));
    for (uint32_t k = 0; k < latest::estimators::kNumPaperEstimatorKinds; ++k) {
      std::printf(" %6.3f/%7.4f",
                  type_acc[t][k] / static_cast<double>(type_count[t]),
                  type_lat[t][k] / static_cast<double>(type_count[t]));
    }
    std::printf("\n");
  }
  return 0;
}
