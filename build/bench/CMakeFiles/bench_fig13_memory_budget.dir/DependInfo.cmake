
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_memory_budget.cc" "bench/CMakeFiles/bench_fig13_memory_budget.dir/bench_fig13_memory_budget.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_memory_budget.dir/bench_fig13_memory_budget.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/latest_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/latest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/latest_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/latest_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/latest_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/latest_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/latest_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/latest_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
