file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_alpha1_ebrqw1.dir/bench_fig8_alpha1_ebrqw1.cc.o"
  "CMakeFiles/bench_fig8_alpha1_ebrqw1.dir/bench_fig8_alpha1_ebrqw1.cc.o.d"
  "bench_fig8_alpha1_ebrqw1"
  "bench_fig8_alpha1_ebrqw1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_alpha1_ebrqw1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
