# Empty dependencies file for bench_fig8_alpha1_ebrqw1.
# This may be replaced when dependencies are built.
