file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_spatial_range_twqw1.dir/bench_fig9_spatial_range_twqw1.cc.o"
  "CMakeFiles/bench_fig9_spatial_range_twqw1.dir/bench_fig9_spatial_range_twqw1.cc.o.d"
  "bench_fig9_spatial_range_twqw1"
  "bench_fig9_spatial_range_twqw1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_spatial_range_twqw1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
