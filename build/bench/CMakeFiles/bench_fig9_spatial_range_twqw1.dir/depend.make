# Empty dependencies file for bench_fig9_spatial_range_twqw1.
# This may be replaced when dependencies are built.
