# Empty compiler generated dependencies file for bench_ablation_portfolio_extension.
# This may be replaced when dependencies are built.
