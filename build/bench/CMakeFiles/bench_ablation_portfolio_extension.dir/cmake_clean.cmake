file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_portfolio_extension.dir/bench_ablation_portfolio_extension.cc.o"
  "CMakeFiles/bench_ablation_portfolio_extension.dir/bench_ablation_portfolio_extension.cc.o.d"
  "bench_ablation_portfolio_extension"
  "bench_ablation_portfolio_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_portfolio_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
