# Empty compiler generated dependencies file for bench_fig7_alpha1_twqw3.
# This may be replaced when dependencies are built.
