file(REMOVE_RECURSE
  "liblatest_bench_common.a"
)
