# Empty compiler generated dependencies file for latest_bench_common.
# This may be replaced when dependencies are built.
