file(REMOVE_RECURSE
  "CMakeFiles/latest_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/latest_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/latest_bench_common.dir/portfolio_harness.cc.o"
  "CMakeFiles/latest_bench_common.dir/portfolio_harness.cc.o.d"
  "liblatest_bench_common.a"
  "liblatest_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
