file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_switch_ciqw1.dir/bench_fig12_switch_ciqw1.cc.o"
  "CMakeFiles/bench_fig12_switch_ciqw1.dir/bench_fig12_switch_ciqw1.cc.o.d"
  "bench_fig12_switch_ciqw1"
  "bench_fig12_switch_ciqw1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_switch_ciqw1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
