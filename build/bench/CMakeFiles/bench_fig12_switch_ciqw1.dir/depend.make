# Empty dependencies file for bench_fig12_switch_ciqw1.
# This may be replaced when dependencies are built.
