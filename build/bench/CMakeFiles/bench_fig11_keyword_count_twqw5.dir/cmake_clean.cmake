file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_keyword_count_twqw5.dir/bench_fig11_keyword_count_twqw5.cc.o"
  "CMakeFiles/bench_fig11_keyword_count_twqw5.dir/bench_fig11_keyword_count_twqw5.cc.o.d"
  "bench_fig11_keyword_count_twqw5"
  "bench_fig11_keyword_count_twqw5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_keyword_count_twqw5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
