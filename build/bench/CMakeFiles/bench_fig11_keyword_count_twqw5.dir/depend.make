# Empty dependencies file for bench_fig11_keyword_count_twqw5.
# This may be replaced when dependencies are built.
