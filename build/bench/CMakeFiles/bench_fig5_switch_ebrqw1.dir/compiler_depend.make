# Empty compiler generated dependencies file for bench_fig5_switch_ebrqw1.
# This may be replaced when dependencies are built.
