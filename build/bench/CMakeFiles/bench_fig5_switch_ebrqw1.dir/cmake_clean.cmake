file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_switch_ebrqw1.dir/bench_fig5_switch_ebrqw1.cc.o"
  "CMakeFiles/bench_fig5_switch_ebrqw1.dir/bench_fig5_switch_ebrqw1.cc.o.d"
  "bench_fig5_switch_ebrqw1"
  "bench_fig5_switch_ebrqw1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_switch_ebrqw1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
