# Empty dependencies file for bench_fig6_alpha0_twqw3.
# This may be replaced when dependencies are built.
