# Empty compiler generated dependencies file for bench_fig4_switch_twqw6.
# This may be replaced when dependencies are built.
