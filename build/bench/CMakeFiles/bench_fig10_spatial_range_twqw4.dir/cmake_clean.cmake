file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_spatial_range_twqw4.dir/bench_fig10_spatial_range_twqw4.cc.o"
  "CMakeFiles/bench_fig10_spatial_range_twqw4.dir/bench_fig10_spatial_range_twqw4.cc.o.d"
  "bench_fig10_spatial_range_twqw4"
  "bench_fig10_spatial_range_twqw4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_spatial_range_twqw4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
