# Empty compiler generated dependencies file for bench_fig10_spatial_range_twqw4.
# This may be replaced when dependencies are built.
