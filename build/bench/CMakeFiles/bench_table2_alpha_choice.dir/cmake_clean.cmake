file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_alpha_choice.dir/bench_table2_alpha_choice.cc.o"
  "CMakeFiles/bench_table2_alpha_choice.dir/bench_table2_alpha_choice.cc.o.d"
  "bench_table2_alpha_choice"
  "bench_table2_alpha_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_alpha_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
