# Empty dependencies file for bench_table2_alpha_choice.
# This may be replaced when dependencies are built.
