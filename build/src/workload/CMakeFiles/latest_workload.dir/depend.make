# Empty dependencies file for latest_workload.
# This may be replaced when dependencies are built.
