
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/csv_loader.cc" "src/workload/CMakeFiles/latest_workload.dir/csv_loader.cc.o" "gcc" "src/workload/CMakeFiles/latest_workload.dir/csv_loader.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/workload/CMakeFiles/latest_workload.dir/dataset.cc.o" "gcc" "src/workload/CMakeFiles/latest_workload.dir/dataset.cc.o.d"
  "/root/repo/src/workload/query_workload.cc" "src/workload/CMakeFiles/latest_workload.dir/query_workload.cc.o" "gcc" "src/workload/CMakeFiles/latest_workload.dir/query_workload.cc.o.d"
  "/root/repo/src/workload/stream_driver.cc" "src/workload/CMakeFiles/latest_workload.dir/stream_driver.cc.o" "gcc" "src/workload/CMakeFiles/latest_workload.dir/stream_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/latest_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/latest_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
