file(REMOVE_RECURSE
  "CMakeFiles/latest_workload.dir/csv_loader.cc.o"
  "CMakeFiles/latest_workload.dir/csv_loader.cc.o.d"
  "CMakeFiles/latest_workload.dir/dataset.cc.o"
  "CMakeFiles/latest_workload.dir/dataset.cc.o.d"
  "CMakeFiles/latest_workload.dir/query_workload.cc.o"
  "CMakeFiles/latest_workload.dir/query_workload.cc.o.d"
  "CMakeFiles/latest_workload.dir/stream_driver.cc.o"
  "CMakeFiles/latest_workload.dir/stream_driver.cc.o.d"
  "liblatest_workload.a"
  "liblatest_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
