file(REMOVE_RECURSE
  "liblatest_workload.a"
)
