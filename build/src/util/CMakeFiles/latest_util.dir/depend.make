# Empty dependencies file for latest_util.
# This may be replaced when dependencies are built.
