file(REMOVE_RECURSE
  "liblatest_util.a"
)
