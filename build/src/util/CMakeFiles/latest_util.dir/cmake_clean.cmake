file(REMOVE_RECURSE
  "CMakeFiles/latest_util.dir/minmax_scaler.cc.o"
  "CMakeFiles/latest_util.dir/minmax_scaler.cc.o.d"
  "CMakeFiles/latest_util.dir/moving_stats.cc.o"
  "CMakeFiles/latest_util.dir/moving_stats.cc.o.d"
  "CMakeFiles/latest_util.dir/rng.cc.o"
  "CMakeFiles/latest_util.dir/rng.cc.o.d"
  "CMakeFiles/latest_util.dir/status.cc.o"
  "CMakeFiles/latest_util.dir/status.cc.o.d"
  "CMakeFiles/latest_util.dir/zipf.cc.o"
  "CMakeFiles/latest_util.dir/zipf.cc.o.d"
  "liblatest_util.a"
  "liblatest_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
