file(REMOVE_RECURSE
  "CMakeFiles/latest_exact.dir/exact_evaluator.cc.o"
  "CMakeFiles/latest_exact.dir/exact_evaluator.cc.o.d"
  "CMakeFiles/latest_exact.dir/grid_index.cc.o"
  "CMakeFiles/latest_exact.dir/grid_index.cc.o.d"
  "CMakeFiles/latest_exact.dir/inverted_index.cc.o"
  "CMakeFiles/latest_exact.dir/inverted_index.cc.o.d"
  "CMakeFiles/latest_exact.dir/quadtree_index.cc.o"
  "CMakeFiles/latest_exact.dir/quadtree_index.cc.o.d"
  "liblatest_exact.a"
  "liblatest_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
