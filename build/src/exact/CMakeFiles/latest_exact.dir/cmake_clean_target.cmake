file(REMOVE_RECURSE
  "liblatest_exact.a"
)
