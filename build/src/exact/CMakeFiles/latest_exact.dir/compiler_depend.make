# Empty compiler generated dependencies file for latest_exact.
# This may be replaced when dependencies are built.
