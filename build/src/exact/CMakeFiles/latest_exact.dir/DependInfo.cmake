
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/exact_evaluator.cc" "src/exact/CMakeFiles/latest_exact.dir/exact_evaluator.cc.o" "gcc" "src/exact/CMakeFiles/latest_exact.dir/exact_evaluator.cc.o.d"
  "/root/repo/src/exact/grid_index.cc" "src/exact/CMakeFiles/latest_exact.dir/grid_index.cc.o" "gcc" "src/exact/CMakeFiles/latest_exact.dir/grid_index.cc.o.d"
  "/root/repo/src/exact/inverted_index.cc" "src/exact/CMakeFiles/latest_exact.dir/inverted_index.cc.o" "gcc" "src/exact/CMakeFiles/latest_exact.dir/inverted_index.cc.o.d"
  "/root/repo/src/exact/quadtree_index.cc" "src/exact/CMakeFiles/latest_exact.dir/quadtree_index.cc.o" "gcc" "src/exact/CMakeFiles/latest_exact.dir/quadtree_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/latest_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/latest_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
