
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gaussian_estimator.cc" "src/ml/CMakeFiles/latest_ml.dir/gaussian_estimator.cc.o" "gcc" "src/ml/CMakeFiles/latest_ml.dir/gaussian_estimator.cc.o.d"
  "/root/repo/src/ml/hoeffding_tree.cc" "src/ml/CMakeFiles/latest_ml.dir/hoeffding_tree.cc.o" "gcc" "src/ml/CMakeFiles/latest_ml.dir/hoeffding_tree.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/latest_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/latest_ml.dir/mlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
