# Empty compiler generated dependencies file for latest_ml.
# This may be replaced when dependencies are built.
