file(REMOVE_RECURSE
  "CMakeFiles/latest_ml.dir/gaussian_estimator.cc.o"
  "CMakeFiles/latest_ml.dir/gaussian_estimator.cc.o.d"
  "CMakeFiles/latest_ml.dir/hoeffding_tree.cc.o"
  "CMakeFiles/latest_ml.dir/hoeffding_tree.cc.o.d"
  "CMakeFiles/latest_ml.dir/mlp.cc.o"
  "CMakeFiles/latest_ml.dir/mlp.cc.o.d"
  "liblatest_ml.a"
  "liblatest_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
