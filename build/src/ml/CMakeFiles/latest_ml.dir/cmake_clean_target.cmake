file(REMOVE_RECURSE
  "liblatest_ml.a"
)
