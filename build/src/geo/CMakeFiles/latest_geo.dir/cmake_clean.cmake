file(REMOVE_RECURSE
  "CMakeFiles/latest_geo.dir/grid.cc.o"
  "CMakeFiles/latest_geo.dir/grid.cc.o.d"
  "CMakeFiles/latest_geo.dir/rect.cc.o"
  "CMakeFiles/latest_geo.dir/rect.cc.o.d"
  "liblatest_geo.a"
  "liblatest_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
