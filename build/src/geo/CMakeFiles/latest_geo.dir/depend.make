# Empty dependencies file for latest_geo.
# This may be replaced when dependencies are built.
