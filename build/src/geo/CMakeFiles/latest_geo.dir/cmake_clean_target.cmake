file(REMOVE_RECURSE
  "liblatest_geo.a"
)
