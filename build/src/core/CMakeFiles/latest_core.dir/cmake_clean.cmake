file(REMOVE_RECURSE
  "CMakeFiles/latest_core.dir/estimation_service.cc.o"
  "CMakeFiles/latest_core.dir/estimation_service.cc.o.d"
  "CMakeFiles/latest_core.dir/latest_module.cc.o"
  "CMakeFiles/latest_core.dir/latest_module.cc.o.d"
  "CMakeFiles/latest_core.dir/metrics.cc.o"
  "CMakeFiles/latest_core.dir/metrics.cc.o.d"
  "CMakeFiles/latest_core.dir/module_stats.cc.o"
  "CMakeFiles/latest_core.dir/module_stats.cc.o.d"
  "CMakeFiles/latest_core.dir/scoreboard.cc.o"
  "CMakeFiles/latest_core.dir/scoreboard.cc.o.d"
  "CMakeFiles/latest_core.dir/subscription_manager.cc.o"
  "CMakeFiles/latest_core.dir/subscription_manager.cc.o.d"
  "liblatest_core.a"
  "liblatest_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
