file(REMOVE_RECURSE
  "liblatest_core.a"
)
