
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/estimation_service.cc" "src/core/CMakeFiles/latest_core.dir/estimation_service.cc.o" "gcc" "src/core/CMakeFiles/latest_core.dir/estimation_service.cc.o.d"
  "/root/repo/src/core/latest_module.cc" "src/core/CMakeFiles/latest_core.dir/latest_module.cc.o" "gcc" "src/core/CMakeFiles/latest_core.dir/latest_module.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/latest_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/latest_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/module_stats.cc" "src/core/CMakeFiles/latest_core.dir/module_stats.cc.o" "gcc" "src/core/CMakeFiles/latest_core.dir/module_stats.cc.o.d"
  "/root/repo/src/core/scoreboard.cc" "src/core/CMakeFiles/latest_core.dir/scoreboard.cc.o" "gcc" "src/core/CMakeFiles/latest_core.dir/scoreboard.cc.o.d"
  "/root/repo/src/core/subscription_manager.cc" "src/core/CMakeFiles/latest_core.dir/subscription_manager.cc.o" "gcc" "src/core/CMakeFiles/latest_core.dir/subscription_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estimators/CMakeFiles/latest_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/latest_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/latest_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/latest_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/latest_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
