# Empty compiler generated dependencies file for latest_core.
# This may be replaced when dependencies are built.
