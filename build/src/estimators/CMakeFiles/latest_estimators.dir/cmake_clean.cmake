file(REMOVE_RECURSE
  "CMakeFiles/latest_estimators.dir/aasp_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/aasp_estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/cm_sketch_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/cm_sketch_estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/ffn_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/ffn_estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/histogram2d_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/histogram2d_estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/kmv_synopsis.cc.o"
  "CMakeFiles/latest_estimators.dir/kmv_synopsis.cc.o.d"
  "CMakeFiles/latest_estimators.dir/reservoir_hash_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/reservoir_hash_estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/reservoir_list_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/reservoir_list_estimator.cc.o.d"
  "CMakeFiles/latest_estimators.dir/space_saving.cc.o"
  "CMakeFiles/latest_estimators.dir/space_saving.cc.o.d"
  "CMakeFiles/latest_estimators.dir/spn_estimator.cc.o"
  "CMakeFiles/latest_estimators.dir/spn_estimator.cc.o.d"
  "liblatest_estimators.a"
  "liblatest_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
