file(REMOVE_RECURSE
  "liblatest_estimators.a"
)
