
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/aasp_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/aasp_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/aasp_estimator.cc.o.d"
  "/root/repo/src/estimators/cm_sketch_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/cm_sketch_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/cm_sketch_estimator.cc.o.d"
  "/root/repo/src/estimators/estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/estimator.cc.o.d"
  "/root/repo/src/estimators/ffn_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/ffn_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/ffn_estimator.cc.o.d"
  "/root/repo/src/estimators/histogram2d_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/histogram2d_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/histogram2d_estimator.cc.o.d"
  "/root/repo/src/estimators/kmv_synopsis.cc" "src/estimators/CMakeFiles/latest_estimators.dir/kmv_synopsis.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/kmv_synopsis.cc.o.d"
  "/root/repo/src/estimators/reservoir_hash_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/reservoir_hash_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/reservoir_hash_estimator.cc.o.d"
  "/root/repo/src/estimators/reservoir_list_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/reservoir_list_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/reservoir_list_estimator.cc.o.d"
  "/root/repo/src/estimators/space_saving.cc" "src/estimators/CMakeFiles/latest_estimators.dir/space_saving.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/space_saving.cc.o.d"
  "/root/repo/src/estimators/spn_estimator.cc" "src/estimators/CMakeFiles/latest_estimators.dir/spn_estimator.cc.o" "gcc" "src/estimators/CMakeFiles/latest_estimators.dir/spn_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/latest_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/latest_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/latest_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
