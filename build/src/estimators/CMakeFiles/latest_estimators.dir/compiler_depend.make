# Empty compiler generated dependencies file for latest_estimators.
# This may be replaced when dependencies are built.
