file(REMOVE_RECURSE
  "liblatest_stream.a"
)
