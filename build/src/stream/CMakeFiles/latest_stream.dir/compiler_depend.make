# Empty compiler generated dependencies file for latest_stream.
# This may be replaced when dependencies are built.
