
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/keyword_dictionary.cc" "src/stream/CMakeFiles/latest_stream.dir/keyword_dictionary.cc.o" "gcc" "src/stream/CMakeFiles/latest_stream.dir/keyword_dictionary.cc.o.d"
  "/root/repo/src/stream/object.cc" "src/stream/CMakeFiles/latest_stream.dir/object.cc.o" "gcc" "src/stream/CMakeFiles/latest_stream.dir/object.cc.o.d"
  "/root/repo/src/stream/query.cc" "src/stream/CMakeFiles/latest_stream.dir/query.cc.o" "gcc" "src/stream/CMakeFiles/latest_stream.dir/query.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/stream/CMakeFiles/latest_stream.dir/sliding_window.cc.o" "gcc" "src/stream/CMakeFiles/latest_stream.dir/sliding_window.cc.o.d"
  "/root/repo/src/stream/tokenizer.cc" "src/stream/CMakeFiles/latest_stream.dir/tokenizer.cc.o" "gcc" "src/stream/CMakeFiles/latest_stream.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/latest_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
