file(REMOVE_RECURSE
  "CMakeFiles/latest_stream.dir/keyword_dictionary.cc.o"
  "CMakeFiles/latest_stream.dir/keyword_dictionary.cc.o.d"
  "CMakeFiles/latest_stream.dir/object.cc.o"
  "CMakeFiles/latest_stream.dir/object.cc.o.d"
  "CMakeFiles/latest_stream.dir/query.cc.o"
  "CMakeFiles/latest_stream.dir/query.cc.o.d"
  "CMakeFiles/latest_stream.dir/sliding_window.cc.o"
  "CMakeFiles/latest_stream.dir/sliding_window.cc.o.d"
  "CMakeFiles/latest_stream.dir/tokenizer.cc.o"
  "CMakeFiles/latest_stream.dir/tokenizer.cc.o.d"
  "liblatest_stream.a"
  "liblatest_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
