# Empty dependencies file for targeted_advertising.
# This may be replaced when dependencies are built.
