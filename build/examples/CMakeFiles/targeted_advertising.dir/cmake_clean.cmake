file(REMOVE_RECURSE
  "CMakeFiles/targeted_advertising.dir/targeted_advertising.cpp.o"
  "CMakeFiles/targeted_advertising.dir/targeted_advertising.cpp.o.d"
  "targeted_advertising"
  "targeted_advertising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeted_advertising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
