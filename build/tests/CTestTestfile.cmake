# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/exact_test[1]_include.cmake")
include("/root/repo/build/tests/synopses_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/reservoir_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/aasp_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/learned_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_common_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/latest_module_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tokenizer_test[1]_include.cmake")
include("/root/repo/build/tests/csv_loader_test[1]_include.cmake")
include("/root/repo/build/tests/estimation_service_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cm_sketch_test[1]_include.cmake")
include("/root/repo/build/tests/subscription_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
