file(REMOVE_RECURSE
  "CMakeFiles/learned_estimator_test.dir/learned_estimator_test.cc.o"
  "CMakeFiles/learned_estimator_test.dir/learned_estimator_test.cc.o.d"
  "learned_estimator_test"
  "learned_estimator_test.pdb"
  "learned_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
