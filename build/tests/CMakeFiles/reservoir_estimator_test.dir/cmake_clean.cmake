file(REMOVE_RECURSE
  "CMakeFiles/reservoir_estimator_test.dir/reservoir_estimator_test.cc.o"
  "CMakeFiles/reservoir_estimator_test.dir/reservoir_estimator_test.cc.o.d"
  "reservoir_estimator_test"
  "reservoir_estimator_test.pdb"
  "reservoir_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservoir_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
