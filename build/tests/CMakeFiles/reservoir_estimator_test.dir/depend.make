# Empty dependencies file for reservoir_estimator_test.
# This may be replaced when dependencies are built.
