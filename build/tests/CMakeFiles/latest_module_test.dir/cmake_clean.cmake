file(REMOVE_RECURSE
  "CMakeFiles/latest_module_test.dir/latest_module_test.cc.o"
  "CMakeFiles/latest_module_test.dir/latest_module_test.cc.o.d"
  "latest_module_test"
  "latest_module_test.pdb"
  "latest_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
