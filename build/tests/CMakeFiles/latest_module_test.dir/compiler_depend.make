# Empty compiler generated dependencies file for latest_module_test.
# This may be replaced when dependencies are built.
