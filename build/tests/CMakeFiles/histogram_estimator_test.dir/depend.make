# Empty dependencies file for histogram_estimator_test.
# This may be replaced when dependencies are built.
