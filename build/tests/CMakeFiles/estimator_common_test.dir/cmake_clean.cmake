file(REMOVE_RECURSE
  "CMakeFiles/estimator_common_test.dir/estimator_common_test.cc.o"
  "CMakeFiles/estimator_common_test.dir/estimator_common_test.cc.o.d"
  "estimator_common_test"
  "estimator_common_test.pdb"
  "estimator_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
