# Empty dependencies file for estimator_common_test.
# This may be replaced when dependencies are built.
