file(REMOVE_RECURSE
  "CMakeFiles/aasp_estimator_test.dir/aasp_estimator_test.cc.o"
  "CMakeFiles/aasp_estimator_test.dir/aasp_estimator_test.cc.o.d"
  "aasp_estimator_test"
  "aasp_estimator_test.pdb"
  "aasp_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aasp_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
