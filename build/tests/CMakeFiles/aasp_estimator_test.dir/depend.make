# Empty dependencies file for aasp_estimator_test.
# This may be replaced when dependencies are built.
