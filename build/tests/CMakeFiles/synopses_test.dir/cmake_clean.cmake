file(REMOVE_RECURSE
  "CMakeFiles/synopses_test.dir/synopses_test.cc.o"
  "CMakeFiles/synopses_test.dir/synopses_test.cc.o.d"
  "synopses_test"
  "synopses_test.pdb"
  "synopses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synopses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
