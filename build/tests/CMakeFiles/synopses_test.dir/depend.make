# Empty dependencies file for synopses_test.
# This may be replaced when dependencies are built.
