# Empty dependencies file for cm_sketch_test.
# This may be replaced when dependencies are built.
