file(REMOVE_RECURSE
  "CMakeFiles/cm_sketch_test.dir/cm_sketch_test.cc.o"
  "CMakeFiles/cm_sketch_test.dir/cm_sketch_test.cc.o.d"
  "cm_sketch_test"
  "cm_sketch_test.pdb"
  "cm_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
